"""The persistent campaign/result archive behind the service.

A :class:`ResultStore` is a SQLite database holding everything a
long-running campaign service must not lose when a process dies:

* **campaigns** (jobs): tenant, spec, scheduling state, and — once
  finished — the history digest and the full outcome document;
* **results**: every executed test, stored **once** no matter how many
  campaigns executed it.  The primary key is the *scenario digest* — a
  SHA-256 over the exact content address
  :meth:`repro.core.cache.ResultCache.key_for` computes (target id
  including the injector/fault-model name, subspace, canonical
  attribute vector, trial, step budget) — so dedup across campaigns
  falls out of the same identity the in-memory cache already uses;
* **campaign_results**: the per-campaign ordered mapping onto those
  shared rows (sequence, impact, fitness), which is what makes a
  stored campaign re-renderable in execution order;
* **clusters**: the §5 redundancy clusters of each campaign's failures,
  with the representative member, persisting the quality analysis the
  later bug-report-driven modes (IBIR, PAPERS.md) will query.

Durability: SQLite with WAL journaling; every public method opens a
short-lived connection, so the store is safe to touch from scheduler
threads and CLI processes concurrently, and a SIGKILLed server leaves a
consistent database behind.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.cache import ResultCache, result_from_payload, result_to_payload

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import ExecutedTest, ResultSet

__all__ = ["ResultStore", "StoredJob", "scenario_key_digest"]

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id TEXT PRIMARY KEY,
    tenant TEXT NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    spec TEXT NOT NULL,
    state TEXT NOT NULL,
    priority INTEGER NOT NULL DEFAULT 0,
    seq INTEGER NOT NULL,
    created_s REAL NOT NULL,
    started_s REAL,
    finished_s REAL,
    digest TEXT,
    summary TEXT,
    document TEXT,
    error TEXT,
    checkpoint TEXT
);
CREATE INDEX IF NOT EXISTS campaigns_tenant ON campaigns (tenant, state);
CREATE TABLE IF NOT EXISTS results (
    digest TEXT PRIMARY KEY,
    target TEXT NOT NULL,
    fault_model TEXT NOT NULL,
    subspace TEXT NOT NULL DEFAULT '',
    attributes TEXT NOT NULL,
    payload TEXT NOT NULL,
    failed INTEGER NOT NULL,
    crashed INTEGER NOT NULL,
    hung INTEGER NOT NULL,
    crash_kind TEXT,
    first_campaign TEXT NOT NULL,
    created_s REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS results_target ON results (target, crashed, failed);
CREATE TABLE IF NOT EXISTS campaign_results (
    campaign_id TEXT NOT NULL,
    seq INTEGER NOT NULL,
    result_digest TEXT NOT NULL,
    impact REAL NOT NULL,
    fitness REAL NOT NULL,
    PRIMARY KEY (campaign_id, seq)
);
CREATE INDEX IF NOT EXISTS campaign_results_digest
    ON campaign_results (result_digest);
CREATE TABLE IF NOT EXISTS clusters (
    campaign_id TEXT NOT NULL,
    cluster_id INTEGER NOT NULL,
    size INTEGER NOT NULL,
    representative_seq INTEGER NOT NULL,
    representative_digest TEXT NOT NULL,
    PRIMARY KEY (campaign_id, cluster_id)
);
"""


def scenario_key_digest(
    target_id: str,
    subspace: str,
    attributes: tuple,
    trial: int = 0,
    step_budget: int | None = None,
) -> str:
    """SHA-256 of the exact :meth:`ResultCache.key_for` content address.

    This is the store's result identity: two campaigns that executed
    the same fault against the same target under the same fault model
    share one stored row.
    """
    if step_budget is None:
        from repro.sim.libc import DEFAULT_STEP_BUDGET

        step_budget = DEFAULT_STEP_BUDGET
    key = ResultCache.key_for(
        target_id, subspace, attributes, trial, step_budget
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass
class StoredJob:
    """One campaign job row, as the scheduler and the API see it."""

    id: str
    tenant: str
    label: str
    spec: dict
    state: str  # queued | running | done | failed
    priority: int
    seq: int
    created_s: float
    started_s: float | None = None
    finished_s: float | None = None
    digest: str | None = None
    summary: dict | None = None
    document: dict | None = None
    error: str | None = None
    checkpoint: str | None = None

    def as_dict(self, include_document: bool = True) -> dict[str, object]:
        doc: dict[str, object] = {
            "id": self.id,
            "tenant": self.tenant,
            "label": self.label,
            "spec": self.spec,
            "state": self.state,
            "priority": self.priority,
            "seq": self.seq,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "digest": self.digest,
            "summary": self.summary,
            "error": self.error,
        }
        if include_document:
            doc["document"] = self.document
        return doc


def _row_to_job(row: sqlite3.Row) -> StoredJob:
    return StoredJob(
        id=row["id"],
        tenant=row["tenant"],
        label=row["label"],
        spec=json.loads(row["spec"]),
        state=row["state"],
        priority=row["priority"],
        seq=row["seq"],
        created_s=row["created_s"],
        started_s=row["started_s"],
        finished_s=row["finished_s"],
        digest=row["digest"],
        summary=json.loads(row["summary"]) if row["summary"] else None,
        document=json.loads(row["document"]) if row["document"] else None,
        error=row["error"],
        checkpoint=row["checkpoint"],
    )


class ResultStore:
    """SQLite archive of campaigns, deduplicated results, and clusters."""

    def __init__(
        self,
        path: str | Path,
        *,
        clock=time.time,
        monotonic=time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Wall clock stamps the display columns (created_s/started_s/
        # finished_s); the monotonic clock measures durations, immune to
        # NTP steps and DST jumps mid-campaign.  Both injectable so
        # tests can freeze and step them deterministically.
        self._clock = clock
        self._monotonic = monotonic
        # Monotonic anchors of currently-running jobs and measured run
        # durations of finished ones.  In-memory is sound here:
        # ``requeue_incomplete`` flips running jobs back to queued on
        # restart, so every job that reaches done/failed started within
        # this process's monotonic epoch.
        self._running_anchor: dict[str, float] = {}
        self._durations: dict[str, float] = {}
        # Serializes writers inside this process; cross-process safety
        # comes from SQLite's own locking.
        self._lock = threading.Lock()
        with self._connect() as conn:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- job lifecycle ---------------------------------------------------------

    def create_job(
        self,
        job_id: str,
        tenant: str,
        spec: dict,
        *,
        priority: int = 0,
        label: str = "",
        checkpoint: str | None = None,
    ) -> StoredJob:
        now = self._clock()
        with self._lock, self._connect() as conn:
            seq = conn.execute(
                "SELECT COALESCE(MAX(seq), 0) + 1 FROM campaigns"
            ).fetchone()[0]
            conn.execute(
                "INSERT INTO campaigns (id, tenant, label, spec, state, "
                "priority, seq, created_s, checkpoint) "
                "VALUES (?, ?, ?, ?, 'queued', ?, ?, ?, ?)",
                (
                    job_id, tenant, label,
                    json.dumps(spec, sort_keys=True),
                    priority, seq, now, checkpoint,
                ),
            )
        return self.job(job_id)  # type: ignore[return-value]

    def job(self, job_id: str) -> StoredJob | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM campaigns WHERE id = ?", (job_id,)
            ).fetchone()
        return _row_to_job(row) if row is not None else None

    def jobs(
        self,
        tenant: str | None = None,
        state: str | None = None,
        limit: int = 200,
    ) -> list[StoredJob]:
        query = "SELECT * FROM campaigns"
        clauses, params = [], []
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if state is not None:
            clauses.append("state = ?")
            params.append(state)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY seq LIMIT ?"
        params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        return [_row_to_job(row) for row in rows]

    def mark_running(self, job_id: str) -> None:
        with self._lock, self._connect() as conn:
            conn.execute(
                "UPDATE campaigns SET state = 'running', started_s = ? "
                "WHERE id = ?",
                (self._clock(), job_id),
            )
            self._running_anchor[job_id] = self._monotonic()

    def mark_done(
        self,
        job_id: str,
        *,
        digest: str,
        summary: dict,
        document: dict,
    ) -> None:
        with self._lock, self._connect() as conn:
            conn.execute(
                "UPDATE campaigns SET state = 'done', finished_s = ?, "
                "digest = ?, summary = ?, document = ?, error = NULL "
                "WHERE id = ?",
                (
                    self._clock(), digest,
                    json.dumps(summary, sort_keys=True),
                    json.dumps(document, sort_keys=True),
                    job_id,
                ),
            )
            self._finish_duration(job_id)

    def mark_failed(self, job_id: str, error: str) -> None:
        with self._lock, self._connect() as conn:
            conn.execute(
                "UPDATE campaigns SET state = 'failed', finished_s = ?, "
                "error = ? WHERE id = ?",
                (self._clock(), str(error)[:2000], job_id),
            )
            self._finish_duration(job_id)

    def _finish_duration(self, job_id: str) -> None:
        """Close a job's monotonic run-duration measurement (lock held)."""
        anchor = self._running_anchor.pop(job_id, None)
        if anchor is not None:
            self._durations[job_id] = max(0.0, self._monotonic() - anchor)

    def job_duration(self, job_id: str) -> float | None:
        """Monotonic run duration of a finished job, if measured here.

        None for jobs finished by another process (or before a restart);
        the wall-clock ``finished_s - started_s`` stays available for a
        coarse display value in that case.
        """
        return self._durations.get(job_id)

    def requeue_incomplete(self) -> list[StoredJob]:
        """Flip every non-terminal job back to ``queued`` (restart path).

        Completed results recorded before the crash stay put — the
        resumed campaign dedups against them — and a job with a
        checkpoint resumes byte-identically from it.
        """
        with self._lock, self._connect() as conn:
            conn.execute(
                "UPDATE campaigns SET state = 'queued', started_s = NULL "
                "WHERE state IN ('queued', 'running')"
            )
        return self.jobs(state="queued", limit=10_000)

    # -- results ---------------------------------------------------------------

    def record_campaign(
        self,
        job_id: str,
        results: "ResultSet",
        *,
        target_id: str,
        fault_model: str,
        cluster_distance: int = 1,
    ) -> dict[str, int]:
        """Archive one finished campaign's executions and clusters.

        Returns ``{"total": ..., "new": ..., "duplicates": ...}`` where
        duplicates are results some earlier campaign (or an earlier
        round of this one) already stored.
        """
        now = self._clock()
        new = 0
        rows = []
        mapping = []
        digests: list[str] = []
        for test in results:
            digest = scenario_key_digest(
                target_id, test.fault.subspace, test.fault.attributes
            )
            digests.append(digest)
            rows.append((
                digest,
                target_id,
                fault_model,
                test.fault.subspace,
                json.dumps(
                    [[n, _jsonable(v)] for n, v in test.fault.attributes],
                    sort_keys=True,
                ),
                json.dumps(result_to_payload(test.result), sort_keys=True),
                int(test.failed),
                int(test.crashed),
                int(test.hung),
                test.result.crash_kind,
                job_id,
                now,
            ))
            mapping.append(
                (job_id, test.index, digest, test.impact, test.fitness)
            )
        clusters = _failure_clusters(results, cluster_distance, digests)
        with self._lock, self._connect() as conn:
            before = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            conn.executemany(
                "INSERT OR IGNORE INTO results (digest, target, "
                "fault_model, subspace, attributes, payload, failed, "
                "crashed, hung, crash_kind, first_campaign, created_s) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            after = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            new = after - before
            conn.executemany(
                "INSERT OR REPLACE INTO campaign_results (campaign_id, "
                "seq, result_digest, impact, fitness) VALUES (?, ?, ?, ?, ?)",
                mapping,
            )
            conn.execute(
                "DELETE FROM clusters WHERE campaign_id = ?", (job_id,)
            )
            conn.executemany(
                "INSERT INTO clusters (campaign_id, cluster_id, size, "
                "representative_seq, representative_digest) "
                "VALUES (?, ?, ?, ?, ?)",
                [(job_id, *cluster) for cluster in clusters],
            )
        return {
            "total": len(rows),
            "new": new,
            "duplicates": len(rows) - new,
        }

    def results(
        self,
        campaign: str | None = None,
        target: str | None = None,
        crashed: bool | None = None,
        failed: bool | None = None,
        min_impact: float | None = None,
        limit: int = 100,
    ) -> list[dict]:
        """Query stored results; rows are JSON-ready dicts.

        With ``campaign`` the per-campaign mapping is joined in
        (execution order, impact); otherwise the deduplicated archive
        is scanned directly.
        """
        params: list[object] = []
        if campaign is not None:
            query = (
                "SELECT r.*, cr.seq AS seq, cr.impact AS impact, "
                "cr.fitness AS fitness FROM campaign_results cr "
                "JOIN results r ON r.digest = cr.result_digest "
                "WHERE cr.campaign_id = ?"
            )
            params.append(campaign)
        else:
            query = "SELECT r.* FROM results r WHERE 1=1"
        if target is not None:
            query += " AND r.target LIKE ?"
            params.append(f"{target}%")
        if crashed is not None:
            query += " AND r.crashed = ?"
            params.append(int(crashed))
        if failed is not None:
            query += " AND r.failed = ?"
            params.append(int(failed))
        if campaign is not None and min_impact is not None:
            query += " AND cr.impact >= ?"
            params.append(float(min_impact))
        query += (
            " ORDER BY cr.seq" if campaign is not None
            else " ORDER BY r.created_s, r.digest"
        )
        query += " LIMIT ?"
        params.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(query, params).fetchall()
        out = []
        for row in rows:
            entry = {
                "digest": row["digest"],
                "target": row["target"],
                "fault_model": row["fault_model"],
                "subspace": row["subspace"],
                "attributes": json.loads(row["attributes"]),
                "failed": bool(row["failed"]),
                "crashed": bool(row["crashed"]),
                "hung": bool(row["hung"]),
                "crash_kind": row["crash_kind"],
                "first_campaign": row["first_campaign"],
            }
            keys = row.keys()
            if "impact" in keys:
                entry["impact"] = row["impact"]
            if "seq" in keys:
                entry["seq"] = row["seq"]
            out.append(entry)
        return out

    def load_result(self, digest: str):
        """Rehydrate one stored execution as a live ``RunResult``."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload FROM results WHERE digest = ?", (digest,)
            ).fetchone()
        if row is None:
            return None
        return result_from_payload(json.loads(row["payload"]))

    def resolve_digest(self, prefix: str) -> list[str]:
        """Digests matching a (possibly short, git-style) crash-id prefix.

        Returns every match so the caller can distinguish "not found"
        from "ambiguous"; digests are hex, so no LIKE metacharacters.
        """
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT digest FROM results WHERE digest LIKE ? "
                "ORDER BY digest LIMIT 16",
                (prefix + "%",),
            ).fetchall()
        return [row["digest"] for row in rows]

    def result_row(self, digest: str) -> dict | None:
        """One stored result with full identity and payload (replay input)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM results WHERE digest = ?", (digest,)
            ).fetchone()
        if row is None:
            return None
        return {
            "digest": row["digest"],
            "target": row["target"],
            "fault_model": row["fault_model"],
            "subspace": row["subspace"],
            "attributes": json.loads(row["attributes"]),
            "payload": json.loads(row["payload"]),
            "crash_kind": row["crash_kind"],
            "first_campaign": row["first_campaign"],
        }

    def clusters(self, campaign: str) -> list[dict]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM clusters WHERE campaign_id = ? "
                "ORDER BY cluster_id",
                (campaign,),
            ).fetchall()
        return [
            {
                "cluster_id": row["cluster_id"],
                "size": row["size"],
                "representative_seq": row["representative_seq"],
                "representative_digest": row["representative_digest"],
            }
            for row in rows
        ]

    # -- statistics ------------------------------------------------------------

    def counters(self) -> dict[str, float]:
        """Store-wide totals, including the cross-campaign dedup ratio
        and monotonic run-duration aggregates for jobs timed by this
        process."""
        with self._connect() as conn:
            campaigns = conn.execute(
                "SELECT COUNT(*) FROM campaigns"
            ).fetchone()[0]
            by_state = dict(conn.execute(
                "SELECT state, COUNT(*) FROM campaigns GROUP BY state"
            ).fetchall())
            unique = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            executions = conn.execute(
                "SELECT COUNT(*) FROM campaign_results"
            ).fetchone()[0]
            crashes = conn.execute(
                "SELECT COUNT(*) FROM results WHERE crashed = 1"
            ).fetchone()[0]
            failures = conn.execute(
                "SELECT COUNT(*) FROM results WHERE failed = 1"
            ).fetchone()[0]
        durations = list(self._durations.values())
        return {
            "campaigns": campaigns,
            "queued": by_state.get("queued", 0),
            "running": by_state.get("running", 0),
            "done": by_state.get("done", 0),
            "failed_jobs": by_state.get("failed", 0),
            "unique_results": unique,
            "recorded_executions": executions,
            "deduplicated": executions - unique if executions else 0,
            "crashes": crashes,
            "failures": failures,
            "timed_jobs": len(durations),
            "run_seconds_total": round(sum(durations), 6),
            "run_seconds_max": round(max(durations, default=0.0), 6),
        }

    def bind_metrics(self, registry: object) -> None:
        """Export the store totals as ``service.store.*`` gauges."""

        def _collect(reg) -> None:
            for key, value in self.counters().items():
                reg.gauge(f"service.store.{key}").set(value)

        registry.register_collector(_collect)  # type: ignore[attr-defined]


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, frozenset):
        return sorted(value)  # type: ignore[type-var]
    return value


def _failure_clusters(
    results: "ResultSet", cluster_distance: int, digests: list[str]
) -> list[tuple[int, int, int, str]]:
    """(cluster_id, size, representative_seq, representative_digest)
    rows for the campaign's failed tests (§5 redundancy clusters)."""
    failed: list[ExecutedTest] = [t for t in results if t.failed]
    if not failed:
        return []
    clusters = results.cluster(
        of=lambda t: t.failed, max_distance=cluster_distance
    )
    sizes: dict[int, int] = {}
    for position in range(len(failed)):
        cluster_id = clusters.cluster_of(position)
        sizes[cluster_id] = sizes.get(cluster_id, 0) + 1
    rows = []
    for position in clusters.representatives():
        cluster_id = clusters.cluster_of(position)
        representative = failed[position]
        rows.append((
            cluster_id,
            sizes[cluster_id],
            representative.index,
            digests[representative.index],
        ))
    return sorted(rows)
