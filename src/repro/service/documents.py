"""The machine-readable campaign outcome document.

One JSON shape, produced in three places so scripts never scrape the
text report again:

* ``afex run --report-json PATH`` writes it after a direct run;
* ``afex submit`` returns it (wrapped in the job envelope) once the
  served campaign completes;
* the store persists it verbatim per campaign, so ``afex results`` can
  re-emit it later.

The document is versioned; consumers should ignore unknown keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import ResultSet

__all__ = ["DOCUMENT_VERSION", "campaign_document", "verdict_of"]

DOCUMENT_VERSION = 1


def verdict_of(results: "ResultSet") -> str:
    """The coarse certification verdict over one campaign's outcomes.

    Severity order: crashes dominate hangs dominate plain failures; a
    campaign with none of the three certifies CLEAN.
    """
    if results.crash_count() > 0:
        return "CRASHES"
    if len(results.hangs()) > 0:
        return "HANGS"
    if results.failed_count() > 0:
        return "FAILURES"
    return "CLEAN"


def campaign_document(
    results: "ResultSet",
    *,
    campaign: dict[str, object],
    elapsed_seconds: float,
    space_size: int | None = None,
    fabric_health: object | None = None,
    quality_stats: dict[str, object] | None = None,
    cache_stats: dict[str, object] | None = None,
    top: int = 10,
) -> dict[str, object]:
    """Assemble the outcome document for one finished campaign.

    ``campaign`` is the caller's spec echo (target, strategy, seed,
    iterations, fault model, fabric, ...) — stored verbatim so a result
    is always traceable to the campaign that produced it.
    """
    from repro.core.checkpoint import history_digest

    summary = results.summary()
    throughput = (
        len(results) / elapsed_seconds if elapsed_seconds > 0 else None
    )
    health_dict = (
        fabric_health.as_dict()  # type: ignore[attr-defined]
        if hasattr(fabric_health, "as_dict")
        else fabric_health
    )
    document: dict[str, object] = {
        "version": DOCUMENT_VERSION,
        "campaign": dict(campaign),
        "summary": summary,
        "verdict": verdict_of(results),
        "digest": history_digest(list(results)),
        "elapsed_seconds": elapsed_seconds,
        "throughput_tests_per_s": throughput,
        "top": [
            {
                "impact": test.impact,
                "fault": str(test.fault),
                "outcome": test.result.summary(),
                "test_id": test.result.test_id,
                "test_name": test.result.test_name,
                "crashed": test.crashed,
                "hung": test.hung,
                "failed": test.failed,
            }
            for test in results.top(max(int(top), 0))
        ],
        "fabric_health": health_dict,
        "quality": dict(quality_stats) if quality_stats else None,
        "cache": dict(cache_stats) if cache_stats else None,
    }
    if space_size is not None:
        document["space_size"] = space_size
    return document
