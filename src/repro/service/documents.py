"""The machine-readable campaign outcome document.

One JSON shape, produced in three places so scripts never scrape the
text report again:

* ``afex run --report-json PATH`` writes it after a direct run;
* ``afex submit`` returns it (wrapped in the job envelope) once the
  served campaign completes;
* the store persists it verbatim per campaign, so ``afex results`` can
  re-emit it later.

The document is versioned; consumers should ignore unknown keys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import ResultSet

__all__ = ["DOCUMENT_VERSION", "campaign_document", "verdict_of"]

DOCUMENT_VERSION = 1


def verdict_of(results: "ResultSet") -> str:
    """The coarse certification verdict over one campaign's outcomes.

    Severity order: crashes dominate hangs dominate plain failures; a
    campaign with none of the three certifies CLEAN.
    """
    if results.crash_count() > 0:
        return "CRASHES"
    if len(results.hangs()) > 0:
        return "HANGS"
    if results.failed_count() > 0:
        return "FAILURES"
    return "CLEAN"


def campaign_document(
    results: "ResultSet",
    *,
    campaign: dict[str, object],
    elapsed_seconds: float,
    space_size: int | None = None,
    fabric_health: object | None = None,
    quality_stats: dict[str, object] | None = None,
    cache_stats: dict[str, object] | None = None,
    top: int = 10,
) -> dict[str, object]:
    """Assemble the outcome document for one finished campaign.

    ``campaign`` is the caller's spec echo (target, strategy, seed,
    iterations, fault model, fabric, ...) — stored verbatim so a result
    is always traceable to the campaign that produced it.
    """
    from repro.core.checkpoint import history_digest

    crash_id_of = _crash_id_resolver(campaign)
    summary = results.summary()
    throughput = (
        len(results) / elapsed_seconds if elapsed_seconds > 0 else None
    )
    health_dict = (
        fabric_health.as_dict()  # type: ignore[attr-defined]
        if hasattr(fabric_health, "as_dict")
        else fabric_health
    )
    document: dict[str, object] = {
        "version": DOCUMENT_VERSION,
        "campaign": dict(campaign),
        "summary": summary,
        "verdict": verdict_of(results),
        "digest": history_digest(list(results)),
        "elapsed_seconds": elapsed_seconds,
        "throughput_tests_per_s": throughput,
        "top": [
            {
                "impact": test.impact,
                "fault": str(test.fault),
                "subspace": test.fault.subspace,
                "attributes": [[n, v] for n, v in test.fault.attributes],
                "crash_id": crash_id_of(test),
                "outcome": test.result.summary(),
                "test_id": test.result.test_id,
                "test_name": test.result.test_name,
                "crashed": test.crashed,
                "hung": test.hung,
                "failed": test.failed,
            }
            for test in results.top(max(int(top), 0))
        ],
        "fabric_health": health_dict,
        "quality": dict(quality_stats) if quality_stats else None,
        "cache": dict(cache_stats) if cache_stats else None,
    }
    if space_size is not None:
        document["space_size"] = space_size
    return document


def _crash_id_resolver(campaign: dict[str, object]):
    """Map an executed test to its stable crash id, when derivable.

    The id is the store's scenario-key digest, computed over the same
    ``target/version/fault_model`` identity :meth:`ResultStore.
    record_campaign` uses — so the ids printed in a report resolve
    against the store (``afex replay <id> --store``) without any
    database round-trip at document-build time.  Campaign echoes that
    lack a target or fault model (or name an unknown target) degrade to
    ``crash_id: null`` rather than failing the document.
    """
    target_name = campaign.get("target")
    fault_model = campaign.get("fault_model")
    if not target_name or not fault_model:
        return lambda test: None
    try:
        from repro.sim.targets import target_by_name

        target = target_by_name(str(target_name))
    except Exception:
        return lambda test: None
    from repro.service.store import scenario_key_digest

    target_id = f"{target.name}/{target.version}/{fault_model}"

    def crash_id_of(test) -> str:
        return scenario_key_digest(
            target_id, test.fault.subspace, test.fault.attributes
        )

    return crash_id_of
