"""The campaign service layer: a long-running, multi-tenant AFEX.

The paper's prototype ran exploration campaigns as a *service* across a
14-node EC2 cluster; this package is the reproduction's equivalent on
top of the existing substrate:

* :mod:`repro.service.engine` — :class:`CampaignEngine`, the reusable
  campaign executor extracted from the one-shot ``afex run`` /
  :class:`~repro.campaign.CampaignJob` flow.  It owns fabric lifecycle
  (and keeps fabrics *warm* across campaigns), checkpointing, online
  quality, and metrics;
* :mod:`repro.service.spec` — :class:`CampaignSpec`, the serializable
  description of one campaign that clients submit over the wire;
* :mod:`repro.service.store` — :class:`ResultStore`, the SQLite-backed
  persistent archive of campaigns, results (deduplicated across
  campaigns by scenario digest), and redundancy clusters;
* :mod:`repro.service.server` — :class:`CampaignService`, the asyncio
  multi-tenant scheduler (per-tenant priorities and quotas) plus the
  REST/JSON API behind ``afex serve`` / ``afex submit`` / ``afex jobs``
  / ``afex results``;
* :mod:`repro.service.documents` — the machine-readable campaign
  outcome document shared by ``afex run --report-json`` and the API.
"""

from repro.service.documents import campaign_document, verdict_of
from repro.service.engine import CampaignEngine, EngineRun
from repro.service.spec import CampaignSpec
from repro.service.store import ResultStore, StoredJob

__all__ = [
    "CampaignEngine",
    "CampaignSpec",
    "EngineRun",
    "ResultStore",
    "StoredJob",
    "campaign_document",
    "verdict_of",
]
