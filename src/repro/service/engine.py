"""The reusable campaign engine: one fabric, many campaigns.

Extracted from the previously duplicated exploration flows in
:mod:`repro.campaign` (``CampaignJob.execute``) and :mod:`repro.cli`
(``afex run``): both are now thin clients of :class:`CampaignEngine`,
and the extraction is gated on **byte-identical campaign digests** —
an engine-driven run reproduces the exact
:func:`~repro.core.checkpoint.history_digest` the pre-refactor code
produced for every fabric.

The engine owns what a one-shot run used to rebuild on every call:

* **fabric lifecycle** — the thread/virtual node managers, the warm
  process pool, or the networked socket fabric are built once on first
  use and *reused* across campaigns (``warm_reuses`` counts how often
  the setup cost was skipped).  Teardown is explicit via
  :meth:`CampaignEngine.close`;
* **checkpointing** — per-campaign snapshot/resume threading;
* **online quality** — the streaming §5 clustering stage;
* **observability** — one metrics registry / tracer pair threaded
  through every layer.

This is what makes a long-running campaign *service* viable: the
per-campaign cost collapses to proposing and executing tests (ZOFI's
near-zero orchestration overhead, PAPERS.md), instead of re-paying
process startup, fabric bring-up, and cache warm-up per submission.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cache import ResultCache
from repro.core.checkpoint import Checkpoint, history_digest, load_checkpoint
from repro.core.faultspace import FaultSpace
from repro.core.impact import ImpactMetric, standard_impact
from repro.core.results import ResultSet
from repro.core.runner import TargetRunner
from repro.core.search.base import SearchStrategy
from repro.core.session import ExplorationSession
from repro.core.targets import IterationBudget, SearchTarget
from repro.errors import ClusterError
from repro.sim.testsuite import Target

__all__ = ["CampaignEngine", "EngineRun", "FABRICS"]

#: the selectable execution fabrics ("auto" = serial unless workers > 1).
FABRICS = ("auto", "serial", "threads", "processes", "virtual", "socket")


@dataclass
class EngineRun:
    """What one engine-driven campaign produced."""

    results: ResultSet
    strategy: SearchStrategy
    #: a runner suitable for re-execution (precision trials, reports).
    runner: TargetRunner
    #: the resolved fabric the campaign actually ran on.
    fabric: str
    seconds: float
    #: the fabric's fault-tolerance record (None on serial runs).  With
    #: a warm fabric the counters are cumulative across the engine's
    #: campaigns, exactly like a long-lived cluster's would be.
    health: object | None = None
    #: the live :class:`~repro.quality.online.OnlineClusters` stage
    #: (None unless the campaign ran with online quality on).
    quality: object | None = None
    quality_stats: dict | None = None
    cache_stats: dict | None = None

    @property
    def digest(self) -> str:
        """Stable content digest of the campaign's result history."""
        return history_digest(list(self.results))


class CampaignEngine:
    """Runs exploration campaigns on one owned, reusable fabric.

    Construction is cheap and lazy: nothing is built until the first
    :meth:`explore`.  Subsequent campaigns on the same engine reuse the
    warm fabric — the same node managers, worker processes, or
    registered socket nodes — and any shared
    :class:`~repro.core.cache.ResultCache`.  Call :meth:`close` when
    done; an engine is also a context manager.

    Thread-safety: one engine runs one campaign at a time (the service
    layer pools engines and never shares a busy one).
    """

    def __init__(
        self,
        target: Target,
        *,
        fabric: str = "serial",
        workers: int = 1,
        name: str = "engine",
        injector: object | None = None,
        injector_factory: Callable[[], object] | None = None,
        target_factory: Callable[[], Target] | None = None,
        cache: ResultCache | None = None,
        metrics: object | None = None,
        tracer: object | None = None,
        metric_factory: Callable[[], ImpactMetric] = standard_impact,
        retry_policy: object | None = None,
        dispatch_deadline: float | None = None,
        # -- socket-fabric knobs ------------------------------------------------
        listen: str = "127.0.0.1:0",
        node_wait: float = 60.0,
        #: how many registrations to wait for before the first campaign
        #: (None = all ``workers``); the rest may join mid-campaign.
        wait_count: int | None = None,
        #: None keeps the fabric's own default (open fleet).
        allow_join: bool | None = None,
        fleet_cache: object | None = None,
        #: called with the live SocketFabric right after it binds and
        #: before the engine waits for nodes — learn the bound port and
        #: launch ``afex node`` processes here.
        on_fabric: Callable[[object], None] | None = None,
        #: called with the registered node count once the fleet is up.
        on_nodes: Callable[[int], None] | None = None,
        #: node-manager name prefix (thread/virtual fabrics); the CLI
        #: historically used bare ``node0``/``node1`` names.
        node_prefix: str | None = None,
    ) -> None:
        if fabric not in FABRICS:
            raise ClusterError(
                f"unknown fabric {fabric!r}; available: {FABRICS}"
            )
        self.target = target
        self.fabric = fabric
        self.workers = max(int(workers), 1)
        self.name = name
        self.injector = injector
        self.injector_factory = injector_factory
        self.target_factory = target_factory
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        self.metric_factory = metric_factory
        self.retry_policy = retry_policy
        self.dispatch_deadline = dispatch_deadline
        self.listen = listen
        self.node_wait = node_wait
        self.wait_count = wait_count
        self.allow_join = allow_join
        self.fleet_cache = fleet_cache
        self.on_fabric = on_fabric
        self.on_nodes = on_nodes
        self.node_prefix = f"{name}-" if node_prefix is None else node_prefix
        #: campaigns completed by this engine.
        self.runs = 0
        #: campaigns that skipped fabric bring-up because it was warm.
        self.warm_reuses = 0
        self._runner: TargetRunner | None = None
        self._cluster: object | None = None  # the explorer-facing fabric
        self._pool: object | None = None
        self._net: object | None = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def resolved_fabric(self) -> str:
        """The concrete fabric ``auto`` resolves to for this engine."""
        if self.fabric == "auto":
            return "serial" if self.workers <= 1 else "threads"
        return self.fabric

    @property
    def warm(self) -> bool:
        """True once the fabric has been built and not yet closed."""
        if self.resolved_fabric == "serial":
            return self._runner is not None
        return self._cluster is not None

    def close(self) -> None:
        """Tear the fabric down (idempotent).

        The engine may be used again afterwards — the next campaign
        pays the bring-up cost once more.
        """
        pool, net = self._pool, self._net
        self._runner = None
        self._cluster = None
        self._pool = None
        self._net = None
        if pool is not None:
            pool.close()
        if net is not None:
            net.close()

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- fabric construction ---------------------------------------------------

    def _serial_runner(self) -> TargetRunner:
        if self._runner is None:
            self._runner = TargetRunner(
                self.target, self.injector,  # type: ignore[arg-type]
                cache=self.cache, metrics=self.metrics, tracer=self.tracer,
            )
        else:
            self.warm_reuses += 1
        return self._runner

    def _report_runner(self) -> TargetRunner:
        """A runner for report re-execution (shared with serial runs)."""
        if self._runner is None:
            self._runner = TargetRunner(
                self.target, self.injector,  # type: ignore[arg-type]
                cache=self.cache, metrics=self.metrics, tracer=self.tracer,
            )
        return self._runner

    def _ensure_cluster(self) -> object:
        """Build (or reuse) the parallel fabric for this engine."""
        if self._cluster is not None:
            self.warm_reuses += 1
            return self._cluster

        from repro.cluster import (
            FaultTolerantFabric,
            LocalCluster,
            NodeManager,
            ProcessPoolCluster,
            RetryPolicy,
            SocketFabric,
            VirtualCluster,
        )

        fabric = self.resolved_fabric
        if fabric == "socket":
            kwargs: dict = {}
            if self.allow_join is not None:
                kwargs["allow_join"] = self.allow_join
            if self.fleet_cache is not None:
                kwargs["fleet_cache"] = self.fleet_cache
            net = SocketFabric(
                self.listen, expected_nodes=self.workers, **kwargs
            )
            try:
                if self.on_fabric is not None:
                    self.on_fabric(net)
                registered = net.wait_for_nodes(
                    count=self.wait_count, timeout=self.node_wait
                )
                if self.on_nodes is not None:
                    self.on_nodes(registered)
            except BaseException:
                net.close()
                raise
            self._net = net
            self._cluster = FaultTolerantFabric(
                net,
                policy=self.retry_policy or RetryPolicy(),
                dispatch_deadline=self.dispatch_deadline,
            )
        elif fabric == "processes":
            # The pool carries its own retry/deadline machinery, so it
            # is not wrapped again.  Without a picklable factory it
            # degrades gracefully to in-process execution on its own.
            factory = self.target_factory or (lambda: self.target)
            self._pool = ProcessPoolCluster(
                factory,
                workers=self.workers,
                name=self.name,
                retry_policy=self.retry_policy or RetryPolicy(),
                dispatch_deadline=self.dispatch_deadline,
                injector_factory=self.injector_factory,
            )
            self._cluster = self._pool
        else:
            self.target.suite  # pre-build once; managers then share it safely
            managers = [
                NodeManager(
                    f"{self.node_prefix}node{i}", self.target,
                    injector=self.injector,  # type: ignore[arg-type]
                    cache=self.cache, metrics=self.metrics,
                )
                for i in range(self.workers)
            ]
            inner = (LocalCluster(managers) if fabric == "threads"
                     else VirtualCluster(managers))
            self._cluster = FaultTolerantFabric(
                inner,
                policy=self.retry_policy or RetryPolicy(),
                dispatch_deadline=self.dispatch_deadline,
            )
        return self._cluster

    # -- campaigns -------------------------------------------------------------

    def explore(
        self,
        space: FaultSpace,
        strategy: SearchStrategy,
        *,
        iterations: int = 250,
        stop: SearchTarget | None = None,
        seed: int = 0,
        batch_size: "int | str | None" = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 0,
        checkpoint_meta: dict[str, object] | None = None,
        resume_from: Checkpoint | str | Path | None = None,
        online_quality: bool = False,
        cluster_distance: int = 1,
        similarity_threshold: float = 0.0,
        on_test: Callable[[object], None] | None = None,
    ) -> EngineRun:
        """Run one campaign on the (possibly warm) fabric.

        The trajectory is a pure function of ``(space, strategy, seed,
        batch size, fabric kind)`` — warm reuse shares processes and
        sockets, never search state, so repeated identical campaigns
        produce byte-identical digests.
        """
        fabric = self.resolved_fabric
        stop = stop or IterationBudget(iterations)
        if isinstance(resume_from, (str, Path)):
            resume_from = load_checkpoint(resume_from)
        started = time.perf_counter()
        if fabric == "serial":
            if batch_size == "auto":
                raise ClusterError(
                    "adaptive batch sizing ('auto') needs a parallel fabric"
                )
            session = ExplorationSession(
                runner=self._serial_runner(),
                space=space,
                metric=self.metric_factory(),
                strategy=strategy,
                target=stop,
                rng=seed,
                batch_size=batch_size or 1,
                on_test=on_test,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                checkpoint_meta=checkpoint_meta,
                resume_from=resume_from,
                metrics=self.metrics,
                tracer=self.tracer,
                online_quality=online_quality,
                cluster_distance=cluster_distance,
                similarity_threshold=similarity_threshold,
            )
            results = session.run()
            run = EngineRun(
                results=results,
                strategy=strategy,
                runner=session.runner,  # type: ignore[arg-type]
                fabric=fabric,
                seconds=time.perf_counter() - started,
                health=None,
                quality=session.quality,
                quality_stats=(
                    session.quality.stats()
                    if session.quality is not None else None
                ),
                cache_stats=(
                    self.cache.stats() if self.cache is not None else None
                ),
            )
        else:
            from repro.cluster import ClusterExplorer

            explorer = ClusterExplorer(
                self._ensure_cluster(),
                space,
                self.metric_factory(),
                strategy,
                stop,
                rng=seed,
                batch_size=batch_size,
                on_test=on_test,
                checkpoint_path=checkpoint_path,
                checkpoint_every=checkpoint_every,
                checkpoint_meta=checkpoint_meta,
                resume_from=resume_from,
                metrics=self.metrics,
                tracer=self.tracer,
                online_quality=online_quality,
                cluster_distance=cluster_distance,
                similarity_threshold=similarity_threshold,
            )
            results = explorer.run()
            run = EngineRun(
                results=results,
                strategy=strategy,
                runner=self._report_runner(),
                fabric=fabric,
                seconds=time.perf_counter() - started,
                health=explorer.health,
                quality=explorer.quality,
                quality_stats=(
                    explorer.quality.stats()
                    if explorer.quality is not None else None
                ),
                cache_stats=(
                    self.cache.stats() if self.cache is not None else None
                ),
            )
        self.runs += 1
        return run
