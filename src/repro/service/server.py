"""The multi-tenant campaign service: ``afex serve`` and its API.

Three pieces, layered so each is testable on its own:

* :class:`JobQueue` — a *pure, synchronous* scheduler core.  Tenants
  have priorities and concurrency quotas; :meth:`JobQueue.pop` always
  returns the highest-priority eligible job (FIFO within a priority
  level) from a tenant below its quota.  No I/O, no clocks — the
  scheduling properties (higher priority never starved by lower,
  quota ceilings never exceeded) are checked by property tests;
* :class:`CampaignService` — the asyncio orchestration around the
  queue: jobs persist in a :class:`~repro.service.store.ResultStore`
  (submission survives a SIGKILL; incomplete jobs requeue on restart
  and resume from their server-side checkpoints), campaigns execute in
  a thread pool on *warm* :class:`~repro.service.engine.CampaignEngine`
  instances pooled by engine signature, and socket-fabric campaigns
  spawn their own ``afex node`` worker processes;
* the HTTP layer — a deliberately tiny stdlib HTTP/1.1 JSON API
  (``asyncio.start_server``; no framework dependencies) plus the
  matching :class:`ServiceClient` used by ``afex submit`` / ``afex
  jobs`` / ``afex results``.

API surface (all JSON)::

    GET  /v1/ping                  liveness + version
    POST /v1/campaigns             {tenant, spec, priority?, label?}
    GET  /v1/jobs                  ?tenant=&state=&limit=
    GET  /v1/jobs/<id>             full job envelope incl. document
    GET  /v1/results               ?campaign=&target=&crashed=&limit=
    GET  /v1/stats                 queue + store + engine-pool counters
    GET  /v1/metrics               Prometheus text exposition
    POST /v1/shutdown              graceful stop
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReportError
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.service.documents import campaign_document, verdict_of
from repro.service.engine import CampaignEngine
from repro.service.spec import CampaignSpec
from repro.service.store import ResultStore, StoredJob

__all__ = [
    "TenantConfig",
    "JobQueue",
    "QueuedJob",
    "CampaignService",
    "ServiceClient",
    "serve",
]

API_VERSION = 1


# -- scheduling core ---------------------------------------------------------------


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's scheduling contract."""

    name: str
    #: higher runs first; ties broken by submission order.
    priority: int = 0
    #: campaigns this tenant may have running at once.
    max_concurrent: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ReportError("tenant name must be non-empty")
        if self.max_concurrent < 1:
            raise ReportError(
                f"tenant {self.name!r}: max_concurrent must be >= 1, "
                f"got {self.max_concurrent}"
            )


@dataclass(frozen=True)
class QueuedJob:
    """A queue entry; ``priority`` is resolved at submission time."""

    job_id: str
    tenant: str
    priority: int
    seq: int


class JobQueue:
    """Priority + per-tenant-quota scheduler (pure, synchronous).

    Invariants (property-tested):

    * :meth:`pop` never returns a job whose tenant is at its
      ``max_concurrent`` quota;
    * among eligible jobs, the highest ``priority`` wins; within one
      priority, the lowest ``seq`` (FIFO) wins — so a higher-priority
      job is never starved by lower-priority traffic;
    * every submitted job is eventually returned exactly once, given
      that running jobs finish.
    """

    def __init__(
        self,
        tenants: "list[TenantConfig] | None" = None,
        *,
        default_priority: int = 0,
        default_quota: int = 1,
    ) -> None:
        self.default_priority = default_priority
        self.default_quota = default_quota
        self._tenants: dict[str, TenantConfig] = {}
        for tenant in tenants or []:
            self._tenants[tenant.name] = tenant
        self._queued: list[QueuedJob] = []
        self._running: dict[str, set[str]] = collections.defaultdict(set)
        self._tenant_of: dict[str, str] = {}
        self._seq = 0

    def configure(self, tenant: TenantConfig) -> None:
        self._tenants[tenant.name] = tenant

    def tenant(self, name: str) -> TenantConfig:
        """The tenant's config, defaulting unknown tenants (open door)."""
        config = self._tenants.get(name)
        if config is None:
            config = TenantConfig(
                name,
                priority=self.default_priority,
                max_concurrent=self.default_quota,
            )
            self._tenants[name] = config
        return config

    def push(
        self,
        job_id: str,
        tenant: str,
        *,
        priority: "int | None" = None,
        seq: "int | None" = None,
    ) -> QueuedJob:
        config = self.tenant(tenant)
        if seq is None:
            self._seq += 1
            seq = self._seq
        else:
            self._seq = max(self._seq, seq)
        entry = QueuedJob(
            job_id=job_id,
            tenant=tenant,
            priority=config.priority if priority is None else priority,
            seq=seq,
        )
        self._queued.append(entry)
        return entry

    def pop(self) -> "QueuedJob | None":
        """The next job to run, or None if nothing is eligible.

        The popped job is immediately accounted as running against its
        tenant's quota; callers must :meth:`finish` it.
        """
        best_at = -1
        best: "QueuedJob | None" = None
        for at, entry in enumerate(self._queued):
            config = self.tenant(entry.tenant)
            if len(self._running[entry.tenant]) >= config.max_concurrent:
                continue
            if best is None or (entry.priority, -entry.seq) > (
                best.priority, -best.seq
            ):
                best, best_at = entry, at
        if best is None:
            return None
        del self._queued[best_at]
        self._running[best.tenant].add(best.job_id)
        self._tenant_of[best.job_id] = best.tenant
        return best

    def finish(self, job_id: str) -> None:
        tenant = self._tenant_of.pop(job_id, None)
        if tenant is not None:
            self._running[tenant].discard(job_id)

    def running_count(self, tenant: "str | None" = None) -> int:
        if tenant is not None:
            return len(self._running[tenant])
        return sum(len(ids) for ids in self._running.values())

    def queued_count(self) -> int:
        return len(self._queued)

    def snapshot(self) -> dict[str, object]:
        return {
            "queued": self.queued_count(),
            "running": self.running_count(),
            "tenants": {
                name: {
                    "priority": config.priority,
                    "max_concurrent": config.max_concurrent,
                    "running": len(self._running[name]),
                    "queued": sum(
                        1 for e in self._queued if e.tenant == name
                    ),
                }
                for name, config in sorted(self._tenants.items())
            },
        }


# -- the service -------------------------------------------------------------------


class CampaignService:
    """Runs submitted campaigns on pooled warm engines, durably.

    Every job submission lands in the store *before* it is scheduled,
    so a killed server forgets nothing: on construction the service
    requeues every non-terminal job, and jobs that had written a
    server-side checkpoint resume from it (byte-identical history, per
    the checkpoint contract).
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        data_dir: "str | Path | None" = None,
        tenants: "list[TenantConfig] | None" = None,
        workers: int = 2,
        default_quota: int = 1,
        checkpoint_every: int = 10,
        node_wait: float = 60.0,
        metrics: "MetricsRegistry | None" = None,
        spawn_nodes: bool = True,
    ) -> None:
        self.store = store
        self.data_dir = (
            Path(data_dir) if data_dir is not None
            else self.store.path.parent
        )
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(tenants, default_quota=default_quota)
        self.workers = max(int(workers), 1)
        self.checkpoint_every = checkpoint_every
        self.node_wait = node_wait
        self.spawn_nodes = spawn_nodes
        self.metrics = metrics or MetricsRegistry()
        self.store.bind_metrics(self.metrics)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="afex-job"
        )
        self._engines: dict[tuple, list[CampaignEngine]] = {}
        self._engine_lock = threading.Lock()
        self._node_procs: dict[int, list[subprocess.Popen]] = {}
        self._wake = asyncio.Event()
        self._stopping = False
        self._scheduler_task: "asyncio.Task | None" = None
        self._inflight: set = set()
        self.engines_built = 0
        self.engines_reused = 0
        # Crash recovery: everything non-terminal goes back on the queue.
        for job in self.store.requeue_incomplete():
            self.queue.push(
                job.id, job.tenant, priority=job.priority, seq=job.seq
            )

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        tenant: str,
        spec: "dict | CampaignSpec",
        *,
        priority: "int | None" = None,
        label: str = "",
    ) -> StoredJob:
        if not isinstance(spec, CampaignSpec):
            spec = CampaignSpec.from_dict(spec)
        if not tenant:
            raise ReportError("submission needs a tenant")
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        entry = self.queue.push(job_id, tenant, priority=priority)
        checkpoint = str(self.data_dir / f"{job_id}.ckpt")
        job = self.store.create_job(
            job_id,
            tenant,
            spec.as_dict(),
            priority=entry.priority,
            label=label or spec.label,
            checkpoint=checkpoint,
        )
        self.metrics.counter("service.jobs.submitted").inc()
        self._wake.set()
        return job

    # -- engine pool -----------------------------------------------------------

    def _acquire_engine(self, spec: CampaignSpec) -> CampaignEngine:
        signature = spec.engine_signature()
        with self._engine_lock:
            idle = self._engines.get(signature)
            if idle:
                self.engines_reused += 1
                return idle.pop()
        self.engines_built += 1
        kwargs: dict = {
            "metrics": self.metrics,
            "name": f"svc-{spec.target}-{self.engines_built}",
            "node_wait": self.node_wait,
        }
        if spec.fabric == "socket" and self.spawn_nodes:
            kwargs["on_fabric"] = (
                lambda net: self._launch_nodes(net, spec)
            )
        return spec.build_engine(**kwargs)

    def _release_engine(
        self, spec: CampaignSpec, engine: CampaignEngine
    ) -> None:
        with self._engine_lock:
            self._engines.setdefault(
                spec.engine_signature(), []
            ).append(engine)

    def _launch_nodes(self, net, spec: CampaignSpec) -> None:
        """Spawn the socket fabric's own ``afex node`` workers."""
        src_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_root), env.get("PYTHONPATH")) if p
        )
        procs = []
        for _ in range(spec.nodes):
            procs.append(subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "node",
                    "--connect", f"{net.host}:{net.port}",
                    "--target", spec.target,
                    "--fault-model", spec.fault_model,
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            ))
        self._node_procs[id(net)] = procs

    def _reap_nodes(self) -> None:
        for procs in self._node_procs.values():
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
        for procs in self._node_procs.values():
            for proc in procs:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
        self._node_procs.clear()

    # -- execution -------------------------------------------------------------

    def _run_job(self, entry: QueuedJob) -> None:
        """Execute one campaign (worker thread)."""
        job = self.store.job(entry.job_id)
        if job is None:  # pragma: no cover - store rows never vanish
            return
        try:
            spec = CampaignSpec.from_dict(job.spec)
        except ReportError as exc:
            self.store.mark_failed(entry.job_id, f"bad spec: {exc}")
            self.metrics.counter("service.jobs.failed").inc()
            return
        self.store.mark_running(entry.job_id)
        started = time.perf_counter()
        first_result_s: "list[float]" = []

        def on_test(_executed) -> None:
            if not first_result_s:
                first_result_s.append(time.perf_counter() - started)

        engine = self._acquire_engine(spec)
        try:
            checkpoint = Path(job.checkpoint) if job.checkpoint else None
            resume_from = (
                checkpoint if checkpoint and checkpoint.exists() else None
            )
            run = engine.explore(
                spec.build_space(engine.target),
                spec.build_strategy(),
                iterations=spec.iterations,
                seed=spec.seed,
                batch_size=spec.batch_size,
                checkpoint_path=checkpoint,
                checkpoint_every=(
                    self.checkpoint_every if checkpoint else 0
                ),
                checkpoint_meta={
                    "job": entry.job_id,
                    "tenant": entry.tenant,
                    "spec": spec.as_dict(),
                },
                resume_from=resume_from,
                online_quality=spec.online_quality,
                cluster_distance=spec.cluster_distance,
                similarity_threshold=spec.similarity_threshold,
                on_test=on_test,
            )
        except Exception as exc:
            engine.close()
            self.store.mark_failed(entry.job_id, repr(exc))
            self.metrics.counter("service.jobs.failed").inc()
            return
        finally:
            self._release_engine(spec, engine)
        target_id = (
            f"{engine.target.name}/{engine.target.version}/"
            f"{spec.fault_model}"
        )
        dedup = self.store.record_campaign(
            entry.job_id,
            run.results,
            target_id=target_id,
            fault_model=spec.fault_model,
            cluster_distance=spec.cluster_distance,
        )
        document = campaign_document(
            run.results,
            campaign={
                "job": entry.job_id,
                "tenant": entry.tenant,
                **spec.as_dict(),
            },
            elapsed_seconds=run.seconds,
            fabric_health=run.health,
            quality_stats=run.quality_stats,
            cache_stats=run.cache_stats,
            top=spec.top,
        )
        document["dedup"] = dedup
        if first_result_s:
            document["first_result_s"] = first_result_s[0]
            self.metrics.histogram(
                "service.job.first_result_s"
            ).observe(first_result_s[0])
        summary = dict(document["summary"])
        summary["verdict"] = document["verdict"]
        self.store.mark_done(
            entry.job_id,
            digest=run.digest,
            summary=summary,
            document=document,
        )
        self.metrics.counter("service.jobs.completed").inc()
        self.metrics.histogram("service.job.seconds").observe(run.seconds)
        if checkpoint is not None:
            # The campaign is archived; its resume snapshot is spent.
            checkpoint.unlink(missing_ok=True)

    # -- scheduling loop -------------------------------------------------------

    async def run(self) -> None:
        """Drive the queue until :meth:`shutdown` (asyncio task)."""
        loop = asyncio.get_running_loop()
        self._scheduler_task = asyncio.current_task()
        while not self._stopping:
            while (
                not self._stopping
                and len(self._inflight) < self.workers
            ):
                entry = self.queue.pop()
                if entry is None:
                    break
                future = loop.run_in_executor(
                    self._executor, self._run_job, entry
                )
                self._inflight.add(future)

                def _done(f, job_id=entry.job_id):
                    self._inflight.discard(f)
                    self.queue.finish(job_id)
                    self._wake.set()

                future.add_done_callback(_done)
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.5)
            except TimeoutError:
                pass

    def shutdown(self) -> None:
        self._stopping = True
        self._wake.set()
        self._executor.shutdown(wait=True, cancel_futures=True)
        with self._engine_lock:
            engines = [e for pool in self._engines.values() for e in pool]
            self._engines.clear()
        for engine in engines:
            engine.close()
        self._reap_nodes()

    def replay_result(self, crash_id: str) -> dict[str, object]:
        """Deterministically re-execute one stored result by crash id.

        Resolves the (possibly abbreviated) id against this service's
        store, re-runs the scenario with provenance capture on, and
        diffs the outcome against the stored payload.  One simulated
        test is cheap, so this runs inline on the calling thread; raises
        :class:`~repro.errors.ReplayError` for unknown/ambiguous ids.
        """
        from repro.core.cache import result_to_payload
        from repro.replay import replay, result_digest

        outcome = replay(crash_id, store=self.store)
        return {
            "crash_id": outcome.source.crash_id,
            "source": outcome.source.source,
            "target": (
                f"{outcome.source.target_name}/"
                f"{outcome.source.target_version}"
            ),
            "fault_model": outcome.source.fault_model,
            "matches": outcome.matches,
            "divergences": [
                {"key": key, "recorded": recorded, "replayed": replayed}
                for key, recorded, replayed in outcome.divergences
            ],
            "explanation": outcome.explanation,
            "result_digest": result_digest(outcome.result),
            "result": result_to_payload(outcome.result),
        }

    def stats(self) -> dict[str, object]:
        return {
            "version": API_VERSION,
            "workers": self.workers,
            "queue": self.queue.snapshot(),
            "store": self.store.counters(),
            "engines": {
                "built": self.engines_built,
                "reused": self.engines_reused,
                "pooled": sum(
                    len(pool) for pool in self._engines.values()
                ),
            },
        }


# -- HTTP layer --------------------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
}


def _parse_query(raw: str) -> dict[str, str]:
    from urllib.parse import parse_qsl

    return dict(parse_qsl(raw, keep_blank_values=True))


def _as_bool(value: "str | None") -> "bool | None":
    if value is None or value == "":
        return None
    return value.lower() in ("1", "true", "yes", "on")


class _Api:
    """Routes HTTP requests onto a :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        #: set once a shutdown request arrives; serve() watches it.
        self.shutdown_requested = asyncio.Event()

    def dispatch(
        self, method: str, path: str, query: dict, body: "dict | None"
    ) -> dict:
        if path == "/v1/ping":
            return {
                "ok": True,
                "version": API_VERSION,
                "service": "afex-campaigns",
            }
        if path == "/v1/campaigns" and method == "POST":
            return self._submit(body or {})
        if path == "/v1/jobs" and method == "GET":
            jobs = self.service.store.jobs(
                tenant=query.get("tenant") or None,
                state=query.get("state") or None,
                limit=int(query.get("limit", 200)),
            )
            return {
                "jobs": [j.as_dict(include_document=False) for j in jobs]
            }
        if path.startswith("/v1/jobs/") and method == "GET":
            job = self.service.store.job(path[len("/v1/jobs/"):])
            if job is None:
                raise _HttpError(404, "no such job")
            return {"job": job.as_dict()}
        if path.startswith("/v1/results/") and path.endswith("/replay"):
            if method != "POST":
                raise _HttpError(405, f"{method} not allowed on {path}")
            crash_id = path[len("/v1/results/"):-len("/replay")]
            from repro.errors import ReplayError

            try:
                return self.service.replay_result(crash_id)
            except ReplayError as exc:
                status = 404 if "not found" in str(exc) else 400
                raise _HttpError(status, str(exc)) from None
        if path == "/v1/results" and method == "GET":
            rows = self.service.store.results(
                campaign=query.get("campaign") or None,
                target=query.get("target") or None,
                crashed=_as_bool(query.get("crashed")),
                failed=_as_bool(query.get("failed")),
                min_impact=(
                    float(query["min_impact"])
                    if query.get("min_impact") else None
                ),
                limit=int(query.get("limit", 100)),
            )
            return {"results": rows}
        if path == "/v1/stats" and method == "GET":
            return self.service.stats()
        if path == "/v1/shutdown" and method == "POST":
            self.shutdown_requested.set()
            return {"ok": True, "stopping": True}
        if path in (
            "/v1/ping", "/v1/stats", "/v1/jobs", "/v1/results"
        ):
            raise _HttpError(405, f"{method} not allowed on {path}")
        raise _HttpError(404, f"no route for {path}")

    def _submit(self, body: dict) -> dict:
        tenant = body.get("tenant")
        if not tenant or not isinstance(tenant, str):
            raise _HttpError(400, "submission needs a 'tenant' string")
        raw_spec = body.get("spec")
        if not isinstance(raw_spec, dict):
            raise _HttpError(400, "submission needs a 'spec' object")
        priority = body.get("priority")
        if priority is not None and not isinstance(priority, int):
            raise _HttpError(400, "'priority' must be an integer")
        try:
            job = self.service.submit(
                tenant,
                raw_spec,
                priority=priority,
                label=str(body.get("label", "")),
            )
        except ReportError as exc:
            raise _HttpError(400, str(exc)) from None
        return {"job": job.as_dict(include_document=False)}


async def _handle_connection(
    api: _Api,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return
        method, raw_target, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body_bytes = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        path, _, raw_query = raw_target.partition("?")
        try:
            body = json.loads(body_bytes) if body_bytes else None
            if body_bytes and not isinstance(body, dict):
                raise _HttpError(400, "request body must be a JSON object")
            if path == "/v1/metrics" and method.upper() == "GET":
                payload = {}
            else:
                payload = api.dispatch(
                    method.upper(), path, _parse_query(raw_query), body
                )
            status = 200
        except _HttpError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except json.JSONDecodeError as exc:
            status, payload = 400, {"error": f"bad JSON body: {exc}"}
        except Exception as exc:  # noqa: BLE001 - fault-tolerant server
            status, payload = 500, {"error": repr(exc)}
        if path == "/v1/metrics" and status == 200:
            data = to_prometheus(api.service.metrics).encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        writer.write(
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1")
        )
        writer.write(data)
        await writer.drain()
    except (
        asyncio.IncompleteReadError, ConnectionError, ValueError,
    ):  # pragma: no cover - client hangups
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:  # pragma: no cover
            pass


async def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    on_listen=None,
) -> None:
    """Run the scheduler and the HTTP API until shutdown."""
    api = _Api(service)

    async def handler(reader, writer):
        await _handle_connection(api, reader, writer)

    server = await asyncio.start_server(handler, host, port)
    bound = server.sockets[0].getsockname()
    if on_listen is not None:
        on_listen(bound[0], bound[1])
    scheduler = asyncio.ensure_future(service.run())
    try:
        await api.shutdown_requested.wait()
    finally:
        server.close()
        await server.wait_closed()
        service.shutdown()
        scheduler.cancel()
        try:
            await scheduler
        except asyncio.CancelledError:
            pass


# -- the client --------------------------------------------------------------------


class ServiceClient:
    """Tiny urllib client for the campaign service API."""

    def __init__(self, endpoint: str, timeout: float = 30.0) -> None:
        self.endpoint = endpoint.rstrip("/")
        if "://" not in self.endpoint:
            self.endpoint = f"http://{self.endpoint}"
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: "dict | None" = None
    ) -> dict:
        request = urllib.request.Request(
            f"{self.endpoint}{path}",
            method=method,
            data=(
                json.dumps(body).encode("utf-8")
                if body is not None else None
            ),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except (ValueError, AttributeError):
                message = str(exc)
            raise ReportError(
                f"service error {exc.code}: {message}"
            ) from None
        except urllib.error.URLError as exc:
            raise ReportError(
                f"cannot reach service at {self.endpoint}: {exc.reason}"
            ) from None

    def ping(self) -> dict:
        return self._request("GET", "/v1/ping")

    def submit(
        self,
        tenant: str,
        spec: "dict | CampaignSpec",
        *,
        priority: "int | None" = None,
        label: str = "",
    ) -> dict:
        if isinstance(spec, CampaignSpec):
            spec = spec.as_dict()
        payload: dict = {"tenant": tenant, "spec": spec, "label": label}
        if priority is not None:
            payload["priority"] = priority
        return self._request("POST", "/v1/campaigns", payload)["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(
        self,
        tenant: "str | None" = None,
        state: "str | None" = None,
        limit: int = 200,
    ) -> list:
        query = [f"limit={int(limit)}"]
        if tenant:
            query.append(f"tenant={tenant}")
        if state:
            query.append(f"state={state}")
        return self._request(
            "GET", "/v1/jobs?" + "&".join(query)
        )["jobs"]

    def results(self, **filters) -> list:
        query = "&".join(
            f"{key}={value}" for key, value in filters.items()
            if value is not None
        )
        return self._request(
            "GET", f"/v1/results?{query}" if query else "/v1/results"
        )["results"]

    def replay(self, crash_id: str) -> dict:
        """Server-side replay of one stored result by crash id."""
        return self._request("POST", f"/v1/results/{crash_id}/replay")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll: float = 0.5,
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise ReportError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll)
