"""Serializable campaign specifications for the service API.

A :class:`CampaignSpec` is the JSON document a client submits to the
campaign service: which target to certify, under which fault model,
with which strategy/budget/seed, and on which fabric.  It deliberately
covers exactly the knobs ``afex run`` exposes for its *default* space —
so a served campaign and a direct ``afex run`` with the same spec are
the **same campaign** and produce byte-identical history digests (the
service acceptance gate).

Specs are validated and canonicalized at construction (unknown keys
rejected, fault-model composition order normalized), so two spellings
of the same campaign dedup to one identity everywhere downstream.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ReportError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.faultspace import FaultSpace
    from repro.core.search.base import SearchStrategy
    from repro.service.engine import CampaignEngine
    from repro.sim.testsuite import Target

__all__ = ["CampaignSpec", "SPEC_TARGETS", "SPEC_STRATEGIES", "SPEC_FABRICS"]

SPEC_TARGETS = (
    "coreutils", "minidb", "httpd", "docstore", "docstore-0.8",
    "docstore-2.0", "replkv",
)
SPEC_STRATEGIES = ("fitness", "random", "exhaustive", "genetic")
SPEC_FABRICS = ("serial", "threads", "processes", "virtual", "socket")


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign, as submitted over the wire."""

    target: str
    strategy: str = "fitness"
    iterations: int = 250
    seed: int = 0
    fault_model: str = "errno"
    max_call: int = 2
    fabric: str = "serial"
    workers: int = 4
    #: socket fabric: explorer nodes to wait for (and, when the service
    #: launches them itself, to spawn).
    nodes: int = 1
    batch_size: "int | None" = None
    online_quality: bool = False
    cluster_distance: int = 1
    similarity_threshold: float = 0.0
    #: how many top faults the outcome document reports.
    top: int = 10
    #: free-form client label, echoed in job listings.
    label: str = ""

    def __post_init__(self) -> None:
        from repro.errors import InjectionError
        from repro.injection.models import canonical_spec

        if self.target not in SPEC_TARGETS:
            raise ReportError(
                f"unknown target {self.target!r}; available: {SPEC_TARGETS}"
            )
        if self.strategy not in SPEC_STRATEGIES:
            raise ReportError(
                f"unknown strategy {self.strategy!r}; "
                f"available: {SPEC_STRATEGIES}"
            )
        if self.fabric not in SPEC_FABRICS:
            raise ReportError(
                f"unknown fabric {self.fabric!r}; available: {SPEC_FABRICS}"
            )
        if self.iterations < 1:
            raise ReportError(f"iterations must be >= 1, got {self.iterations}")
        if self.workers < 1:
            raise ReportError(f"workers must be >= 1, got {self.workers}")
        if self.nodes < 1:
            raise ReportError(f"nodes must be >= 1, got {self.nodes}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ReportError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        try:
            object.__setattr__(
                self, "fault_model", canonical_spec(self.fault_model)
            )
        except InjectionError as exc:
            raise ReportError(f"fault_model: {exc}") from None

    # -- wire format -----------------------------------------------------------

    def as_dict(self) -> dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, raw: dict[str, object]) -> "CampaignSpec":
        if not isinstance(raw, dict):
            raise ReportError(f"campaign spec must be an object, got {raw!r}")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(raw) - known
        if unknown:
            raise ReportError(
                f"unknown campaign spec keys: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "target" not in raw:
            raise ReportError("campaign spec needs a 'target'")
        try:
            return cls(**raw)  # type: ignore[arg-type]
        except TypeError as exc:
            raise ReportError(f"bad campaign spec: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            return cls.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ReportError(f"unparseable campaign spec: {exc}") from None

    # -- identity --------------------------------------------------------------

    def engine_signature(self) -> tuple:
        """What must match for two campaigns to share a warm engine."""
        return (
            self.target, self.fabric, self.workers, self.nodes,
            self.fault_model,
        )

    # -- builders (the exact ``afex run`` construction path) -------------------

    def build_target(self) -> "Target":
        from repro.sim.targets import target_by_name

        return target_by_name(self.target)

    def build_space(self, target: "Target") -> "FaultSpace":
        from repro.injection.models import compose_models, model_space

        return model_space(
            target, compose_models(self.fault_model), max_call=self.max_call
        )

    def build_strategy(self) -> "SearchStrategy":
        from repro.core.search import strategy_by_name

        return strategy_by_name(self.strategy)

    def build_engine(self, **overrides) -> "CampaignEngine":
        """An engine configured exactly like ``afex run`` would be.

        ``overrides`` pass engine kwargs through (``on_fabric`` to
        launch socket nodes, ``metrics`` for service observability...).
        """
        import functools

        from repro.injection.models import model_injector
        from repro.service.engine import CampaignEngine
        from repro.sim.targets import target_by_name

        target = overrides.pop("target", None) or self.build_target()
        workers = self.nodes if self.fabric == "socket" else self.workers
        kwargs: dict = dict(
            fabric=self.fabric,
            workers=workers,
            injector=model_injector(self.fault_model),
            injector_factory=functools.partial(
                model_injector, self.fault_model
            ),
            target_factory=functools.partial(target_by_name, self.target),
            node_prefix="",
        )
        kwargs.update(overrides)
        return CampaignEngine(target, **kwargs)
