"""Exception hierarchy for the AFEX reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package-level failures without accidentally swallowing
simulated-crash signals (which live in :mod:`repro.sim.crashes` and
deliberately do *not* derive from :class:`ReproError` — a simulated
segfault is an experimental observation, not a library bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FaultSpaceError(ReproError):
    """A fault-space definition or operation is invalid."""


class DslError(ReproError):
    """The fault-space description language input failed to parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class InjectionError(ReproError):
    """An injection plan is malformed or cannot be applied."""


class TargetError(ReproError):
    """A system-under-test definition is inconsistent."""


class SearchError(ReproError):
    """A search strategy was misused or reached an invalid state."""


class ClusterError(ReproError):
    """The explorer/node-manager substrate encountered a protocol error."""


class ReportError(ReproError):
    """Result reporting failed (bad result set, unknown metric, ...)."""


class CheckpointError(ReproError):
    """A campaign checkpoint is unreadable, incompatible, or divergent."""


class ReplayError(ReproError):
    """A crash id could not be resolved or re-executed for replay."""
