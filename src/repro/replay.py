"""One-command crash replay with call-level provenance.

A stored result's **crash id** is the store's scenario-key digest (see
:func:`repro.service.store.scenario_key_digest`): a SHA-256 over the
content address ``(target/version/fault-model, subspace, canonical
attribute vector, trial, step budget)``.  Because the simulated world is
deterministic, that address fully determines the execution — so the id
alone, resolved against any artifact that recorded it, is enough to
rebuild the exact injector spec and re-run the scenario.

Resolution order (first artifact that knows the id wins):

1. a service :class:`~repro.service.store.ResultStore` (``--store``);
2. a campaign checkpoint written by ``afex run --checkpoint`` or the
   service's server-side snapshots (``--checkpoint``);
3. a campaign outcome document written by ``--report-json``
   (``--report-json``; coarse — the document stores outcomes, not full
   payloads, so only the coarse outcome is diffed).

Ids may be abbreviated git-style: any unambiguous prefix resolves; an
ambiguous one raises :class:`~repro.errors.ReplayError` listing the
candidates.

The replayed execution always runs with provenance capture on, so a
divergence (or a reproduced crash) comes with a call-level explanation:
which sim-libc call, at which call index, on which resource, the fault
fired — and what it propagated to.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReplayError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fault import Fault
    from repro.sim.process import RunResult

__all__ = [
    "ReplaySource",
    "ReplayOutcome",
    "crash_id_of",
    "result_digest",
    "resolve_crash_id",
    "replay_source",
    "replay",
    "format_outcome",
]

#: payload keys whose values legitimately vary across processes and are
#: therefore excluded from the divergence diff (none today: the sim is
#: fully deterministic, wall-clock never enters the payload).
_DIFF_EXCLUDED: frozenset = frozenset()


# -- identity ---------------------------------------------------------------


def crash_id_of(
    target_name: str,
    target_version: str,
    fault_model: str,
    subspace: str,
    attributes: tuple,
) -> str:
    """The stable crash id of one scenario (the store's digest formula).

    ``fault_model`` is the canonical plugin spec *without* the
    ``model:`` injector-name prefix — the identity
    :meth:`~repro.service.store.ResultStore.record_campaign` keys rows
    with.
    """
    from repro.service.store import scenario_key_digest

    target_id = f"{target_name}/{target_version}/{fault_model}"
    return scenario_key_digest(target_id, subspace, attributes)


def result_digest(result: "RunResult") -> str:
    """Content digest of one execution outcome (canonical payload JSON).

    Two runs of the same scenario match iff their digests match; replay
    scripts and the smoke tests compare this instead of eyeballing
    summaries.
    """
    from repro.core.cache import result_to_payload

    canonical = json.dumps(
        result_to_payload(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _decanonical(value: object) -> object:
    """JSON lists back to tuples (the Fault attribute-value shape)."""
    if isinstance(value, list):
        return tuple(_decanonical(v) for v in value)
    return value


def _attributes_tuple(raw) -> tuple:
    return tuple((name, _decanonical(value)) for name, value in raw)


# -- resolution -------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySource:
    """Everything a resolved crash id tells us about the original run."""

    crash_id: str
    target_name: str
    target_version: str
    #: canonical fault-model spec (no ``model:`` prefix).
    fault_model: str
    subspace: str
    attributes: tuple
    #: where the id resolved: ``store`` | ``checkpoint`` | ``report``.
    source: str
    #: full recorded RunResult wire payload (None for report documents,
    #: which store outcomes only).
    recorded_payload: dict | None = None
    #: coarse recorded outcome for payload-less sources.
    recorded_outcome: dict = field(default_factory=dict)


def _split_target_id(target_id: str) -> tuple[str, str, str]:
    """``name/version/fault_model`` → parts (fault model may hold '+')."""
    parts = target_id.split("/", 2)
    if len(parts) != 3:
        raise ReplayError(
            f"stored target id {target_id!r} is not name/version/model"
        )
    return parts[0], parts[1], parts[2]


def _resolve_in_store(store, prefix: str) -> ReplaySource | None:
    matches = store.resolve_digest(prefix)
    if not matches:
        return None
    if len(matches) > 1:
        listing = ", ".join(d[:16] for d in matches[:8])
        raise ReplayError(
            f"crash id {prefix!r} is ambiguous in the store "
            f"({len(matches)} matches: {listing}...)"
        )
    row = store.result_row(matches[0])
    name, version, fault_model = _split_target_id(row["target"])
    return ReplaySource(
        crash_id=row["digest"],
        target_name=name,
        target_version=version,
        fault_model=fault_model,
        subspace=row["subspace"],
        attributes=_attributes_tuple(row["attributes"]),
        source="store",
        recorded_payload=row["payload"],
    )


def _checkpoint_identity(meta: dict) -> tuple[str, str] | None:
    """``(target name, fault model)`` from either checkpoint meta shape.

    ``afex run`` writes flat meta (``target``/``fault_model``); the
    campaign service nests the spec (``{"spec": {...}}``).
    """
    spec = meta.get("spec")
    if isinstance(spec, dict):
        meta = spec
    target = meta.get("target")
    if not target:
        return None
    return str(target), str(meta.get("fault_model", "errno"))


def _resolve_in_checkpoint(path, prefix: str) -> ReplaySource | None:
    from repro.core.checkpoint import load_checkpoint
    from repro.sim.targets import target_by_name

    checkpoint = load_checkpoint(path)
    identity = _checkpoint_identity(checkpoint.meta)
    if identity is None:
        raise ReplayError(
            f"checkpoint {path} has no target in its meta; cannot "
            "compute crash ids for its history"
        )
    target_name, fault_model = identity
    version = target_by_name(target_name).version
    matches: list[tuple[str, dict]] = []
    for payload in checkpoint.executed:
        fault_data = payload["fault"]
        attributes = _attributes_tuple(fault_data["attributes"])
        digest = crash_id_of(
            target_name, version, fault_model,
            fault_data["subspace"], attributes,
        )
        if digest.startswith(prefix):
            matches.append((digest, payload))
    if not matches:
        return None
    distinct = {digest for digest, _ in matches}
    if len(distinct) > 1:
        listing = ", ".join(sorted(d[:16] for d in distinct))
        raise ReplayError(
            f"crash id {prefix!r} is ambiguous in checkpoint {path} "
            f"({len(distinct)} matches: {listing})"
        )
    digest, payload = matches[0]
    fault_data = payload["fault"]
    return ReplaySource(
        crash_id=digest,
        target_name=target_name,
        target_version=version,
        fault_model=fault_model,
        subspace=fault_data["subspace"],
        attributes=_attributes_tuple(fault_data["attributes"]),
        source="checkpoint",
        recorded_payload=dict(payload["result"]),
    )


def _resolve_in_report(path, prefix: str) -> ReplaySource | None:
    from repro.sim.targets import target_by_name

    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReplayError(f"unreadable report document {path}: {exc}") from exc
    campaign = document.get("campaign") or {}
    target_name = campaign.get("target")
    fault_model = campaign.get("fault_model", "errno")
    if not target_name:
        raise ReplayError(
            f"report document {path} has no campaign target; cannot replay"
        )
    matches = [
        entry for entry in document.get("top", ())
        if str(entry.get("crash_id", "")).startswith(prefix)
        and entry.get("crash_id")
    ]
    if not matches:
        return None
    distinct = {entry["crash_id"] for entry in matches}
    if len(distinct) > 1:
        raise ReplayError(
            f"crash id {prefix!r} is ambiguous in report {path} "
            f"({len(distinct)} matches)"
        )
    entry = matches[0]
    if "subspace" not in entry or "attributes" not in entry:
        raise ReplayError(
            f"report {path} predates crash-id documents; re-generate it "
            "with --report-json to make its entries replayable"
        )
    return ReplaySource(
        crash_id=entry["crash_id"],
        target_name=str(target_name),
        target_version=target_by_name(str(target_name)).version,
        fault_model=str(fault_model),
        subspace=str(entry["subspace"]),
        attributes=_attributes_tuple(entry["attributes"]),
        source="report",
        recorded_outcome={
            "outcome": entry.get("outcome"),
            "crashed": entry.get("crashed"),
            "hung": entry.get("hung"),
            "failed": entry.get("failed"),
        },
    )


def resolve_crash_id(
    crash_id: str,
    store=None,
    checkpoint: str | Path | None = None,
    report: str | Path | None = None,
) -> ReplaySource:
    """Resolve a (possibly abbreviated) crash id against the artifacts.

    Tries the store, then the checkpoint, then the report document —
    the order of decreasing recorded fidelity — and raises
    :class:`ReplayError` when no artifact knows the id (or none was
    given).
    """
    prefix = crash_id.strip().lower()
    if not prefix or any(c not in "0123456789abcdef" for c in prefix):
        raise ReplayError(f"{crash_id!r} is not a hex crash id")
    tried = []
    if store is not None:
        source = _resolve_in_store(store, prefix)
        if source is not None:
            return source
        tried.append(f"store {getattr(store, 'path', '?')}")
    if checkpoint is not None:
        source = _resolve_in_checkpoint(checkpoint, prefix)
        if source is not None:
            return source
        tried.append(f"checkpoint {checkpoint}")
    if report is not None:
        source = _resolve_in_report(report, prefix)
        if source is not None:
            return source
        tried.append(f"report {report}")
    if not tried:
        raise ReplayError(
            "no artifact to resolve against: pass --store, --checkpoint, "
            "or --report-json"
        )
    raise ReplayError(
        f"crash id {prefix!r} not found in " + " or ".join(tried)
    )


# -- re-execution and divergence diffing ------------------------------------


@dataclass(frozen=True)
class ReplayOutcome:
    """One deterministic re-execution, diffed against the record."""

    source: ReplaySource
    result: "RunResult"
    #: ``[(payload key, recorded value, replayed value), ...]``; empty
    #: means the replay reproduced the record exactly (at whatever
    #: fidelity the source artifact recorded).
    divergences: list
    #: call-level explanation of the injection (or of the first
    #: divergence), derived from the replayed provenance log.
    explanation: str

    @property
    def matches(self) -> bool:
        return not self.divergences


def _build_fault(source: ReplaySource) -> "Fault":
    from repro.core.fault import Fault

    return Fault(source.subspace, source.attributes)


def replay_source(source: ReplaySource) -> "RunResult":
    """Deterministically re-execute the resolved scenario.

    Rebuilds the exact :class:`~repro.injection.models.base.
    ModelInjector` from the recorded fault-model spec and runs the
    scenario uncached, with provenance capture on.
    """
    from repro.core.runner import TargetRunner
    from repro.errors import ReproError
    from repro.injection.models import model_injector
    from repro.sim.targets import target_by_name

    try:
        target = target_by_name(source.target_name)
    except ReproError as exc:
        raise ReplayError(
            f"unknown target {source.target_name!r}: {exc}"
        ) from exc
    if target.version != source.target_version:
        raise ReplayError(
            f"target {source.target_name} is now version "
            f"{target.version}, but the crash id was recorded against "
            f"{source.target_version}; the executions are not comparable"
        )
    runner = TargetRunner(
        target, model_injector(source.fault_model), provenance=True
    )
    return runner(_build_fault(source))


def _diff_payloads(recorded: dict, replayed: dict) -> list:
    """Ordered key-level differences between two result payloads.

    A record written before (or without) provenance capture is compared
    provenance-blind, so enabling capture never *manufactures* a
    divergence.
    """
    recorded = dict(recorded)
    replayed = dict(replayed)
    if "provenance" not in recorded:
        replayed.pop("provenance", None)
    divergences = []
    for key in sorted((set(recorded) | set(replayed)) - _DIFF_EXCLUDED):
        if recorded.get(key) != replayed.get(key):
            divergences.append((key, recorded.get(key), replayed.get(key)))
    return divergences


def _diff_outcome(recorded: dict, result: "RunResult") -> list:
    """Coarse diff for report-document sources (no full payload)."""
    observed = {
        "crashed": result.crashed,
        "hung": result.hung,
        "failed": result.failed,
        "outcome": result.summary(),
    }
    return [
        (key, recorded[key], observed[key])
        for key in ("crashed", "hung", "failed", "outcome")
        if recorded.get(key) is not None and recorded[key] != observed[key]
    ]


def _propagation_summary(result: "RunResult") -> str:
    if result.crash_kind:
        return f"{result.crash_kind} ({result.crash_message or 'no message'})"
    if result.invariant_violations:
        return f"invariant violation: {result.invariant_violations[0]}"
    if result.failed:
        return result.failure_message or "test failure"
    return "a passing run"


def explain(result: "RunResult") -> str:
    """Call-level provenance explanation of one replayed execution.

    Narrates the first fired injection — which call, at which index, on
    which resource — and what it propagated to; falls back to the
    injection stack (or a clean-run note) when nothing fired or
    provenance is absent.
    """
    for record in result.provenance:
        if record.injected:
            where = (
                f" on {record.resource}" if record.resource is not None else ""
            )
            return (
                f"fault at {record.function} call #{record.call_number}"
                f"{where} propagated to {_propagation_summary(result)}"
            )
    if result.injected and result.injection_stack:
        return (
            f"fault under {' > '.join(result.injection_stack)} propagated "
            f"to {_propagation_summary(result)}"
        )
    return f"no injection fired; the run ended in {_propagation_summary(result)}"


def replay(
    crash_id: str,
    store=None,
    checkpoint: str | Path | None = None,
    report: str | Path | None = None,
) -> ReplayOutcome:
    """Resolve, re-execute, and diff one crash id — the whole pipeline."""
    from repro.core.cache import result_to_payload

    source = resolve_crash_id(
        crash_id, store=store, checkpoint=checkpoint, report=report
    )
    result = replay_source(source)
    if source.recorded_payload is not None:
        divergences = _diff_payloads(
            source.recorded_payload, result_to_payload(result)
        )
    else:
        divergences = _diff_outcome(source.recorded_outcome, result)
    return ReplayOutcome(
        source=source,
        result=result,
        divergences=divergences,
        explanation=explain(result),
    )


def format_outcome(outcome: ReplayOutcome) -> str:
    """Human-readable replay verdict (what ``afex replay`` prints)."""
    source = outcome.source
    lines = [
        f"crash id:  {source.crash_id}",
        f"resolved:  via {source.source} — {source.target_name}/"
        f"{source.target_version} under fault model {source.fault_model}",
        f"scenario:  {_build_fault(source)}",
        f"outcome:   {outcome.result.summary()}",
        f"explain:   {outcome.explanation}",
    ]
    if outcome.matches:
        fidelity = (
            "full recorded payload" if source.recorded_payload is not None
            else "recorded outcome (report documents store no payloads)"
        )
        lines.append(f"verdict:   REPRODUCED — zero divergence from the "
                     f"{fidelity}")
    else:
        lines.append(
            f"verdict:   DIVERGED in {len(outcome.divergences)} field(s)"
        )
        for key, recorded, replayed in outcome.divergences[:10]:
            lines.append(f"  {key}: recorded {recorded!r}")
            lines.append(f"  {' ' * len(key)}  replayed {replayed!r}")
    return "\n".join(lines)
