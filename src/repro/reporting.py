"""Paper-style reporting helpers.

The evaluation benches regenerate each of the paper's tables and
figures; these helpers turn :class:`~repro.core.results.ResultSet`
objects into the corresponding rows, series, and ASCII fault-space maps
(the Fig. 1 rendering).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.results import ExecutedTest, ResultSet
from repro.injection.libfi import LibFaultInjector
from repro.sim.process import run_test
from repro.sim.testsuite import Target
from repro.util.tables import TextTable

__all__ = [
    "comparison_table",
    "cumulative_counts",
    "structure_map",
    "render_structure_map",
]


def comparison_table(
    columns: dict[str, ResultSet],
    title: str = "",
    coverage_universe: frozenset[str] | None = None,
) -> TextTable:
    """The Tables 1-3 layout: one column per strategy, one row per metric.

    When ``coverage_universe`` is given (usually the blocks an
    exhaustive run covered), a coverage percentage row is included.
    """
    table = TextTable(["metric", *columns.keys()], title=title)
    if coverage_universe is not None:
        table.add_row([
            "coverage %",
            *(
                f"{100.0 * len(rs.coverage_union() & coverage_universe) / max(len(coverage_universe), 1):.1f}"
                for rs in columns.values()
            ),
        ])
    table.add_row(["# tests executed", *(len(rs) for rs in columns.values())])
    table.add_row(["# failed tests", *(rs.failed_count() for rs in columns.values())])
    table.add_row(["# crashes", *(rs.crash_count() for rs in columns.values())])
    table.add_row(["# hangs", *(len(rs.hangs()) for rs in columns.values())])
    return table


def cumulative_counts(
    results: ResultSet,
    predicate: Callable[[ExecutedTest], bool] = lambda t: t.failed,
) -> list[int]:
    """The Fig. 8 series: matching-test count after each iteration."""
    counts = []
    total = 0
    for test in results:
        if predicate(test):
            total += 1
        counts.append(total)
    return counts


def structure_map(
    target: Target,
    functions: Sequence[str],
    test_ids: Sequence[int] | None = None,
    call_number: int = 1,
) -> list[list[bool]]:
    """The Fig. 1 grid: does failing call #``call_number`` to function x
    during test y make the test fail?

    Returns ``grid[test_index][function_index]`` booleans.
    """
    injector = LibFaultInjector()
    ids = list(test_ids) if test_ids is not None else list(target.suite.ids)
    grid: list[list[bool]] = []
    for test_id in ids:
        row = []
        for function in functions:
            plan = injector.plan_for({"function": function, "call": call_number})
            result = run_test(target, target.suite[test_id], plan)
            row.append(result.failed)
        grid.append(row)
    return grid


def render_structure_map(
    grid: list[list[bool]],
    functions: Sequence[str],
    test_ids: Sequence[int],
) -> str:
    """ASCII rendering of a Fig. 1 structure map (# = failure, . = none)."""
    lines = []
    width = max(len(str(t)) for t in test_ids)
    for test_id, row in zip(test_ids, grid):
        cells = "".join("#" if failed else "." for failed in row)
        lines.append(f"test {str(test_id).rjust(width)} | {cells}")
    lines.append(f"{' ' * (7 + width)}+-{'-' * len(functions)}")
    # Vertical function labels, paper-style.
    tallest = max(len(f) for f in functions)
    for i in range(tallest):
        chars = "".join(
            f[i] if i < len(f) else " " for f in functions
        )
        lines.append(f"{' ' * (9 + width)}{chars}")
    return "\n".join(lines)
