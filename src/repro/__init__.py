"""AFEX reproduction: fast black-box testing of system recovery code.

Reproduces Banabic & Candea, "Fast Black-Box Testing of System Recovery
Code" (EuroSys 2012): a fitness-guided fault-injection explorer, the
fault-space description language, result-quality metrics (redundancy
clustering, impact precision, practical relevance), and a cluster-style
parallel execution substrate — plus simulated systems under test
(coreutils, MiniDB, MiniHttpd, DocStore) standing in for the paper's
real targets.

Quickstart::

    from repro import (
        TargetRunner, FaultSpace, FitnessGuidedSearch,
        ExplorationSession, IterationBudget, standard_impact,
        target_by_name,
    )

    target = target_by_name("coreutils")
    space = FaultSpace.product(
        test=range(1, len(target.suite) + 1),
        function=target.libc_functions(),
        call=[0, 1, 2],
    )
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(250),
        rng=1,
    )
    results = session.run()
    print(results.summary())
"""

from repro.core import (
    Axis,
    CollectMatching,
    CompositeImpact,
    CoverageImpact,
    CrashImpact,
    ExecutedTest,
    ExhaustiveSearch,
    ExplorationSession,
    FailedTestImpact,
    Fault,
    FaultSpace,
    FitnessGuidedSearch,
    GeneticSearch,
    HangImpact,
    ImpactMetric,
    ImpactThreshold,
    InvariantImpact,
    IterationBudget,
    RandomSearch,
    ResultCache,
    ResultSet,
    SearchStrategy,
    ResourceLeakImpact,
    SearchTarget,
    SlowdownImpact,
    Subspace,
    TargetRunner,
    TimeBudget,
    measure_leak_baseline,
    measure_step_baseline,
    parse_fault_space,
    standard_impact,
)
from repro.injection import (
    AtomicFault,
    InjectionPlan,
    LibFaultInjector,
    MultiLibFaultInjector,
)
from repro.quality import (
    EnvironmentModel,
    RedundancyFeedback,
    build_report,
    cluster_stacks,
    levenshtein,
    measure_precision,
)
from repro.sim import RunResult, run_test
from repro.sim.targets import target_by_name

__version__ = "1.0.0"

__all__ = [
    "AtomicFault",
    "Axis",
    "CollectMatching",
    "CompositeImpact",
    "CoverageImpact",
    "CrashImpact",
    "EnvironmentModel",
    "ExecutedTest",
    "ExhaustiveSearch",
    "ExplorationSession",
    "FailedTestImpact",
    "Fault",
    "FaultSpace",
    "FitnessGuidedSearch",
    "GeneticSearch",
    "HangImpact",
    "ImpactMetric",
    "ImpactThreshold",
    "InjectionPlan",
    "InvariantImpact",
    "IterationBudget",
    "LibFaultInjector",
    "MultiLibFaultInjector",
    "RandomSearch",
    "RedundancyFeedback",
    "ResourceLeakImpact",
    "ResultCache",
    "ResultSet",
    "RunResult",
    "SearchStrategy",
    "SearchTarget",
    "SlowdownImpact",
    "Subspace",
    "TargetRunner",
    "TimeBudget",
    "build_report",
    "cluster_stacks",
    "levenshtein",
    "measure_leak_baseline",
    "measure_precision",
    "measure_step_baseline",
    "parse_fault_space",
    "run_test",
    "standard_impact",
    "target_by_name",
    "__version__",
]


def __getattr__(name: str):
    # Target classes are lazy: building some suites is expensive.
    if name in ("CoreutilsTarget", "MiniDbTarget", "HttpdTarget", "DocStoreTarget"):
        from repro.sim import targets as _targets

        return getattr(_targets, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
