"""Batch testing campaigns: the §4 "certification service" mode.

"This makes AFEX a good fit for generic testing, such as that done in a
certification service" — a service points AFEX at a list of systems and
gets back, per system, the explored results and the §6.3 report.  A
:class:`Campaign` bundles multiple exploration jobs, runs them
(sequentially or over a shared cluster fabric), and renders a combined
scorecard for everything certified.

Jobs choose an **execution fabric** (serial loop, thread pool, process
pool, or virtual-time model) and a **speculative batch size**, and may
share a :class:`~repro.core.cache.ResultCache` so re-certifying a system
— or certifying overlapping spaces — replays memoized executions instead
of re-running the simulator.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.cache import ResultCache
from repro.core.checkpoint import Checkpoint
from repro.core.faultspace import FaultSpace
from repro.core.impact import ImpactMetric, standard_impact
from repro.core.results import ResultSet
from repro.core.runner import TargetRunner
from repro.core.search import FitnessGuidedSearch
from repro.core.search.base import SearchStrategy
from repro.core.targets import SearchTarget
from repro.errors import ClusterError, ReportError
from repro.quality.report import ExplorationReport, build_report
from repro.service.documents import verdict_of
from repro.service.engine import FABRICS, CampaignEngine
from repro.sim.testsuite import Target
from repro.util.tables import TextTable

__all__ = ["CampaignJob", "CampaignOutcome", "Campaign", "FABRICS"]


@dataclass
class CampaignJob:
    """One system to certify: a target, a space, a budget.

    ``fabric`` selects the execution substrate: ``serial`` is the
    in-process loop, ``threads``/``processes``/``virtual`` run the job on
    a cluster of ``nodes`` node managers (``auto``, the default, picks
    ``serial`` for ``nodes <= 1`` and ``threads`` otherwise, preserving
    the historical behaviour).  ``batch_size`` controls speculative
    proposal width (default: 1 in the serial loop, cluster width
    otherwise).  ``cache`` memoizes executions; the same cache object may
    be shared across jobs — and re-runs of the whole campaign — to make
    duplicate tests free.  The process fabric needs a picklable
    ``target_factory``; without one it degrades gracefully to in-process
    execution.  ``socket`` runs the job over the networked multi-node
    fabric: the job binds ``listen``, waits up to ``node_wait`` seconds
    for ``nodes`` explorer-node processes to register (launch them from
    the ``on_fabric`` hook or out of band with ``afex node``), and
    partitions the fault space among them dynamically by sensitivity.

    Jobs are **fault-tolerant and resumable**: every parallel fabric is
    wrapped in a :class:`~repro.cluster.FaultTolerantFabric` governed by
    ``retry_policy`` / ``dispatch_deadline`` (its
    :class:`~repro.cluster.FabricHealth` record lands in the outcome and
    report), and ``checkpoint_path`` / ``checkpoint_every`` /
    ``resume_from`` snapshot and restore the exploration so a killed
    campaign continues byte-identically (see
    :mod:`repro.core.checkpoint`).
    """

    name: str
    target: Target
    space: FaultSpace
    iterations: int = 250
    seed: int = 0
    strategy_factory: Callable[[], SearchStrategy] = FitnessGuidedSearch
    metric_factory: Callable[[], ImpactMetric] = standard_impact
    stop: SearchTarget | None = None  # defaults to the iteration budget
    nodes: int = 1
    fabric: str = "auto"
    batch_size: int | None = None
    #: ``host:port`` the ``socket`` fabric's manager listens on (port 0
    #: binds an ephemeral port — see ``on_fabric`` to learn it).
    listen: str = "127.0.0.1:0"
    #: how long the ``socket`` fabric waits for ``nodes`` explorer
    #: nodes to register before the job fails.
    node_wait: float = 60.0
    #: called with the live :class:`~repro.cluster.SocketFabric` right
    #: after it binds, *before* the job waits for nodes — the hook a
    #: caller uses to learn the bound port and launch node processes
    #: (``afex node --connect host:port``).
    on_fabric: Callable[[object], None] | None = None
    cache: ResultCache | None = None
    target_factory: Callable[[], Target] | None = None
    #: recovery policy for parallel fabrics (None = library default).
    retry_policy: "object | None" = None
    #: per-dispatch deadline in seconds for parallel fabrics.
    dispatch_deadline: float | None = None
    checkpoint_path: str | Path | None = None
    checkpoint_every: int = 0
    #: a Checkpoint, or a path to one, to resume from.
    resume_from: Checkpoint | str | Path | None = None
    #: run the streaming §5 clustering stage alongside the exploration,
    #: so redundancy is known while the job runs, not after it.
    online_quality: bool = False
    #: edit-distance bound for the online clustering stage.
    cluster_distance: int = 1
    #: similarity below this is treated as fully novel by the feedback.
    similarity_threshold: float = 0.0
    #: feed the live novelty signal back into the strategy (sets
    #: ``use_novelty`` on strategies that support it); implies
    #: ``online_quality``.
    live_feedback: bool = False
    #: optional :class:`~repro.obs.metrics.MetricsRegistry` every layer
    #: of the job (session/explorer, fabric, cache, simulator) reports
    #: into; its snapshot lands in the outcome and the scorecard.
    metrics: "object | None" = None
    #: optional :class:`~repro.obs.trace.Tracer` threaded through the
    #: exploration so the job's rounds are reconstructable.
    tracer: "object | None" = None
    #: fabric health of the last execution (set by :meth:`execute`).
    fabric_health: "object | None" = field(default=None, compare=False)
    #: online-clustering counters of the last execution (an
    #: ``OnlineClusters.stats()`` dict; set by :meth:`execute`).
    quality_stats: "dict | None" = field(default=None, compare=False)
    #: the lazily-built :class:`~repro.service.engine.CampaignEngine`
    #: executing this job; kept warm across repeated :meth:`execute`
    #: calls (same processes/nodes, no re-bring-up) until :meth:`close`.
    _engine: "CampaignEngine | None" = field(
        default=None, repr=False, compare=False
    )
    _engine_signature: "tuple | None" = field(
        default=None, repr=False, compare=False
    )

    def engine(self) -> CampaignEngine:
        """This job's (warm) engine, rebuilt if fabric knobs changed."""
        signature = (
            self.fabric, max(self.nodes, 1), id(self.target),
            id(self.cache), id(self.metrics), id(self.tracer),
            id(self.target_factory), id(self.retry_policy),
            self.dispatch_deadline, self.listen, self.node_wait,
            id(self.on_fabric), id(self.metric_factory),
        )
        if self._engine is None or self._engine_signature != signature:
            if self._engine is not None:
                self._engine.close()
            self._engine = CampaignEngine(
                self.target,
                fabric=self.fabric,
                workers=max(self.nodes, 1),
                name=self.name,
                cache=self.cache,
                metrics=self.metrics,
                tracer=self.tracer,
                metric_factory=self.metric_factory,
                target_factory=self.target_factory,
                retry_policy=self.retry_policy,
                dispatch_deadline=self.dispatch_deadline,
                listen=self.listen,
                node_wait=self.node_wait,
                on_fabric=self.on_fabric,
            )
            self._engine_signature = signature
        return self._engine

    def close(self) -> None:
        """Tear down the job's warm fabric (idempotent)."""
        if self._engine is not None:
            self._engine.close()
            self._engine = None
            self._engine_signature = None

    def execute(self) -> tuple[TargetRunner, ResultSet, SearchStrategy]:
        """Run the job, returning (runner for re-execution, results,
        the strategy instance that drove the search).

        Repeated calls reuse the warm fabric (the digest is a pure
        function of space/strategy/seed/batch size, so reuse never
        changes outcomes); call :meth:`close` when done with the job.
        """
        if self.fabric not in FABRICS:
            raise ClusterError(
                f"unknown fabric {self.fabric!r}; available: {FABRICS}"
            )
        engine = self.engine()
        strategy = self.strategy_factory()
        online = self.online_quality or self.live_feedback
        if self.live_feedback and hasattr(strategy, "use_novelty"):
            strategy.use_novelty = True
        meta = {
            "job": self.name, "seed": self.seed,
            "fabric": engine.resolved_fabric,
        }
        run = engine.explore(
            self.space,
            strategy,
            iterations=self.iterations,
            stop=self.stop,
            seed=self.seed,
            batch_size=self.batch_size,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            checkpoint_meta=meta,
            resume_from=self.resume_from,
            online_quality=online,
            cluster_distance=self.cluster_distance,
            similarity_threshold=self.similarity_threshold,
        )
        self.fabric_health = run.health
        self.quality_stats = run.quality_stats
        return run.runner, run.results, strategy


@dataclass
class CampaignOutcome:
    """What one campaign job produced."""

    job: CampaignJob
    results: ResultSet
    report: ExplorationReport
    seconds: float
    #: name of the strategy instance that actually ran the job.
    strategy_name: str = ""
    #: the fabric's fault-tolerance record (None on serial jobs).
    fabric_health: object | None = None
    #: metrics snapshot taken right after the job (None without a
    #: :attr:`CampaignJob.metrics` registry).
    metrics_snapshot: dict | None = None
    #: online-clustering counters (None unless the job ran with
    #: :attr:`CampaignJob.online_quality` or live feedback on).
    quality_stats: dict | None = None

    @property
    def verdict(self) -> str:
        """A coarse certification verdict from the outcome counts."""
        return verdict_of(self.results)


@dataclass
class Campaign:
    """A batch of certification jobs, executed back to back."""

    jobs: list[CampaignJob] = field(default_factory=list)

    def add(self, job: CampaignJob) -> "Campaign":
        if any(existing.name == job.name for existing in self.jobs):
            raise ReportError(f"duplicate campaign job name {job.name!r}")
        self.jobs.append(job)
        return self

    def run(self, report_top_n: int = 5) -> list[CampaignOutcome]:
        if not self.jobs:
            raise ReportError("campaign has no jobs")
        outcomes: list[CampaignOutcome] = []
        try:
            for job in self.jobs:
                started = time.perf_counter()
                runner, results, strategy = job.execute()
                report = build_report(
                    results,
                    runner,
                    job.name,
                    strategy_name=strategy.name,
                    top_n=report_top_n,
                    of=lambda t: t.failed,
                    fabric_health=job.fabric_health,
                    quality_stats=job.quality_stats,
                )
                outcomes.append(CampaignOutcome(
                    job=job,
                    results=results,
                    report=report,
                    seconds=time.perf_counter() - started,
                    strategy_name=strategy.name,
                    fabric_health=job.fabric_health,
                    quality_stats=job.quality_stats,
                    metrics_snapshot=(
                        job.metrics.snapshot()  # type: ignore[attr-defined]
                        if job.metrics is not None else None
                    ),
                ))
        finally:
            # Fabrics stay warm only *within* a run (repeated execute()
            # of one job); the batch tears everything down on the way out.
            for job in self.jobs:
                job.close()
        return outcomes

    @staticmethod
    def scorecard(outcomes: list[CampaignOutcome]) -> TextTable:
        """The combined certification summary across all jobs."""
        table = TextTable(
            ["system", "verdict", "tests", "failed", "crashes", "hangs",
             "clusters", "live", "non-red%", "retries", "cache hit%",
             "time (s)"],
            title="certification campaign scorecard",
        )
        for outcome in outcomes:
            health = outcome.fabric_health
            snapshot = outcome.metrics_snapshot or {}
            hit_ratio = snapshot.get("gauges", {}).get("cache.hit_ratio")
            quality = outcome.quality_stats
            table.add_row([
                outcome.job.name,
                outcome.verdict,
                len(outcome.results),
                outcome.results.failed_count(),
                outcome.results.crash_count(),
                len(outcome.results.hangs()),
                outcome.report.cluster_count,
                "-" if quality is None else quality.get("clusters", 0),
                "-" if quality is None
                else f"{100 * float(quality.get('novelty_ratio', 0)):.0f}",
                "-" if health is None else getattr(health, "retries", 0),
                "-" if hit_ratio is None else f"{hit_ratio * 100:.0f}",
                f"{outcome.seconds:.1f}",
            ])
        return table
