"""Batch testing campaigns: the §4 "certification service" mode.

"This makes AFEX a good fit for generic testing, such as that done in a
certification service" — a service points AFEX at a list of systems and
gets back, per system, the explored results and the §6.3 report.  A
:class:`Campaign` bundles multiple exploration jobs, runs them
(sequentially or over a shared cluster fabric), and renders a combined
scorecard for everything certified.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.faultspace import FaultSpace
from repro.core.impact import ImpactMetric, standard_impact
from repro.core.results import ResultSet
from repro.core.runner import TargetRunner
from repro.core.search import FitnessGuidedSearch
from repro.core.search.base import SearchStrategy
from repro.core.session import ExplorationSession
from repro.core.targets import IterationBudget, SearchTarget
from repro.errors import ReportError
from repro.quality.report import ExplorationReport, build_report
from repro.sim.testsuite import Target
from repro.util.tables import TextTable

__all__ = ["CampaignJob", "CampaignOutcome", "Campaign"]


@dataclass
class CampaignJob:
    """One system to certify: a target, a space, a budget.

    ``nodes > 1`` runs the job on a thread-pool cluster of that many
    node managers (the Fig. 2 fabric) instead of the in-process loop.
    """

    name: str
    target: Target
    space: FaultSpace
    iterations: int = 250
    seed: int = 0
    strategy_factory: Callable[[], SearchStrategy] = FitnessGuidedSearch
    metric_factory: Callable[[], ImpactMetric] = standard_impact
    stop: SearchTarget | None = None  # defaults to the iteration budget
    nodes: int = 1

    def execute(self) -> tuple[TargetRunner, ResultSet]:
        """Run the job, returning (a runner for re-execution, results)."""
        runner = TargetRunner(self.target)
        stop = self.stop or IterationBudget(self.iterations)
        if self.nodes <= 1:
            session = ExplorationSession(
                runner=runner,
                space=self.space,
                metric=self.metric_factory(),
                strategy=self.strategy_factory(),
                target=stop,
                rng=self.seed,
            )
            return runner, session.run()
        from repro.cluster import ClusterExplorer, LocalCluster, NodeManager

        self.target.suite  # pre-build once; managers then share it safely
        managers = [
            NodeManager(f"{self.name}-node{i}", self.target)
            for i in range(self.nodes)
        ]
        explorer = ClusterExplorer(
            LocalCluster(managers),
            self.space,
            self.metric_factory(),
            self.strategy_factory(),
            stop,
            rng=self.seed,
        )
        return runner, explorer.run()


@dataclass
class CampaignOutcome:
    """What one campaign job produced."""

    job: CampaignJob
    results: ResultSet
    report: ExplorationReport
    seconds: float

    @property
    def verdict(self) -> str:
        """A coarse certification verdict from the outcome counts."""
        if self.results.crash_count() > 0:
            return "CRASHES"
        if len(self.results.hangs()) > 0:
            return "HANGS"
        if self.results.failed_count() > 0:
            return "FAILURES"
        return "CLEAN"


@dataclass
class Campaign:
    """A batch of certification jobs, executed back to back."""

    jobs: list[CampaignJob] = field(default_factory=list)

    def add(self, job: CampaignJob) -> "Campaign":
        if any(existing.name == job.name for existing in self.jobs):
            raise ReportError(f"duplicate campaign job name {job.name!r}")
        self.jobs.append(job)
        return self

    def run(self, report_top_n: int = 5) -> list[CampaignOutcome]:
        if not self.jobs:
            raise ReportError("campaign has no jobs")
        outcomes: list[CampaignOutcome] = []
        for job in self.jobs:
            started = time.perf_counter()
            runner, results = job.execute()
            report = build_report(
                results,
                runner,
                job.name,
                strategy_name=job.strategy_factory().name,
                top_n=report_top_n,
                of=lambda t: t.failed,
            )
            outcomes.append(CampaignOutcome(
                job=job,
                results=results,
                report=report,
                seconds=time.perf_counter() - started,
            ))
        return outcomes

    @staticmethod
    def scorecard(outcomes: list[CampaignOutcome]) -> TextTable:
        """The combined certification summary across all jobs."""
        table = TextTable(
            ["system", "verdict", "tests", "failed", "crashes", "hangs",
             "clusters", "time (s)"],
            title="certification campaign scorecard",
        )
        for outcome in outcomes:
            table.add_row([
                outcome.job.name,
                outcome.verdict,
                len(outcome.results),
                outcome.results.failed_count(),
                outcome.results.crash_count(),
                len(outcome.results.hangs()),
                outcome.report.cluster_count,
                f"{outcome.seconds:.1f}",
            ])
        return table
