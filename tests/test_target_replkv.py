"""Tests for the ReplKV target: the replicated recovery showcase.

Fault-free, all 150 generated tests pass with zero invariant
violations.  Under the disk and net fault models the two planted
recovery bugs surface deterministically (silent WAL-replay truncation
and commit-on-send), ``FitnessGuidedSearch`` finds them without being
told where to look, and a campaign over real TCP explorer nodes digests
identically to the in-process fabric.
"""

from __future__ import annotations

from repro.core import (
    ExplorationSession,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.checkpoint import history_digest
from repro.injection.models import (
    ModelInjector,
    compose_models,
    model_injector,
    model_space,
)
from repro.sim.process import run_test
from repro.sim.targets.replkv import parse_record, record_line
from repro.sim.targets.replkv.target import GROUP_SIZES


class TestWalRecords:
    def test_record_round_trip(self):
        line = record_line(7, "key", "value")
        assert parse_record(line) == (7, "key", "value")

    def test_checksum_rejects_corruption(self):
        line = record_line(7, "key", "value")
        mangled = line.replace("value", "vblue")
        assert parse_record(mangled) is None

    def test_torn_half_line_rejected(self):
        line = record_line(3, "k", "v")
        assert parse_record(line[: len(line) // 2]) is None

    def test_non_positive_seq_rejected(self):
        assert parse_record("0 k v 0") is None
        assert parse_record("junk") is None


class TestFaultFreeSuite:
    def test_suite_shape(self, replkv):
        assert len(replkv.suite) == sum(GROUP_SIZES.values()) == 150

    def test_every_test_passes_clean(self, replkv):
        for test in replkv.suite:
            result = run_test(replkv, test)
            assert not result.failed, f"{test.name}: {result.summary()}"
            assert not result.violated, (
                f"{test.name}: {result.invariant_violations}"
            )

    def test_clean_runs_leak_nothing(self, replkv):
        # Groups that kill -9 a replica leak its heap on purpose (the
        # kernel reclaims fds, not the simulated process's allocations),
        # so the zero-leak bar applies to the graceful-shutdown groups.
        for test in replkv.suite:
            if test.group not in ("basic", "wal", "divergence"):
                continue
            result = run_test(replkv, test)
            assert result.open_fds == 0, test.name
            assert result.leaked_heap_bytes == 0, test.name


class TestPlantedReplayTruncation:
    """Bug A: replay stops at the first bad record, silently dropping
    the committed suffix; a restarted leader never reconciles."""

    def test_corrupt_wal_write_loses_acknowledged_data(self, replkv):
        test = replkv.suite[56]  # restart-000: restarts the leader
        plan = ModelInjector("disk").plan_for(
            {"test": test.id, "disk_write": 1, "disk_mode": "corrupt"}
        )
        result = run_test(replkv, test, plan)
        assert result.violated
        assert "not served by leader" in result.invariant_violations[0]
        # the suite's own assertion notices too — the fitness signal.
        assert result.failed

    def test_torn_tail_write_loses_the_torn_commit(self, replkv):
        test = replkv.suite[56]
        plan = ModelInjector("disk").plan_for(
            {"test": test.id, "disk_write": 1, "disk_mode": "torn"}
        )
        result = run_test(replkv, test, plan)
        assert result.violated and result.failed

    def test_same_scenario_without_restart_is_masked(self, replkv):
        # basic-000 never replays the WAL, so the silent corruption
        # stays latent: recovery code is what turns it into loss.
        test = replkv.suite[1]
        plan = ModelInjector("disk").plan_for(
            {"test": test.id, "disk_write": 1, "disk_mode": "corrupt"}
        )
        result = run_test(replkv, test, plan)
        assert not result.violated


class TestPlantedCommitOnSend:
    """Bug B: a replication *send* counts as an acknowledgement, so a
    delayed in-flight message plus a leader crash loses an acked write."""

    def test_delayed_replication_plus_failover_loses_data(self, replkv):
        test = replkv.suite[87]  # failover-001: double leader crash
        plan = ModelInjector("net").plan_for(
            {"test": test.id, "net_op": 2, "net_mode": "delay"}
        )
        result = run_test(replkv, test, plan)
        assert result.violated
        assert "acknowledged write" in result.invariant_violations[0]
        assert result.failed

    def test_partition_plus_failover_loses_data(self, replkv):
        test = replkv.suite[86]  # failover-000
        plan = ModelInjector("net").plan_for(
            {"test": test.id, "net_op": 2, "net_mode": "partition"}
        )
        result = run_test(replkv, test, plan)
        assert result.violated and result.failed

    def test_divergence_heals_without_failover(self, replkv):
        # an isolated replica that rejoins catches up; no leader crash,
        # no loss — the bug needs the crash to manifest.
        for test in replkv.suite:
            if test.group == "divergence":
                result = run_test(replkv, test)
                assert not result.violated
                break


class TestFitnessDiscovery:
    def test_search_finds_a_planted_recovery_bug(self, replkv):
        # Focus the workload axis on recovery scenarios (the kind of
        # restriction §7's focused test spaces use) and let the fitness
        # strategy do the rest over the composed net+disk space.
        space = model_space(replkv, compose_models("disk+net"))
        recovery_tests = [
            test.id for test in replkv.suite
            if test.group in ("restart", "failover", "churn")
        ]
        space = space.restrict_axis("test", recovery_tests)
        session = ExplorationSession(
            runner=TargetRunner(replkv, model_injector("disk+net")),
            space=space,
            metric=standard_impact(),
            strategy=FitnessGuidedSearch(),
            target=IterationBudget(150),
            rng=42,
        )
        results = list(session.run())
        violations = [
            test for test in results if test.result.invariant_violations
        ]
        assert violations, "no planted recovery bug found in 150 iterations"
        assert any(
            "acknowledged write" in v
            for test in violations
            for v in test.result.invariant_violations
        )


class TestFabricParity:
    def test_socket_campaign_digest_matches_in_process(self, replkv):
        from repro.cluster import (
            ClusterExplorer,
            ExplorerNode,
            FaultTolerantFabric,
            LocalCluster,
            NodeManager,
            RetryPolicy,
            SocketFabric,
        )
        from repro.sim.targets.replkv import ReplKvTarget

        spec = "errno+disk"
        space = model_space(replkv, compose_models(spec)).restrict_axis(
            "test", range(80, 111)  # failover + some churn scenarios
        )

        def explore(cluster) -> str:
            results = ClusterExplorer(
                cluster, space, standard_impact(),
                FitnessGuidedSearch(), IterationBudget(40),
                rng=11, batch_size=4,
            ).run()
            return history_digest(list(results))

        managers = [
            NodeManager(f"ref{i}", replkv, injector=model_injector(spec))
            for i in range(2)
        ]
        reference = explore(
            FaultTolerantFabric(LocalCluster(managers), policy=RetryPolicy())
        )

        net = SocketFabric("127.0.0.1:0", expected_nodes=2, ready_timeout=5.0)
        nodes = [
            ExplorerNode(
                (net.host, net.port), ReplKvTarget, name=f"n{i}", capacity=2,
                injector_factory=model_injector_factory(spec),
                heartbeat_interval=0.1,
                reconnect_policy=RetryPolicy(
                    max_attempts=100, base_delay=0.02, max_delay=0.2
                ),
            )
            for i in range(2)
        ]
        threads = [node.run_in_thread() for node in nodes]
        try:
            net.wait_for_nodes(timeout=15)
            over_wire = explore(
                FaultTolerantFabric(net, policy=RetryPolicy())
            )
        finally:
            net.close()
            for node in nodes:
                node.stop()
            for thread in threads:
                thread.join(timeout=10)
        assert over_wire == reference


def model_injector_factory(spec: str):
    import functools

    return functools.partial(model_injector, spec)
