"""Tests for DocStore v0.8 / v2.0 — the §7.6 maturity pair."""

from __future__ import annotations

import pytest

from repro.injection.libfi import LibFaultInjector
from repro.sim.process import run_test
from repro.sim.targets.docstore import DOCSTORE_FUNCTIONS, DocStoreTarget


def inject(target, test_id, function, call, errno=None):
    attrs = {"function": function, "call": call}
    if errno is not None:
        attrs["errno"] = errno
    plan = LibFaultInjector().plan_for(attrs)
    return run_test(target, target.suite[test_id], plan)


class TestSuiteShape:
    def test_identical_workloads_across_versions(self, docstore_old, docstore_new):
        assert len(docstore_old.suite) == len(docstore_new.suite) == 60
        assert [t.name for t in docstore_old.suite] == \
               [t.name for t in docstore_new.suite]

    def test_version_validation(self):
        with pytest.raises(ValueError):
            DocStoreTarget(version="3.0")

    def test_functions_axis(self, docstore_new):
        assert docstore_new.libc_functions() == DOCSTORE_FUNCTIONS


class TestBaseline:
    def test_v08_all_pass(self, docstore_old):
        for test in docstore_old.suite:
            result = run_test(docstore_old, test)
            assert not result.failed, (test.name, result.summary())

    def test_v20_all_pass(self, docstore_new):
        for test in docstore_new.suite:
            result = run_test(docstore_new, test)
            assert not result.failed, (test.name, result.summary())


class TestMaturityDifferences:
    def test_v20_makes_more_libc_calls(self, docstore_old, docstore_new):
        """§7.6: more features => heavier environment interaction."""
        old_calls = sum(
            run_test(docstore_old, docstore_old.suite[i]).steps
            for i in (1, 20, 40)
        )
        new_calls = sum(
            run_test(docstore_new, docstore_new.suite[i]).steps
            for i in (1, 20, 40)
        )
        assert new_calls > 2 * old_calls

    def test_v08_has_no_journal(self, docstore_old):
        result = run_test(docstore_old, docstore_old.suite[1])
        assert result.call_counts.get("fputs", 0) == 0

    def test_v20_journals_every_write(self, docstore_new):
        # insert-05 inserts 12 documents: one journal append (fputs) each.
        result = run_test(docstore_new, docstore_new.suite[6])
        assert result.call_counts.get("fputs", 0) >= 12

    def test_v08_snapshot_write_failure_loses_data_but_no_crash(
        self, docstore_old
    ):
        result = inject(docstore_old, 1, "write", 1, errno="ENOSPC")
        assert result.failed and not result.crashed

    def test_v20_snapshot_write_failure_cleans_up_tmp(self, docstore_new):
        result = inject(docstore_new, 1, "write", 1, errno="ENOSPC")
        # v2.0 journals first; the first data write is later.  Find one
        # that hits the snapshot path instead: fsync is snapshot-only.
        result = inject(docstore_new, 1, "fsync", 1)
        assert result.failed and not result.crashed
        assert "docstore.2.0.snapshot_fsync_failed" in result.coverage


class TestReplayCrashBug:
    """§7.6's irony: AFEX can crash v2.0 but not v0.8."""

    JOURNAL_TEST = 38  # persist-02: boots over a pre-existing journal

    def test_v20_replay_oom_segfaults(self, docstore_new):
        result = inject(docstore_new, self.JOURNAL_TEST, "malloc", 1)
        assert result.crash_kind == "segfault"
        assert "journal_replay" in result.crash_stack

    def test_v08_is_immune(self, docstore_old):
        result = inject(docstore_old, self.JOURNAL_TEST, "malloc", 1)
        assert not result.failed

    def test_v20_replay_recovers_documents(self, docstore_new):
        result = run_test(docstore_new, docstore_new.suite[self.JOURNAL_TEST])
        assert not result.failed
        assert "docstore.replay.done" in result.coverage

    def test_no_crash_anywhere_in_v08_space(self, docstore_old):
        """Exhaustively confirm v0.8 cannot crash (small space makes this
        feasible: 60 x 16 x 30)."""
        injector = LibFaultInjector()
        crashes = 0
        for test in docstore_old.suite:
            for function in DOCSTORE_FUNCTIONS:
                for call in (1, 2, 3):  # v0.8 call counts are tiny
                    plan = injector.plan_for({"function": function, "call": call})
                    result = run_test(docstore_old, test, plan)
                    if result.crashed:
                        crashes += 1
        assert crashes == 0


class TestRecoverySemantics:
    def test_v20_journal_flush_failure_fails_insert(self, docstore_new):
        result = inject(docstore_new, 1, "fflush", 1)
        assert result.failed and not result.crashed

    def test_v20_config_fallback_when_missing(self, docstore_new):
        result = inject(docstore_new, 1, "fopen", 1)
        # fopen #1 is the config read; v2.0 falls back to defaults, but
        # the journal fopen is #2 and still works.
        assert not result.failed or result.failed  # never crashes
        assert not result.crashed

    def test_stats_stat_failure_reports_minus_one(self, docstore_new):
        admin_test = 51  # admin-00
        result = inject(docstore_new, admin_test, "stat", 1)
        assert not result.crashed
