"""Property-based invariants (hypothesis) + the batched/serial
differential harness.

Run under the deterministic ``ci`` hypothesis profile registered in
``conftest.py`` (derandomized, bounded example counts), so CI exercises
exactly the same examples every time:

* checkpoint save → resume is byte-identical for random exploration
  histories (any iteration count, any snapshot interval, any seed);
* the result cache answers get-after-put correctly under arbitrary
  interleavings of puts and evictions;
* a retry policy's backoff schedule is a pure function of its seed;
* batched parallel exploration over a random small fault space produces
  the same result history as the serial in-process loop.
"""

from __future__ import annotations

import functools
import random

from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterExplorer, ProcessPoolCluster, RetryPolicy
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.cache import ResultCache
from repro.core.checkpoint import history_digest, load_checkpoint
from repro.sim.targets import target_by_name

#: the functions random differential spaces draw their axes from.
COREUTILS_FUNCTIONS = (
    "malloc", "read", "write", "stat", "open", "close", "rename",
)


def session(target, space, *, iterations, seed, batch_size=1, **kwargs):
    return ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(iterations),
        rng=seed,
        batch_size=batch_size,
        **kwargs,
    )


class TestCheckpointRoundTripProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        iterations=st.integers(min_value=2, max_value=35),
        every=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=9),
    )
    def test_save_resume_is_byte_identical(self, tmp_path_factory,
                                           iterations, every, seed):
        """Kill at any point, resume, and the history digest matches an
        uninterrupted run exactly — for *random* histories, not just the
        hand-picked ones the example scripts use."""
        target = target_by_name("coreutils")
        space = FaultSpace.product(
            test=range(1, 20), function=target.libc_functions(),
            call=[0, 1, 2],
        )
        path = tmp_path_factory.mktemp("ck") / "ck.json"
        # The "killed" run: stops at `iterations`, checkpointing as it goes.
        session(target, space, iterations=iterations, seed=seed,
                checkpoint_path=path, checkpoint_every=every).run()
        checkpoint = load_checkpoint(path)
        assert checkpoint.iterations == iterations

        total = iterations + 10
        resumed = session(target, space, iterations=total, seed=seed,
                          resume_from=checkpoint).run()
        uninterrupted = session(target, space, iterations=total,
                                seed=seed).run()
        assert history_digest(list(resumed)) == \
            history_digest(list(uninterrupted))


class TestCacheEvictionProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        operations=st.lists(
            st.tuples(
                st.sampled_from("pg"),          # put or get
                st.integers(min_value=0, max_value=15),   # key id
            ),
            min_size=1, max_size=60,
        ),
    )
    def test_get_after_put_under_random_eviction(self, capacity, operations):
        """Whatever the put/get interleaving, the cache never answers
        wrong: a hit returns exactly what was last put under that key,
        a miss only happens for keys absent or LRU-evicted, and the
        live entry count never exceeds capacity."""
        cache = ResultCache(capacity=capacity)
        model: dict[str, str] = {}        # key -> expected sentinel
        order: list[str] = []             # model LRU order, oldest first

        def touch(key: str) -> None:
            if key in order:
                order.remove(key)
            order.append(key)

        for action, key_id in operations:
            key = f"k{key_id}"
            if action == "p":
                # The cache stores opaque results; a distinct sentinel
                # per (key, generation) exposes any cross-talk.
                sentinel = f"{key}@{len(order)}"
                cache.put(key, sentinel)
                model[key] = sentinel
                touch(key)
                while len([k for k in order if k in model]) > capacity:
                    victim = next(k for k in order if k in model)
                    del model[victim]
                    order.remove(victim)
            else:
                got = cache.get(key)
                if key in model:
                    assert got == model[key]
                    touch(key)
                else:
                    assert got is None
            assert len(cache) <= capacity

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30),
                    min_size=1, max_size=50))
    def test_stats_counters_account_for_every_operation(self, key_ids):
        cache = ResultCache(capacity=4)
        for key_id in key_ids:
            key = f"k{key_id}"
            if cache.get(key) is None:
                cache.put(key, key)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == len(key_ids)
        assert stats["entries"] == len(cache) <= 4
        # Everything ever put either lives or was evicted.
        assert stats["misses"] == stats["entries"] + stats["evictions"]


class TestRetryBackoffProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        max_attempts=st.integers(min_value=1, max_value=6),
        base_delay=st.floats(min_value=0.001, max_value=1.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_schedule_is_a_pure_function_of_the_seed(
            self, seed, max_attempts, base_delay, multiplier, jitter):
        policy = RetryPolicy(max_attempts=max_attempts,
                             base_delay=base_delay, multiplier=multiplier,
                             max_delay=2.0, jitter=jitter)

        def schedule() -> list[float]:
            rng = random.Random(seed)
            return [policy.delay_for(n, rng)
                    for n in range(1, max_attempts + 1)]

        first, second = schedule(), schedule()
        assert first == second
        for attempt, delay in enumerate(first, start=1):
            undithered = min(base_delay * multiplier ** (attempt - 1), 2.0)
            assert undithered <= delay <= undithered * (1.0 + jitter)


class TestBatchedSerialDifferential:
    @settings(max_examples=4, deadline=None)
    @given(
        tests=st.integers(min_value=4, max_value=12),
        functions=st.lists(st.sampled_from(COREUTILS_FUNCTIONS),
                           min_size=1, max_size=4, unique=True),
        max_call=st.integers(min_value=1, max_value=3),
        batch_size=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=9),
    )
    def test_pool_matches_serial_loop_on_random_spaces(
            self, tests, functions, max_call, batch_size, seed):
        """Batched parallel exploration (ProcessPoolCluster, real fork
        boundary) must walk the exact trajectory of the serial
        in-process loop: same faults, same impacts, same wire-visible
        outcomes — for randomly shaped small spaces, not one blessed
        configuration."""
        space = FaultSpace.product(
            test=range(1, tests + 1),
            function=tuple(sorted(functions)),
            call=range(0, max_call + 1),
        )
        iterations = min(space.size(), 3 * batch_size)
        target = target_by_name("coreutils")

        serial = ExplorationSession(
            runner=TargetRunner(target), space=space,
            metric=standard_impact(), strategy=FitnessGuidedSearch(),
            target=IterationBudget(iterations), rng=seed,
            batch_size=batch_size,
        ).run()

        pool = ProcessPoolCluster(
            functools.partial(target_by_name, "coreutils"), workers=2,
        )
        try:
            batched = ClusterExplorer(
                pool, space, standard_impact(), FitnessGuidedSearch(),
                IterationBudget(iterations), rng=seed,
                batch_size=batch_size,
            ).run()
        finally:
            pool.close()

        assert [t.fault for t in serial] == [t.fault for t in batched]
        assert [t.impact for t in serial] == [t.impact for t in batched]
        for ours, theirs in zip(serial, batched):
            a, b = ours.result, theirs.result
            assert a.failed == b.failed
            assert a.crash_kind == b.crash_kind
            assert a.exit_code == b.exit_code
            assert a.coverage == b.coverage
            assert a.steps == b.steps
            assert a.injected == b.injected
