"""Tests for the search strategies (Algorithm 1 and its baselines).

A synthetic structured space — impact concentrated in a rectangular
"ship" — is used to check the behavioural claims: fitness-guided search
exploits structure; randomizing the structured axis hurts it; all
strategies deduplicate; exhaustive search is complete.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.search import (
    ExhaustiveSearch,
    FitnessGuidedSearch,
    GeneticSearch,
    RandomSearch,
    strategy_by_name,
)
from repro.errors import SearchError
from repro.injection.plan import InjectionPlan
from repro.sim.process import RunResult


def synthetic_result(failed: bool) -> RunResult:
    return RunResult(
        test_id=0, test_name="", plan=InjectionPlan.none(),
        exit_code=1 if failed else 0, crash_kind=None, crash_message=None,
        crash_stack=None, injection_stack=None, injected=True,
        coverage=frozenset(), steps=1,
    )


def ship_impact(fault: Fault) -> float:
    """A 'battleship': high impact inside a 6x3 rectangle."""
    x, y = fault.value("x"), fault.value("y")
    return 10.0 if 10 <= x < 16 and 5 <= y < 8 else 0.0


def drive(strategy, space, iterations, seed, impact=ship_impact):
    """Minimal driver replicating the session loop for a callable impact."""
    rng = random.Random(seed)
    strategy.bind(space, rng)
    executed = []
    for _ in range(iterations):
        fault = strategy.propose()
        if fault is None:
            break
        score = impact(fault)
        strategy.observe(fault, score, synthetic_result(score > 0))
        executed.append((fault, score))
    return executed


@pytest.fixture
def ship_space() -> FaultSpace:
    return FaultSpace.product(x=range(40), y=range(40))


class TestFitnessGuided:
    def test_never_repeats_a_fault(self, ship_space):
        executed = drive(FitnessGuidedSearch(initial_batch=10), ship_space, 300, 1)
        faults = [f for f, _ in executed]
        assert len(set(faults)) == len(faults)

    def test_beats_random_on_structured_space(self, ship_space):
        hits_fitness = []
        hits_random = []
        for seed in range(5):
            fit = drive(FitnessGuidedSearch(initial_batch=15), ship_space, 200, seed)
            rnd = drive(RandomSearch(), ship_space, 200, seed)
            hits_fitness.append(sum(1 for _, s in fit if s > 0))
            hits_random.append(sum(1 for _, s in rnd if s > 0))
        assert sum(hits_fitness) > 2 * sum(hits_random)

    def test_initial_batch_is_random_probes(self, ship_space):
        strategy = FitnessGuidedSearch(initial_batch=20)
        executed = drive(strategy, ship_space, 20, 3)
        assert len(executed) == 20  # all proposals succeed pre-guidance

    def test_sensitivity_rewards_the_ridge_axis(self):
        # A horizontal stripe is a ridge along x: once inside, mutating x
        # stays on the ridge (fitness stays high) while mutating y usually
        # falls off.  Sensitivity must learn to prefer x — the Battleship
        # "orientation inference" of §3.
        space = FaultSpace.product(x=range(30), y=range(30))

        def stripe(fault: Fault) -> float:
            return 10.0 if fault.value("y") in (3, 4, 5, 6, 7) else 0.0

        strategy = FitnessGuidedSearch(initial_batch=15)
        drive(strategy, space, 300, 5, impact=stripe)
        sens = strategy.sensitivities()
        assert sens["x"] >= sens["y"]

    def test_exhausts_small_space_and_stops(self):
        space = FaultSpace.product(x=range(3), y=range(3))
        executed = drive(FitnessGuidedSearch(initial_batch=4), space, 100, 1)
        assert len(executed) == 9

    def test_unbound_use_rejected(self):
        with pytest.raises(SearchError):
            FitnessGuidedSearch().propose()

    def test_feedback_hook_weighs_fitness(self, ship_space):
        calls = []

        def zeroing_hook(fault, result, impact):
            calls.append(fault)
            return 0.0

        strategy = FitnessGuidedSearch(initial_batch=5, fitness_weight=zeroing_hook)
        drive(strategy, ship_space, 30, 1)
        assert len(calls) == 30
        assert all(c.fitness == 0.0 for c in strategy.priority_snapshot())

    def test_invalid_initial_batch_rejected(self):
        with pytest.raises(SearchError):
            FitnessGuidedSearch(initial_batch=0)

    def test_aging_disabled_keeps_fitness(self, ship_space):
        strategy = FitnessGuidedSearch(initial_batch=5, aging=False)
        drive(strategy, ship_space, 50, 2)
        hot = [c for c in strategy.priority_snapshot() if c.impact > 0]
        assert all(c.fitness == c.impact for c in hot)

    def test_respects_holes(self):
        space = FaultSpace.product(
            valid=lambda attrs: attrs["x"] % 2 == 0, x=range(20), y=range(5)
        )
        executed = drive(FitnessGuidedSearch(initial_batch=5), space, 40, 1)
        assert all(f.value("x") % 2 == 0 for f, _ in executed)


class TestRandomSearch:
    def test_unique_samples(self, ship_space):
        executed = drive(RandomSearch(), ship_space, 400, 1)
        faults = [f for f, _ in executed]
        assert len(set(faults)) == 400

    def test_exhausts_space(self):
        space = FaultSpace.product(x=range(4))
        executed = drive(RandomSearch(), space, 100, 1,
                         impact=lambda f: 0.0)
        assert len(executed) == 4

    def test_deterministic_given_seed(self, ship_space):
        a = [f for f, _ in drive(RandomSearch(), ship_space, 50, 9)]
        b = [f for f, _ in drive(RandomSearch(), ship_space, 50, 9)]
        assert a == b


class TestExhaustiveSearch:
    def test_visits_every_fault_once(self):
        space = FaultSpace.product(x=range(5), y=range(4))
        executed = drive(ExhaustiveSearch(), space, 1000, 1)
        assert len(executed) == 20
        assert len({f for f, _ in executed}) == 20

    def test_returns_none_after_exhaustion(self):
        space = FaultSpace.product(x=range(2))
        strategy = ExhaustiveSearch()
        drive(strategy, space, 10, 1, impact=lambda f: 0.0)
        assert strategy.propose() is None


class TestGeneticSearch:
    def test_explores_without_repeats(self, ship_space):
        executed = drive(GeneticSearch(population_size=10), ship_space, 150, 1)
        faults = [f for f, _ in executed]
        assert len(set(faults)) == len(faults)

    def test_finds_some_structure(self, ship_space):
        hits = 0
        for seed in range(6):
            executed = drive(GeneticSearch(population_size=12),
                             ship_space, 300, seed)
            hits += sum(1 for _, s in executed if s > 0)
        assert hits > 0

    def test_validation(self):
        with pytest.raises(SearchError):
            GeneticSearch(population_size=2)
        with pytest.raises(SearchError):
            GeneticSearch(population_size=10, elite=10)

    def test_crossover_children_respect_holes(self):
        space = FaultSpace.product(
            valid=lambda attrs: (attrs["x"] + attrs["y"]) % 3 != 0,
            x=range(12), y=range(12),
        )
        executed = drive(GeneticSearch(population_size=8), space, 60, 2)
        for fault, _ in executed:
            assert (fault.value("x") + fault.value("y")) % 3 != 0


class TestStrategyRegistry:
    def test_known_names(self):
        assert isinstance(strategy_by_name("fitness"), FitnessGuidedSearch)
        assert isinstance(strategy_by_name("random"), RandomSearch)
        assert isinstance(strategy_by_name("exhaustive"), ExhaustiveSearch)
        assert isinstance(strategy_by_name("genetic"), GeneticSearch)

    def test_kwargs_forwarded(self):
        strategy = strategy_by_name("fitness", initial_batch=7)
        assert strategy.initial_batch == 7

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            strategy_by_name("dowsing")


class TestStructureAblation:
    def test_shuffling_structured_axis_hurts_guided_search(self):
        """The Table 4 mechanism, on a synthetic space."""
        space = FaultSpace.product(x=range(60), y=range(10))

        def band(fault: Fault) -> float:  # contiguous high-impact x band
            return 10.0 if 20 <= fault.value("x") < 35 else 0.0

        def hits(space_, seeds=(0, 1, 2, 3)):
            total = 0
            for seed in seeds:
                executed = drive(FitnessGuidedSearch(initial_batch=15),
                                 space_, 150, seed, impact=band)
                total += sum(1 for _, s in executed if s > 0)
            return total

        structured = hits(space)
        shuffled = hits(space.shuffle_axis("x", 99))
        assert structured > shuffled
