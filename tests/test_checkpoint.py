"""Tests for campaign checkpoint/resume (core/checkpoint.py)."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    build_checkpoint,
    history_digest,
    load_checkpoint,
    replay_history,
    save_checkpoint,
    space_fingerprint,
)
from repro.errors import CheckpointError
from repro.sim.targets.coreutils import CoreutilsTarget


@pytest.fixture()
def space(coreutils) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=coreutils.libc_functions(),
        call=[0, 1, 2],
    )


def session(coreutils, space, iterations=40, seed=3, batch_size=4,
            strategy_factory=FitnessGuidedSearch, **kwargs):
    return ExplorationSession(
        TargetRunner(coreutils), space, standard_impact(),
        strategy_factory(), IterationBudget(iterations), rng=seed,
        batch_size=batch_size, **kwargs,
    )


class TestSaveLoad:
    def test_roundtrip(self, coreutils, space, tmp_path):
        results = session(coreutils, space).run()
        import random

        rng = random.Random(9)
        checkpoint = build_checkpoint(list(results), rng, space, 4,
                                      meta={"seed": 3})
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.batch_size == 4
        assert loaded.iterations == len(results)
        assert loaded.space == space_fingerprint(space)
        assert loaded.meta["seed"] == 3
        assert loaded.digest() == history_digest(list(results))
        restored = loaded.restore_executed()
        assert [t.fault for t in restored] == [t.fault for t in results]
        assert [t.impact for t in restored] == [t.impact for t in results]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nope.json")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(CheckpointError, match="not an AFEX checkpoint"):
            load_checkpoint(path)

    def test_wrong_version(self, coreutils, space, tmp_path):
        import random

        checkpoint = build_checkpoint([], random.Random(0), space, 1)
        payload = checkpoint.as_payload()
        payload["version"] = CHECKPOINT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_malformed_payload(self, tmp_path):
        path = tmp_path / "hollow.json"
        path.write_text(json.dumps(
            {"kind": "afex-checkpoint", "version": CHECKPOINT_VERSION}
        ))
        with pytest.raises(CheckpointError, match="malformed"):
            load_checkpoint(path)


class TestWriterPolicy:
    def test_writes_every_n(self, coreutils, space, tmp_path):
        path = tmp_path / "run.ckpt.json"
        sess = session(coreutils, space, iterations=40,
                       checkpoint_path=path, checkpoint_every=12)
        sess.run()
        # 40 tests / every-12 → writes at >=12, >=24, >=36, plus the
        # forced final write at 40.
        assert sess.checkpointer.writes == 4
        assert load_checkpoint(path).iterations == 40

    def test_every_zero_only_writes_final(self, coreutils, space, tmp_path):
        path = tmp_path / "run.ckpt.json"
        sess = session(coreutils, space, iterations=20,
                       checkpoint_path=path, checkpoint_every=0)
        sess.run()
        assert sess.checkpointer.writes == 1
        assert load_checkpoint(path).iterations == 20

    def test_negative_interval_rejected(self, space):
        with pytest.raises(CheckpointError):
            CheckpointWriter("x.json", -1, space, 1)


class TestResume:
    def test_serial_resume_is_byte_identical(self, coreutils, space,
                                             tmp_path):
        path = tmp_path / "run.ckpt.json"
        # Uninterrupted 60-iteration run: the reference trajectory.
        reference = session(coreutils, space, iterations=60).run()

        # "Killed" run: stop at 36, leaving a checkpoint.
        session(coreutils, space, iterations=36,
                checkpoint_path=path, checkpoint_every=12).run()
        checkpoint = load_checkpoint(path)
        assert checkpoint.iterations == 36

        resumed = session(coreutils, space, iterations=60,
                          resume_from=checkpoint).run()
        assert history_digest(list(resumed)) == history_digest(
            list(reference))

    def test_cluster_resume_is_byte_identical(self, coreutils, space,
                                              tmp_path):
        from repro.cluster import (
            ClusterExplorer,
            FaultTolerantFabric,
            LocalCluster,
            NodeManager,
        )

        def explorer(iterations, **kwargs):
            fabric = FaultTolerantFabric(LocalCluster([
                NodeManager(f"n{i}", CoreutilsTarget()) for i in range(3)
            ]))
            return ClusterExplorer(
                fabric, space, standard_impact(), FitnessGuidedSearch(),
                IterationBudget(iterations), rng=8, batch_size=3, **kwargs,
            )

        path = tmp_path / "cluster.ckpt.json"
        reference = explorer(60).run()
        explorer(30, checkpoint_path=path, checkpoint_every=9).run()
        resumed = explorer(
            60, resume_from=load_checkpoint(path),
            checkpoint_path=path, checkpoint_every=9,
        ).run()
        assert history_digest(list(resumed)) == history_digest(
            list(reference))
        final = load_checkpoint(path)
        assert final.iterations == 60
        assert "fabric_health" in final.meta

    def test_wrong_space_rejected(self, coreutils, space, tmp_path):
        path = tmp_path / "run.ckpt.json"
        session(coreutils, space, iterations=12, checkpoint_path=path,
                checkpoint_every=6).run()
        other_space = FaultSpace.product(
            test=range(1, 5), function=coreutils.libc_functions(),
            call=[0],
        )
        with pytest.raises(CheckpointError, match="space"):
            session(coreutils, other_space, iterations=12,
                    resume_from=load_checkpoint(path)).run()

    def test_wrong_batch_size_rejected(self, coreutils, space, tmp_path):
        path = tmp_path / "run.ckpt.json"
        session(coreutils, space, iterations=12, batch_size=4,
                checkpoint_path=path, checkpoint_every=6).run()
        with pytest.raises(CheckpointError, match="batch_size"):
            session(coreutils, space, iterations=24, batch_size=3,
                    resume_from=load_checkpoint(path)).run()

    def test_different_strategy_detected_as_divergence(self, coreutils,
                                                       space, tmp_path):
        # The record must reach past FitnessGuidedSearch's initial
        # random phase (25 proposals) — before that, its trajectory is
        # genuinely identical to RandomSearch's and there is no
        # divergence to detect.
        path = tmp_path / "run.ckpt.json"
        session(coreutils, space, iterations=40,
                checkpoint_path=path, checkpoint_every=10).run()
        with pytest.raises(CheckpointError, match="diverged"):
            session(coreutils, space, iterations=60,
                    strategy_factory=RandomSearch,
                    resume_from=load_checkpoint(path)).run()

    def test_different_seed_detected(self, coreutils, space, tmp_path):
        path = tmp_path / "run.ckpt.json"
        session(coreutils, space, iterations=12, seed=3,
                checkpoint_path=path, checkpoint_every=6).run()
        with pytest.raises(CheckpointError):
            session(coreutils, space, iterations=24, seed=4,
                    resume_from=load_checkpoint(path)).run()

    def test_replay_returns_count(self, coreutils, space, tmp_path):
        path = tmp_path / "run.ckpt.json"
        sess = session(coreutils, space, iterations=20,
                       checkpoint_path=path, checkpoint_every=10)
        sess.run()
        checkpoint = load_checkpoint(path)

        import random

        fresh = session(coreutils, space, iterations=20)
        rng = random.Random(3)
        fresh.rng = rng
        fresh.strategy.bind(space, rng)
        replayed = replay_history(
            checkpoint, fresh.strategy, 4, space, fresh._account, rng=rng,
        )
        assert replayed == 20
        assert len(fresh.executed) == 20


class TestCampaignIntegration:
    def test_campaign_job_resumes_from_path(self, coreutils, space,
                                            tmp_path):
        from repro.campaign import Campaign, CampaignJob

        def job(**kwargs):
            return CampaignJob(
                name="coreutils", target=CoreutilsTarget(), space=space,
                iterations=30, seed=2, nodes=3, fabric="threads",
                batch_size=3, **kwargs,
            )

        path = tmp_path / "job.ckpt.json"
        reference = Campaign([job()]).run(report_top_n=3)[0]
        Campaign([job(checkpoint_path=path, checkpoint_every=9)]).run(
            report_top_n=3)
        resumed_job = job(resume_from=path)
        _, resumed, _ = resumed_job.execute()
        assert history_digest(list(resumed)) == history_digest(
            list(reference.results))
        assert resumed_job.fabric_health is not None
        assert resumed_job.fabric_health.accounted()
