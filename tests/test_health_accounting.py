"""Layered FabricHealth accounting: every retry exactly once.

A FaultTolerantFabric wrapped around a fabric that retries internally
(the process pool retries failed chunks before the wrapper ever sees a
problem) observes the *same* request flow at two layers but *different*
failure events.  The audit here: in the combined record, every retry is
attributed to exactly one cause, and no request is counted twice.
"""

from __future__ import annotations

from repro.cluster import (
    FabricHealth,
    FaultTolerantFabric,
    LocalCluster,
    NodeManager,
    RetryPolicy,
)
from repro.cluster.messages import TestReport, TestRequest
from repro.sim.targets.coreutils import CoreutilsTarget


def request(request_id: int) -> TestRequest:
    return TestRequest(
        request_id=request_id, subspace="",
        scenario={"test": 1 + request_id % 28, "function": "malloc", "call": 1},
    )


def report(request_id: int) -> TestReport:
    return TestReport(
        request_id=request_id, manager="inner", failed=False,
        crash_kind=None, exit_code=0, coverage=frozenset(),
        injection_stack=None, injected=False, steps=1,
        measurements={}, cost=0.0,
    )


class InnerFabricWithRetries:
    """A fabric that (like ProcessPoolCluster) retries internally.

    Its first dispatch "loses" one report — recovered by an internal
    retry it attributes in its *own* health record — so the wrapper
    sees a complete round and records nothing.
    """

    def __init__(self) -> None:
        self.health = FabricHealth()

    def __len__(self) -> int:
        return 2

    def run_batch(self, requests: list[TestRequest]) -> list[TestReport]:
        self.health.dispatches += 1
        self.health.requests += len(requests)
        # Simulate one internal chunk failure + successful re-dispatch.
        self.health.record_retry("error", 1)
        self.health.worker_deaths += 1
        self.health.worker_replacements += 1
        self.health.completed += len(requests)
        return [report(r.request_id) for r in requests]


class TestMergeLayer:
    def test_event_counters_sum_flow_counters_do_not(self):
        outer = FabricHealth(dispatches=3, requests=9, completed=9)
        outer.record_retry("timeout", 2)
        outer.timeouts = 1
        inner = FabricHealth(dispatches=5, requests=12, completed=12)
        inner.record_retry("error", 3)
        inner.worker_deaths = 2

        outer.merge_layer(inner)
        # Flow counters keep the outer view (same logical requests).
        assert outer.dispatches == 3
        assert outer.requests == 9
        assert outer.completed == 9
        # Failure events are distinct per layer and sum.
        assert outer.retries == 5
        assert outer.retried_after_timeout == 2
        assert outer.retried_after_error == 3
        assert outer.timeouts == 1
        assert outer.worker_deaths == 2

    def test_merge_layer_preserves_the_attribution_invariant(self):
        outer = FabricHealth()
        outer.record_retry("missing", 4)
        inner = FabricHealth()
        inner.record_retry("corrupt", 2)
        inner.record_retry("timeout", 1)
        assert outer.merge_layer(inner).accounted()
        assert outer.retries == 7

    def test_plain_merge_still_sums_everything(self):
        # Disjoint-traffic semantics are unchanged.
        a = FabricHealth(requests=4, completed=3)
        b = FabricHealth(requests=2, completed=2)
        a.merge(b)
        assert a.requests == 6 and a.completed == 5


class TestCombinedHealth:
    def test_inner_retries_surface_without_double_counted_flow(self):
        inner = InnerFabricWithRetries()
        fabric = FaultTolerantFabric(inner, policy=RetryPolicy(),
                                     sleep=lambda _: None)
        reports = fabric.run_batch([request(0), request(1)])
        assert len(reports) == 2

        # The wrapper saw a clean round; the inner layer retried once.
        assert fabric.health.retries == 0
        assert inner.health.retries == 1

        combined = fabric.combined_health()
        assert combined.retries == 1
        assert combined.retried_after_error == 1
        assert combined.worker_deaths == 1
        assert combined.accounted()
        # Flow counters are the wrapper's, not wrapper + inner.
        assert combined.requests == 2
        assert combined.completed == 2
        assert combined.dispatches == 1

    def test_combined_health_is_a_copy(self):
        inner = InnerFabricWithRetries()
        fabric = FaultTolerantFabric(inner, sleep=lambda _: None)
        fabric.run_batch([request(0)])
        combined = fabric.combined_health()
        combined.retries += 100
        assert fabric.health.retries == 0
        assert inner.health.retries == 1

    def test_both_layers_retrying_sum_exactly_once_each(self):
        inner = InnerFabricWithRetries()
        calls = {"n": 0}
        original = inner.run_batch

        def flaky_run_batch(requests):
            calls["n"] += 1
            reports = original(requests)
            if calls["n"] == 1:
                return reports[:-1]  # wrapper must requeue the last one
            return reports

        inner.run_batch = flaky_run_batch
        fabric = FaultTolerantFabric(inner, policy=RetryPolicy(),
                                     sleep=lambda _: None)
        reports = fabric.run_batch([request(0), request(1)])
        assert len(reports) == 2

        combined = fabric.combined_health()
        # Wrapper: 1 missing-report requeue.  Inner: 2 internal error
        # retries (one per dispatch round).  No other attribution.
        assert fabric.health.retried_missing == 1
        assert inner.health.retried_after_error == 2
        assert combined.retries == 3
        assert combined.retried_missing == 1
        assert combined.retried_after_error == 2
        assert combined.accounted()

    def test_explorer_health_reports_the_combined_record(self):
        from repro.core import (
            FaultSpace,
            FitnessGuidedSearch,
            IterationBudget,
            standard_impact,
        )
        from repro.cluster import ClusterExplorer

        target = CoreutilsTarget()
        space = FaultSpace.product(
            test=range(1, 10), function=target.libc_functions(), call=[0, 1],
        )
        inner = LocalCluster([NodeManager("n0", target)])
        fabric = FaultTolerantFabric(inner, sleep=lambda _: None)
        explorer = ClusterExplorer(
            fabric, space, standard_impact(), FitnessGuidedSearch(),
            IterationBudget(6), rng=1, batch_size=2,
        )
        explorer.run()
        health = explorer.health
        assert health is not None
        assert health.completed == 6
        assert health.accounted()
