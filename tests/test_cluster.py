"""Tests for the explorer/node-manager substrate (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterExplorer,
    CoverageSensor,
    CrashSensor,
    ExitCodeSensor,
    LocalCluster,
    NodeManager,
    ScriptTarget,
    StepSensor,
    UserScripts,
    VirtualCluster,
)
from repro.cluster import TestRequest as ClusterTestRequest
from repro.cluster.sensors import MeasurementPassthroughSensor, default_sensors
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.search import FitnessGuidedSearch, RandomSearch
from repro.core.targets import IterationBudget
from repro.errors import ClusterError, TargetError
from repro.sim.targets.coreutils import CoreutilsTarget


def coreutils_space(target) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=target.libc_functions(), call=[0, 1, 2]
    )


def request(scenario: dict, request_id: int = 0) -> ClusterTestRequest:
    return ClusterTestRequest(request_id=request_id, subspace="", scenario=scenario)


class TestNodeManager:
    @pytest.fixture
    def manager(self) -> NodeManager:
        return NodeManager("node0", CoreutilsTarget())

    def test_execute_reports_outcome(self, manager):
        report = manager.execute(
            request({"test": 12, "function": "link", "call": 1})
        )
        assert report.failed and not report.crashed
        assert report.manager == "node0"
        assert report.injected

    def test_measurements_include_all_default_sensors(self, manager):
        report = manager.execute(
            request({"test": 1, "function": "malloc", "call": 0})
        )
        keys = set(report.measurements)
        assert {"coverage.blocks", "exit.code", "exit.failed",
                "crash.segfault", "steps.total"} <= keys

    def test_load_accounting(self, manager):
        for i in range(3):
            manager.execute(request({"test": 1, "function": "malloc",
                                     "call": 0}, i))
        assert manager.executed == 3
        assert manager.busy_seconds > 0.0

    def test_cost_reported_per_test(self, manager):
        report = manager.execute(
            request({"test": 1, "function": "malloc", "call": 0})
        )
        assert report.cost > 0.0

    def test_name_required(self):
        with pytest.raises(ClusterError):
            NodeManager("", CoreutilsTarget())

    def test_describe_mentions_target(self, manager):
        assert "coreutils" in manager.describe()


class TestSensors:
    def test_crash_sensor_flags(self):
        manager = NodeManager("n", CoreutilsTarget(),
                              sensors=(CrashSensor(),))
        report = manager.execute(
            request({"test": 2, "function": "opendir", "call": 1})
        )
        assert report.measurements["crash.segfault"] == 0.0

    def test_exit_sensor(self):
        manager = NodeManager("n", CoreutilsTarget(),
                              sensors=(ExitCodeSensor(),))
        report = manager.execute(
            request({"test": 2, "function": "opendir", "call": 1})
        )
        assert report.measurements["exit.failed"] == 1.0

    def test_coverage_and_step_sensors(self):
        manager = NodeManager("n", CoreutilsTarget(),
                              sensors=(CoverageSensor(), StepSensor()))
        report = manager.execute(
            request({"test": 1, "function": "malloc", "call": 0})
        )
        assert report.measurements["coverage.blocks"] > 0
        assert report.measurements["steps.total"] > 0

    def test_default_sensor_set_is_complete(self):
        names = {type(s).__name__ for s in default_sensors()}
        assert "MeasurementPassthroughSensor" in names
        assert "InvariantSensor" in names
        assert len(default_sensors()) == 6

    def test_passthrough_forwards_app_measurements(self):
        sensor = MeasurementPassthroughSensor()
        from tests.test_core_components import make_result

        result = make_result(measurements={"latency": 2.5})
        assert sensor.measure(result) == {"app.latency": 2.5}


class TestLocalCluster:
    def test_round_robin_distribution(self):
        managers = [NodeManager(f"n{i}", CoreutilsTarget()) for i in range(3)]
        cluster = LocalCluster(managers)
        requests = [
            request({"test": 1, "function": "malloc", "call": 0}, i)
            for i in range(9)
        ]
        reports = cluster.run_batch(requests)
        assert len(reports) == 9
        assert [m.executed for m in managers] == [3, 3, 3]

    def test_reports_in_request_order(self):
        managers = [NodeManager(f"n{i}", CoreutilsTarget()) for i in range(2)]
        cluster = LocalCluster(managers)
        requests = [
            request({"test": 1 + i % 29, "function": "malloc", "call": 0}, i)
            for i in range(8)
        ]
        reports = cluster.run_batch(requests)
        assert [r.request_id for r in reports] == list(range(8))

    def test_empty_batch(self):
        cluster = LocalCluster([NodeManager("n", CoreutilsTarget())])
        assert cluster.run_batch([]) == []

    def test_needs_managers(self):
        with pytest.raises(ClusterError):
            LocalCluster([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClusterError):
            LocalCluster([
                NodeManager("n", CoreutilsTarget()),
                NodeManager("n", CoreutilsTarget()),
            ])


class TestVirtualCluster:
    def test_virtual_time_accounting(self):
        managers = [NodeManager(f"n{i}", CoreutilsTarget()) for i in range(4)]
        cluster = VirtualCluster(managers)
        requests = [
            request({"test": 1, "function": "malloc", "call": 0}, i)
            for i in range(20)
        ]
        cluster.run_batch(requests)
        assert cluster.total_cost > 0
        assert cluster.makespan <= cluster.total_cost
        assert 1.0 <= cluster.speedup_over_serial() <= 4.0

    def test_scaling_improves_with_nodes(self):
        """§7.7's linear-scaling claim, in miniature."""
        def makespan(nodes: int) -> float:
            managers = [NodeManager(f"n{i}", CoreutilsTarget())
                        for i in range(nodes)]
            cluster = VirtualCluster(managers)
            cluster.run_batch([
                request({"test": 1 + i % 29, "function": "stat", "call": 1}, i)
                for i in range(60)
            ])
            return cluster.makespan

        assert makespan(8) < makespan(1)

    def test_speedup_of_empty_cluster_is_one(self):
        cluster = VirtualCluster([NodeManager("n", CoreutilsTarget())])
        assert cluster.speedup_over_serial() == 1.0

    def test_heap_placement_matches_min_scan_reference(self):
        """Regression for the heap-based scheduler: placements — and so
        node_clocks, makespan, and speedup — must be identical to the
        original O(n) min() scan, including its tie-break on the lowest
        node index."""
        nodes = 5
        managers = [NodeManager(f"n{i}", CoreutilsTarget())
                    for i in range(nodes)]
        cluster = VirtualCluster(managers)
        reports = cluster.run_batch([
            request({"test": 1 + i % 29, "function": "stat", "call": 1}, i)
            for i in range(40)
        ])

        # Replay the observed cost sequence through the pre-heap
        # scheduler, verbatim.
        reference = [0.0] * nodes
        for report in reports:
            node = reference.index(min(reference))
            reference[node] += report.cost
        assert cluster.node_clocks == reference
        assert cluster.makespan == max(reference)
        assert cluster.speedup_over_serial() == pytest.approx(
            sum(reference) / max(reference))


class TestClusterExplorer:
    def test_end_to_end_exploration(self):
        target = CoreutilsTarget()
        managers = [NodeManager(f"n{i}", CoreutilsTarget()) for i in range(3)]
        explorer = ClusterExplorer(
            LocalCluster(managers),
            coreutils_space(target),
            standard_impact(),
            FitnessGuidedSearch(initial_batch=10),
            IterationBudget(60),
            rng=1,
        )
        results = explorer.run()
        assert len(results) >= 60
        assert results.failed_count() > 0

    def test_deterministic_given_seed_and_batching(self):
        def run(seed):
            target = CoreutilsTarget()
            managers = [NodeManager(f"n{i}", CoreutilsTarget())
                        for i in range(2)]
            explorer = ClusterExplorer(
                LocalCluster(managers), coreutils_space(target),
                standard_impact(), RandomSearch(), IterationBudget(30),
                rng=seed, batch_size=4,
            )
            return [t.fault for t in explorer.run()]

        assert run(7) == run(7)

    def test_batch_size_defaults_to_cluster_width(self):
        target = CoreutilsTarget()
        managers = [NodeManager(f"n{i}", CoreutilsTarget()) for i in range(5)]
        explorer = ClusterExplorer(
            LocalCluster(managers), coreutils_space(target),
            standard_impact(), RandomSearch(), IterationBudget(10), rng=1,
        )
        assert explorer.batch_size == 5

    def test_invalid_batch_size(self):
        target = CoreutilsTarget()
        with pytest.raises(ClusterError):
            ClusterExplorer(
                LocalCluster([NodeManager("n", CoreutilsTarget())]),
                coreutils_space(target), standard_impact(), RandomSearch(),
                IterationBudget(5), batch_size=0,
            )


class TestScriptTarget:
    def test_script_triple_runs_in_order(self):
        order = []

        def startup(env):
            order.append("startup")
            env.fs.create_file("/input", b"data")

        def test_script(env):
            order.append("test")
            fd = env.libc.open("/input")
            env.check(fd >= 0, "open failed")
            env.libc.close(fd)

        def cleanup(env):
            order.append("cleanup")

        target = ScriptTarget(
            [UserScripts(test_script, startup, cleanup, name="wl1")],
            functions=("open", "close"),
        )
        from repro.sim.process import run_test

        result = run_test(target, target.suite[1])
        assert not result.failed
        assert order == ["startup", "test", "cleanup"]

    def test_cleanup_runs_even_on_failure(self):
        ran = []

        def failing(env):
            env.check(False, "nope")

        target = ScriptTarget(
            [UserScripts(failing, cleanup=lambda env: ran.append(1))],
        )
        from repro.sim.process import run_test

        result = run_test(target, target.suite[1])
        assert result.failed and ran == [1]

    def test_injectable_like_any_target(self):
        def workload(env):
            fd = env.libc.open("/f", 0x40 | 0x1)  # O_CREAT|O_WRONLY
            if fd < 0:
                env.exit(1)
            env.libc.close(fd)

        target = ScriptTarget([UserScripts(workload, name="w")],
                              functions=("open", "close"))
        from repro.injection.libfi import LibFaultInjector
        from repro.sim.process import run_test

        plan = LibFaultInjector().plan_for({"function": "open", "call": 1})
        assert run_test(target, target.suite[1], plan).failed

    def test_needs_workloads(self):
        with pytest.raises(TargetError):
            ScriptTarget([])
