"""Tests for repro.util: RNG derivation and text tables."""

from __future__ import annotations

import random

import pytest

from repro.util.rng import derive_rng, ensure_rng
from repro.util.tables import TextTable


class TestEnsureRng:
    def test_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_int_seed_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_distinct_seeds_diverge(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), random.Random)


class TestDeriveRng:
    def test_deterministic_given_parent_state(self):
        a = derive_rng(random.Random(7), "x")
        b = derive_rng(random.Random(7), "x")
        assert a.random() == b.random()

    def test_labels_give_distinct_streams(self):
        parent = random.Random(7)
        a = derive_rng(parent, "a")
        parent2 = random.Random(7)
        b = derive_rng(parent2, "b")
        assert a.random() != b.random()

    def test_child_does_not_share_state_with_parent(self):
        parent = random.Random(7)
        child = derive_rng(parent, "x")
        before = parent.random()
        child.random()
        parent2 = random.Random(7)
        derive_rng(parent2, "x")
        assert parent2.random() == before


class TestTextTable:
    def test_renders_header_and_rows(self):
        table = TextTable(["a", "bb"])
        table.add_row([1, 2])
        text = table.render()
        assert "a" in text and "bb" in text
        assert "1" in text and "2" in text

    def test_column_count_enforced(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_title_is_first_line(self):
        table = TextTable(["x"], title="My Table")
        assert table.render().splitlines()[0] == "My Table"

    def test_float_formatting(self):
        assert TextTable.format_cell(1.23456) == "1.23"

    def test_alignment_pads_to_widest_cell(self):
        table = TextTable(["col"])
        table.add_row(["wide-cell-value"])
        table.add_row(["x"])
        lines = table.render().splitlines()
        header, separator = lines[0], lines[1]
        assert len(separator) >= len("wide-cell-value")

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()
