"""Tests for the simulated C library: semantics, counters, interposition."""

from __future__ import annotations

import pytest

from repro.injection.plan import InjectionPlan
from repro.sim.crashes import HangDetected
from repro.sim.errnos import Errno
from repro.sim.filesystem import O_CREAT, O_RDONLY, O_WRONLY, SimFilesystem
from repro.sim.heap import NULL
from repro.sim.libc import SimLibc
from repro.sim.stack import CallStack


@pytest.fixture
def libc() -> SimLibc:
    return SimLibc(SimFilesystem())


def plan(function: str, call: int, errno: Errno = Errno.EIO, retval: int = -1,
         persistent: bool = False) -> InjectionPlan:
    return InjectionPlan.single(function, call, errno, retval, persistent)


class TestCallCounting:
    def test_counts_per_function(self, libc):
        libc.malloc(1)
        libc.malloc(1)
        libc.getcwd()
        assert libc.call_count("malloc") == 2
        assert libc.call_count("getcwd") == 1
        assert libc.call_count("read") == 0

    def test_steps_accumulate_across_functions(self, libc):
        libc.malloc(1)
        libc.getcwd()
        assert libc.steps == 2

    def test_free_is_not_counted(self, libc):
        ptr = libc.malloc(4)
        libc.free(ptr)
        assert libc.steps == 1


class TestInterposition:
    def test_injection_fires_at_exact_call_number(self, libc):
        libc.set_plan(plan("malloc", 2, Errno.ENOMEM, 0))
        assert libc.malloc(4) != NULL
        assert libc.malloc(4) == NULL
        assert libc.errno is Errno.ENOMEM
        assert libc.malloc(4) != NULL  # only call #2 fails

    def test_persistent_fault_fails_all_later_calls(self, libc):
        libc.set_plan(plan("malloc", 2, Errno.ENOMEM, 0, persistent=True))
        assert libc.malloc(4) != NULL
        assert libc.malloc(4) == NULL
        assert libc.malloc(4) == NULL

    def test_injection_records_event_with_stack(self):
        stack = CallStack()
        libc = SimLibc(SimFilesystem(), stack)
        libc.set_plan(plan("getcwd", 1, Errno.ENOMEM, 0))
        with stack.frame("worker"):
            assert libc.getcwd() is None
        assert len(libc.injections) == 1
        event = libc.injections[0]
        assert event.fault.function == "getcwd"
        # The intercepted function appears as the innermost frame, as it
        # does in an LFI stack trace.
        assert event.stack == ("main", "worker", "getcwd")

    def test_injected_call_skips_real_operation(self, libc):
        # LFI semantics: the wrapped function never runs.
        libc.fs.create_file("/f", b"x")
        libc.set_plan(plan("unlink", 1, Errno.EACCES))
        assert libc.unlink("/f") == -1
        assert libc.fs.exists("/f")

    def test_injected_close_leaks_the_fd(self, libc):
        fd = libc.open("/f", O_CREAT | O_WRONLY)
        libc.set_plan(plan("close", 1, Errno.EINTR))
        assert libc.close(fd) == -1
        assert libc.fs.open_fd_count == 1  # still open

    def test_natural_error_without_injection(self, libc):
        assert libc.open("/missing") == -1
        assert libc.errno is Errno.ENOENT
        assert libc.injections == []


class TestHangDetection:
    def test_step_budget_exceeded_raises(self):
        libc = SimLibc(SimFilesystem(), step_budget=10)
        with pytest.raises(HangDetected):
            for _ in range(11):
                libc.getcwd()

    def test_budget_not_hit_under_limit(self):
        libc = SimLibc(SimFilesystem(), step_budget=10)
        for _ in range(10):
            libc.getcwd()  # exactly at budget: fine


class TestMemoryFunctions:
    def test_malloc_calloc_realloc_strdup(self, libc):
        a = libc.malloc(4)
        b = libc.calloc(2, 8)
        assert libc.heap.size_of(b) == 16
        c = libc.realloc(a, 32)
        assert libc.heap.size_of(c) == 32
        s = libc.strdup("text")
        assert libc.heap.load_string(s) == "text"

    def test_strdup_injected_returns_null(self, libc):
        libc.set_plan(plan("strdup", 1, Errno.ENOMEM, 0))
        assert libc.strdup("x") == NULL


class TestFileDescriptors:
    def test_open_write_read_close(self, libc):
        fd = libc.open("/f", O_CREAT | O_WRONLY)
        assert libc.write(fd, b"abc") == 3
        assert libc.close(fd) == 0
        fd = libc.open("/f", O_RDONLY)
        assert libc.read(fd, 10) == b"abc"

    def test_read_injection_returns_minus_one(self, libc):
        libc.fs.create_file("/f", b"abc")
        fd = libc.open("/f")
        libc.set_plan(plan("read", 1, Errno.EINTR))
        assert libc.read(fd, 3) == -1
        assert libc.errno is Errno.EINTR
        assert libc.read(fd, 3) == b"abc"  # retry succeeds

    def test_pipe_returns_fd_pair(self, libc):
        result = libc.pipe()
        assert isinstance(result, tuple)
        rfd, wfd = result
        libc.write(wfd, b"msg")
        assert libc.read(rfd, 3) == b"msg"

    def test_fsync_bad_fd(self, libc):
        assert libc.fsync(999) == -1
        assert libc.errno is Errno.EBADF


class TestStdio:
    def test_fopen_fputs_fgets_roundtrip(self, libc):
        out = libc.fopen("/f", "w")
        assert out != NULL
        assert libc.fputs("line one\n", out) > 0
        assert libc.fclose(out) == 0
        stream = libc.fopen("/f", "r")
        assert libc.fgets(stream) == "line one\n"
        assert libc.fgets(stream) is None
        assert libc.feof(stream) == 1

    def test_fgets_reads_line_by_line(self, libc):
        libc.fs.create_file("/f", b"a\nb\n")
        stream = libc.fopen("/f", "r")
        assert libc.fgets(stream) == "a\n"
        assert libc.fgets(stream) == "b\n"

    def test_fgets_injected_sets_error_flag(self, libc):
        libc.fs.create_file("/f", b"data\n")
        stream = libc.fopen("/f", "r")
        libc.set_plan(plan("fgets", 1, Errno.EIO, 0))
        assert libc.fgets(stream) is None
        assert libc.ferror(stream) == 1

    def test_fopen_bad_mode_einval(self, libc):
        assert libc.fopen("/f", "q") == NULL
        assert libc.errno is Errno.EINVAL

    def test_fopen_missing_file_null(self, libc):
        assert libc.fopen("/missing", "r") == NULL
        assert libc.errno is Errno.ENOENT

    def test_putc_writes_one_char(self, libc):
        out = libc.fopen("/f", "w")
        assert libc.putc("A", out) == ord("A")
        libc.fclose(out)
        assert libc.fs.read_file("/f") == b"A"

    def test_append_mode(self, libc):
        libc.fs.create_file("/f", b"pre-")
        out = libc.fopen("/f", "a")
        libc.fputs("post", out)
        libc.fclose(out)
        assert libc.fs.read_file("/f") == b"pre-post"

    def test_injected_fclose_still_releases_fd(self, libc):
        out = libc.fopen("/f", "w")
        libc.set_plan(plan("fclose", 1, Errno.EIO))
        assert libc.fclose(out) == -1
        assert libc.fs.open_fd_count == 0


class TestDirectoryFunctions:
    def test_opendir_readdir_closedir(self, libc):
        libc.fs.mkdir("/d")
        libc.fs.create_file("/d/a", b"")
        libc.fs.create_file("/d/b", b"")
        dirp = libc.opendir("/d")
        assert libc.readdir(dirp) == "a"
        assert libc.readdir(dirp) == "b"
        assert libc.readdir(dirp) is None
        assert libc.closedir(dirp) == 0

    def test_opendir_missing_null(self, libc):
        assert libc.opendir("/missing") == NULL
        assert libc.errno is Errno.ENOENT

    def test_readdir_injection_sets_errno(self, libc):
        libc.fs.mkdir("/d")
        libc.fs.create_file("/d/a", b"")
        dirp = libc.opendir("/d")
        libc.set_plan(plan("readdir", 1, Errno.EBADF, 0))
        libc.errno = Errno.OK
        assert libc.readdir(dirp) is None
        assert libc.errno is Errno.EBADF

    def test_chdir_getcwd(self, libc):
        libc.fs.mkdir("/w")
        assert libc.chdir("/w") == 0
        assert libc.getcwd() == "/w"

    def test_mkdir_rmdir(self, libc):
        assert libc.mkdir("/d") == 0
        assert libc.rmdir("/d") == 0


class TestMiscFunctions:
    def test_strtol_parses(self, libc):
        assert libc.strtol("42") == 42
        assert libc.strtol("ff", 16) == 255

    def test_strtol_garbage_einval(self, libc):
        assert libc.strtol("xyz") == 0
        assert libc.errno is Errno.EINVAL

    def test_setlocale_and_textdomain(self, libc):
        assert libc.setlocale("C") == "C"
        assert libc.textdomain("ls") == "ls"
        assert libc.bindtextdomain("ls", "/usr/share/locale") is not None

    def test_getrlimit_setrlimit(self, libc):
        before = libc.getrlimit("NOFILE")
        assert before > 0
        assert libc.setrlimit("NOFILE", 17) == 0
        assert libc.getrlimit("NOFILE") == 17

    def test_clock_gettime_monotonic(self, libc):
        assert libc.clock_gettime() < libc.clock_gettime()

    def test_wait_default(self, libc):
        assert libc.wait() == 0


class TestNetworking:
    def test_socket_lifecycle(self, libc):
        sock = libc.socket()
        assert libc.bind(sock, 80) == 0
        assert libc.listen(sock) == 0
        assert libc.close_socket(sock) == 0

    def test_accept_empty_inbox_eagain(self, libc):
        sock = libc.socket()
        assert libc.accept(sock) == -1
        assert libc.errno is Errno.EAGAIN

    def test_request_response_flow(self, libc):
        sock = libc.socket()
        libc.net_inbox.append(b"ping")
        conn = libc.accept(sock)
        assert conn > 0
        assert libc.recv(conn) == b"ping"
        assert libc.send(conn, b"pong") == 4
        assert libc.net_outbox == [b"pong"]

    def test_recv_on_bad_socket(self, libc):
        assert libc.recv(12345) == -1
        assert libc.errno is Errno.EBADF


class TestTracing:
    def test_trace_disabled_by_default(self, libc):
        libc.malloc(1)
        assert libc.trace == []

    def test_trace_records_calls(self):
        libc = SimLibc(SimFilesystem(), trace=True)
        libc.malloc(1)
        libc.getcwd()
        assert [r.function for r in libc.trace] == ["malloc", "getcwd"]
        assert libc.trace[0].call_number == 1

    def test_trace_stacks_captured_when_enabled(self):
        stack = CallStack()
        libc = SimLibc(SimFilesystem(), stack, trace=True, trace_stacks=True)
        with stack.frame("f"):
            libc.malloc(1)
        assert libc.trace[0].stack == ("main", "f")
