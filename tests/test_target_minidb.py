"""Tests for MiniDB — including both planted MySQL bugs and the hang."""

from __future__ import annotations

import pytest

from repro.injection.libfi import LibFaultInjector
from repro.sim.process import run_test
from repro.sim.targets.minidb import GROUP_SIZES, MINIDB_FUNCTIONS


def inject(target, test_id, function, call, errno=None):
    attrs = {"function": function, "call": call}
    if errno is not None:
        attrs["errno"] = errno
    plan = LibFaultInjector().plan_for(attrs)
    return run_test(target, target.suite[test_id], plan)


def first_test_of(group: str) -> int:
    """1-based id of the first test in a generated group."""
    offset = 1
    for name, size in GROUP_SIZES.items():
        if name == group:
            return offset
        offset += size
    raise KeyError(group)


class TestSuiteShape:
    def test_1147_tests(self, minidb):
        assert len(minidb.suite) == 1147
        assert sum(GROUP_SIZES.values()) == 1147

    def test_space_size_matches_paper(self, minidb):
        # 1147 x 19 x 100 = 2,179,300 (§7)
        assert len(minidb.suite) * len(MINIDB_FUNCTIONS) * 100 == 2179300

    def test_groups_contiguous(self, minidb):
        assert minidb.suite.groups == tuple(GROUP_SIZES)


class TestBaseline:
    def test_sampled_tests_pass_without_injection(self, minidb):
        # One test from every group plus the group boundaries.
        ids = [first_test_of(g) for g in GROUP_SIZES] + [1147]
        for test_id in ids:
            result = run_test(minidb, minidb.suite[test_id])
            assert not result.failed, (test_id, result.summary())

    @pytest.mark.slow
    def test_full_suite_passes_without_injection(self, minidb):
        for test in minidb.suite:
            result = run_test(minidb, test)
            assert not result.failed, (test.name, result.summary())


class TestDoubleUnlockBug:
    """MySQL bug #53268 (paper Fig. 6): double unlock in mi_create."""

    def test_failed_final_close_double_unlocks(self, minidb):
        create_id = first_test_of("create")
        # close #1 is the errmsg fd; close #2 is the buggy my_close.
        result = inject(minidb, create_id, "close", 2, errno="EIO")
        assert result.crash_kind == "abort"
        assert "double unlock" in result.crash_message
        assert result.crash_stack[-1] == "mi_create_err"

    def test_early_failure_recovery_is_correct(self, minidb):
        create_id = first_test_of("create")
        # A failed open of the .MYI enters the same recovery block while
        # the lock is still held: no crash, graceful statement error.
        result = inject(minidb, create_id, "open", 2)
        assert result.failed and not result.crashed

    def test_write_failure_also_recovers_correctly(self, minidb):
        create_id = first_test_of("create")
        result = inject(minidb, create_id, "write", 1, errno="ENOSPC")
        assert result.failed and not result.crashed
        assert "minidb.create.recovery" in result.coverage

    def test_bug_reproduces_across_table_creating_groups(self, minidb):
        for group in ("create", "insert", "select"):
            result = inject(minidb, first_test_of(group), "close", 2,
                            errno="EIO")
            assert result.crash_kind == "abort", group


class TestErrmsgBug:
    """MySQL bug #25097: use of uninitialized errmsg table after failed read."""

    def test_read_failure_plus_error_lookup_segfaults(self, minidb):
        errmsg_id = first_test_of("errmsg")
        result = inject(minidb, errmsg_id, "read", 1, errno="EIO")
        assert result.crash_kind == "segfault"
        assert "my_error" in result.crash_stack

    def test_recovery_logged_the_read_failure_first(self, minidb):
        errmsg_id = first_test_of("errmsg")
        result = inject(minidb, errmsg_id, "read", 1, errno="EIO")
        # "it correctly logs any encountered error if the read fails"
        assert any("errmsg.sys" in line for line in result.stderr)

    def test_read_failure_alone_is_harmless_without_error_lookup(self, minidb):
        # A test whose workload raises no statement error never reaches
        # my_error, so the latent corruption stays invisible.
        insert_id = first_test_of("insert")
        result = inject(minidb, insert_id, "read", 1, errno="EIO")
        assert not result.crashed

    def test_open_failure_also_arms_the_bug(self, minidb):
        errmsg_id = first_test_of("errmsg")
        result = inject(minidb, errmsg_id, "open", 1)
        assert result.crash_kind == "segfault"


class TestConnectionPoolHang:
    def test_unchecked_getrlimit_hangs_pool_sizing(self, minidb):
        admin_id = first_test_of("admin")  # kind 0: pool sizing
        result = inject(minidb, admin_id, "getrlimit", 1)
        assert result.crash_kind == "hang"

    def test_pool_sizing_fine_without_injection(self, minidb):
        result = run_test(minidb, minidb.suite[first_test_of("admin")])
        assert not result.failed


class TestBinlogAbortPolicy:
    def test_binlog_write_failure_aborts_server(self, minidb):
        binlog_id = first_test_of("binlog")
        result = inject(minidb, binlog_id, "fputs", 2)
        assert result.crash_kind == "abort"
        assert "ABORT_SERVER" in result.crash_message

    def test_binlog_flush_failure_aborts_server(self, minidb):
        binlog_id = first_test_of("binlog")
        result = inject(minidb, binlog_id, "fflush", 1)
        assert result.crash_kind == "abort"

    def test_general_log_write_failure_is_best_effort(self, minidb):
        # fputs #1 in a binlog test is the general log (CREATE logging is
        # absent here; boot opens the general log first).  Use an insert
        # test where fputs #1 is the general-log CREATE entry.
        insert_id = first_test_of("insert")
        result = inject(minidb, insert_id, "fputs", 1)
        assert not result.crashed


class TestStatementErrors:
    def test_insert_write_failure_is_statement_error(self, minidb):
        insert_id = first_test_of("insert")
        result = inject(minidb, insert_id, "write", 2, errno="ENOSPC")
        assert result.failed and not result.crashed

    def test_insert_write_eintr_retry_succeeds(self, minidb):
        insert_id = first_test_of("insert")
        result = inject(minidb, insert_id, "write", 2, errno="EINTR")
        assert not result.failed
        assert "minidb.insert.write_retry" in result.coverage

    def test_update_fsync_failure_aborts_by_policy(self, minidb):
        update_id = first_test_of("update")
        result = inject(minidb, update_id, "fsync", 1)
        assert result.crash_kind == "abort"
        assert "fsync" in result.crash_message

    def test_select_read_failure_is_statement_error(self, minidb):
        select_id = first_test_of("select")
        result = inject(minidb, select_id, "read", 2, errno="EIO")
        assert result.failed and not result.crashed

    def test_rename_failure_during_rewrite(self, minidb):
        update_id = first_test_of("update")
        result = inject(minidb, update_id, "rename", 1, errno="EACCES")
        assert result.failed and not result.crashed


class TestNetGroup:
    def test_recv_failure_fails_connect_test(self, minidb):
        result = inject(minidb, 1, "recv", 1, errno="ECONNRESET")
        assert result.failed and not result.crashed

    def test_accept_eintr_is_retried(self, minidb):
        result = inject(minidb, 1, "accept", 1, errno="EINTR")
        assert not result.failed
        assert "minidb.net.accept_retry" in result.coverage
