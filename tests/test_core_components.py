"""Tests for impact metrics, queues, sensitivity, and mutation."""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.impact import (
    CompositeImpact,
    CoverageImpact,
    CrashImpact,
    FailedTestImpact,
    HangImpact,
    MeasurementImpact,
    standard_impact,
)
from repro.core.mutation import (
    mutable_axes,
    mutate_fault,
    sample_gaussian_index,
    sample_uniform_index,
)
from repro.core.queues import Candidate, History, PriorityQueue
from repro.core.sensitivity import SensitivityTracker
from repro.errors import SearchError
from repro.injection.plan import InjectionPlan
from repro.sim.process import RunResult


def make_result(
    failed: bool = False,
    crash_kind: str | None = None,
    coverage: frozenset[str] = frozenset(),
    measurements: dict[str, float] | None = None,
) -> RunResult:
    return RunResult(
        test_id=1,
        test_name="t",
        plan=InjectionPlan.none(),
        exit_code=1 if failed and crash_kind is None else (139 if crash_kind else 0),
        crash_kind=crash_kind,
        crash_message=None,
        crash_stack=None,
        injection_stack=None,
        injected=False,
        coverage=coverage,
        steps=10,
        measurements=measurements or {},
    )


class TestImpactMetrics:
    def test_failed_test_points(self):
        metric = FailedTestImpact(5.0)
        assert metric.score(make_result(failed=True)) == 5.0
        assert metric.score(make_result()) == 0.0

    def test_crash_points_cover_segfault_and_abort(self):
        metric = CrashImpact(20.0)
        assert metric.score(make_result(crash_kind="segfault")) == 20.0
        assert metric.score(make_result(crash_kind="abort")) == 20.0
        assert metric.score(make_result(crash_kind="hang")) == 0.0

    def test_hang_points(self):
        metric = HangImpact(10.0)
        assert metric.score(make_result(crash_kind="hang")) == 10.0

    def test_coverage_rewards_only_new_blocks(self):
        metric = CoverageImpact(1.0)
        assert metric.score(make_result(coverage=frozenset({"a", "b"}))) == 2.0
        assert metric.score(make_result(coverage=frozenset({"b", "c"}))) == 1.0
        assert metric.score(make_result(coverage=frozenset({"a"}))) == 0.0
        assert metric.blocks_seen == frozenset({"a", "b", "c"})

    def test_measurement_impact(self):
        metric = MeasurementImpact("latency", scale=2.0)
        assert metric.score(make_result(measurements={"latency": 3.0})) == 6.0
        assert metric.score(make_result()) == 0.0

    def test_composite_sums(self):
        metric = CompositeImpact([FailedTestImpact(5.0), CrashImpact(20.0)])
        assert metric.score(make_result(failed=True, crash_kind="segfault")) == 25.0

    def test_composite_needs_components(self):
        with pytest.raises(ValueError):
            CompositeImpact([])

    def test_standard_impact_matches_paper_recipe(self):
        metric = standard_impact()
        crash = make_result(failed=True, crash_kind="segfault",
                            coverage=frozenset({"x"}))
        # 1 new block + failed test (crashes also fail) + crash
        assert metric.score(crash) == 1.0 + 5.0 + 20.0


class TestPriorityQueue:
    def test_add_and_len(self):
        queue = PriorityQueue(4, random.Random(1))
        queue.add(Candidate(Fault.of(a=1), 1.0, 1.0))
        assert len(queue) == 1

    def test_eviction_keeps_size_bounded(self):
        queue = PriorityQueue(3, random.Random(1))
        for i in range(10):
            queue.add(Candidate(Fault.of(a=i), float(i), float(i)))
        assert len(queue) == 3

    def test_eviction_prefers_low_fitness(self):
        rng = random.Random(1)
        queue = PriorityQueue(5, rng)
        for i in range(5):
            queue.add(Candidate(Fault.of(a=i), 0.01, 0.01))
        queue.add(Candidate(Fault.of(a="big"), 100.0, 100.0))
        for _ in range(20):
            queue.add(Candidate(Fault.of(a=rng.random()), 0.01, 0.01))
        # The high-fitness candidate should have survived the churn.
        assert any(c.fault == Fault.of(a="big") for c in queue)

    def test_sampling_proportional_to_fitness(self):
        rng = random.Random(7)
        queue = PriorityQueue(2, rng)
        queue.add(Candidate(Fault.of(a="hot"), 100.0, 100.0))
        queue.add(Candidate(Fault.of(a="cold"), 1.0, 1.0))
        picks = Counter(queue.sample_parent().fault.value("a") for _ in range(500))
        assert picks["hot"] > picks["cold"] * 5

    def test_zero_fitness_still_sampleable(self):
        queue = PriorityQueue(2, random.Random(1))
        queue.add(Candidate(Fault.of(a=1), 0.0, 0.0))
        assert queue.sample_parent().fault == Fault.of(a=1)

    def test_sample_from_empty_rejected(self):
        with pytest.raises(SearchError):
            PriorityQueue(2, random.Random(1)).sample_parent()

    def test_aging_decays_fitness(self):
        queue = PriorityQueue(4, random.Random(1))
        queue.add(Candidate(Fault.of(a=1), 10.0, 10.0))
        queue.age(0.5, retire_threshold=0.0)
        assert queue.items[0].fitness == 5.0

    def test_aging_retires_below_threshold(self):
        queue = PriorityQueue(4, random.Random(1))
        queue.add(Candidate(Fault.of(a=1), 1.0, 1.0))
        retired: list[Candidate] = []
        for _ in range(20):
            retired += queue.age(0.5, retire_threshold=0.2)
        assert len(queue) == 0
        assert len(retired) == 1

    def test_fresh_candidates_not_retired_immediately(self):
        queue = PriorityQueue(4, random.Random(1))
        queue.add(Candidate(Fault.of(a=1), 0.0, 0.0))
        assert queue.age(0.9, retire_threshold=0.5) == []  # age 1: protected
        assert len(queue.age(0.9, retire_threshold=0.5)) == 1

    def test_invalid_decay_rejected(self):
        queue = PriorityQueue(4, random.Random(1))
        with pytest.raises(SearchError):
            queue.age(0.0, 0.1)

    def test_best_and_mean(self):
        queue = PriorityQueue(4, random.Random(1))
        assert queue.best() is None and queue.mean_fitness() == 0.0
        queue.add(Candidate(Fault.of(a=1), 2.0, 2.0))
        queue.add(Candidate(Fault.of(a=2), 4.0, 4.0))
        assert queue.best().fitness == 4.0
        assert queue.mean_fitness() == 3.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(SearchError):
            PriorityQueue(0, random.Random(1))


class TestHistory:
    def test_membership(self):
        history = History()
        fault = Fault.of(a=1)
        assert fault not in history
        history.add(fault)
        assert fault in history and len(history) == 1

    def test_idempotent_add(self):
        history = History()
        history.add(Fault.of(a=1))
        history.add(Fault.of(a=1))
        assert len(history) == 1


class TestSensitivity:
    def test_uniform_before_observations(self):
        tracker = SensitivityTracker(["a", "b"], window=5)
        probs = tracker.probabilities()
        assert probs["a"] == pytest.approx(0.5)
        assert probs["b"] == pytest.approx(0.5)

    def test_sensitivity_is_windowed_sum(self):
        tracker = SensitivityTracker(["a"], window=3)
        for value in (1.0, 2.0, 3.0, 4.0):
            tracker.record("a", value)
        assert tracker.sensitivity("a") == 9.0  # last 3: 2+3+4

    def test_probabilities_favor_productive_axis(self):
        tracker = SensitivityTracker(["a", "b"], window=5, floor=0.1)
        tracker.record("a", 10.0)
        tracker.record("b", 1.0)
        probs = tracker.probabilities()
        assert probs["a"] > probs["b"]
        assert probs["a"] + probs["b"] == pytest.approx(1.0)

    def test_floor_keeps_cold_axis_alive(self):
        tracker = SensitivityTracker(["a", "b"], window=5, floor=0.1)
        tracker.record("a", 100.0)
        assert tracker.probabilities()["b"] >= 0.05

    def test_unknown_axis_rejected(self):
        tracker = SensitivityTracker(["a"])
        with pytest.raises(SearchError):
            tracker.record("z", 1.0)
        with pytest.raises(SearchError):
            tracker.sensitivity("z")

    def test_validation(self):
        with pytest.raises(SearchError):
            SensitivityTracker([])
        with pytest.raises(SearchError):
            SensitivityTracker(["a"], window=0)
        with pytest.raises(SearchError):
            SensitivityTracker(["a"], floor=1.5)


class TestMutation:
    def test_gaussian_index_in_range_and_new(self):
        rng = random.Random(3)
        for _ in range(200):
            index = sample_gaussian_index(rng, 5, 10, sigma=2.0)
            assert 0 <= index < 10 and index != 5

    def test_gaussian_favours_neighbours(self):
        rng = random.Random(3)
        draws = Counter(
            sample_gaussian_index(rng, 50, 101, sigma=5.0) for _ in range(2000)
        )
        near = sum(v for k, v in draws.items() if abs(k - 50) <= 5)
        far = sum(v for k, v in draws.items() if abs(k - 50) > 20)
        assert near > far * 3

    def test_uniform_index_in_range_and_new(self):
        rng = random.Random(3)
        draws = {sample_uniform_index(rng, 2, 5) for _ in range(200)}
        assert draws == {0, 1, 3, 4}

    def test_single_value_axis_rejected(self):
        with pytest.raises(SearchError):
            sample_gaussian_index(random.Random(1), 0, 1, 1.0)
        with pytest.raises(SearchError):
            sample_uniform_index(random.Random(1), 0, 1)

    def test_cardinality_two_terminates(self):
        rng = random.Random(1)
        for _ in range(50):
            assert sample_gaussian_index(rng, 0, 2, sigma=0.01) == 1

    def test_mutate_fault_changes_exactly_one_axis(self):
        space = FaultSpace.product(x=range(10), y=range(10))
        fault = Fault.of(x=5, y=5)
        rng = random.Random(2)
        for _ in range(50):
            mutant = mutate_fault(space, fault, "x", rng)
            assert mutant.value("y") == 5
            assert mutant.value("x") != 5

    def test_mutable_axes_skips_singletons(self):
        space = FaultSpace.product(x=range(10), fixed=[1])
        assert mutable_axes(space, Fault.of(x=1, fixed=1)) == ("x",)

    @given(st.integers(min_value=2, max_value=50),
           st.integers(min_value=0, max_value=49))
    def test_gaussian_always_valid_property(self, cardinality, start):
        start = start % cardinality
        rng = random.Random(cardinality * 100 + start)
        index = sample_gaussian_index(rng, start, cardinality,
                                      sigma=cardinality / 5)
        assert 0 <= index < cardinality and index != start
