"""Unit tests for the simulated coreutils, driven directly."""

from __future__ import annotations

import random

import pytest

from repro.injection.plan import AtomicFault, InjectionPlan
from repro.sim.coverage import Coverage
from repro.sim.crashes import ExitProgram
from repro.sim.errnos import Errno
from repro.sim.filesystem import SimFilesystem
from repro.sim.libc import SimLibc
from repro.sim.process import Env
from repro.sim.stack import CallStack
from repro.sim.targets.coreutils import ln_main, ls_main, mv_main
from repro.sim.targets.coreutils.common import invoke


@pytest.fixture
def env() -> Env:
    fs = SimFilesystem()
    fs.mkdir("/dev")
    fs.create_file("/dev/stdout")
    fs.mkdir("/work")
    fs.chdir("/work")
    stack = CallStack()
    libc = SimLibc(fs, stack)
    return Env(fs, libc, stack, Coverage(), random.Random(0))


def stdout_of(env: Env) -> str:
    return env.fs.read_file("/dev/stdout").decode()


def arm(env: Env, function: str, call: int, errno: Errno, retval: int = -1):
    already = env.libc.call_count(function)
    env.libc.set_plan(
        InjectionPlan((AtomicFault(function, already + call, errno, retval),))
    )


class TestLs:
    def test_lists_sorted(self, env):
        env.fs.mkdir("d")
        for name in ("zeta", "alpha", "mid"):
            env.fs.create_file(f"d/{name}", b"")
        assert invoke(env, ls_main, ["d"]) == 0
        assert stdout_of(env) == "alpha\nmid\nzeta\n"

    def test_hidden_files_need_dash_a(self, env):
        env.fs.mkdir("d")
        env.fs.create_file("d/.secret", b"")
        env.fs.create_file("d/open", b"")
        invoke(env, ls_main, ["d"])
        assert ".secret" not in stdout_of(env)
        env.fs.create_file("/dev/stdout", b"")  # reset output
        invoke(env, ls_main, ["-a", "d"])
        assert ".secret" in stdout_of(env)

    def test_long_format_shows_sizes_and_kinds(self, env):
        env.fs.mkdir("d")
        env.fs.create_file("d/file", b"12345")
        env.fs.mkdir("d/sub")
        invoke(env, ls_main, ["-l", "d"])
        out = stdout_of(env)
        assert any(line.startswith("-") and "5" in line for line in out.splitlines())
        assert any(line.startswith("d") for line in out.splitlines())

    def test_missing_path_exits_2(self, env):
        assert invoke(env, ls_main, ["nothing"]) == 2

    def test_file_argument_listed_directly(self, env):
        env.fs.create_file("f", b"x")
        assert invoke(env, ls_main, ["f"]) == 0
        assert stdout_of(env).strip() == "f"

    def test_recursive_descends(self, env):
        env.fs.mkdir("d")
        env.fs.mkdir("d/inner")
        env.fs.create_file("d/inner/leaf", b"")
        assert invoke(env, ls_main, ["-R", "d"]) == 0
        assert "leaf" in stdout_of(env)

    def test_multiple_args_labelled(self, env):
        env.fs.mkdir("a")
        env.fs.mkdir("b")
        invoke(env, ls_main, ["a", "b"])
        out = stdout_of(env)
        assert "a:" in out and "b:" in out

    def test_entry_stat_failure_degrades_to_1(self, env):
        env.fs.mkdir("d")
        env.fs.create_file("d/x", b"")
        env.fs.create_file("d/y", b"")
        arm(env, "stat", 2, Errno.EACCES)  # stat #1 is the arg itself
        assert invoke(env, ls_main, ["-l", "d"]) == 1

    def test_stdout_close_failure_is_fatal(self, env):
        env.fs.mkdir("d")
        arm(env, "fclose", 1, Errno.EIO)
        assert invoke(env, ls_main, ["d"]) == 1


class TestLn:
    def test_simple_link_shares_content(self, env):
        env.fs.create_file("src", b"payload")
        assert invoke(env, ln_main, ["src", "dst"]) == 0
        assert env.fs.read_file("dst") == b"payload"
        assert env.fs.stat("src").nlink == 2

    def test_into_directory_uses_basename(self, env):
        env.fs.create_file("file", b"")
        env.fs.mkdir("d")
        assert invoke(env, ln_main, ["file", "d"]) == 0
        assert env.fs.is_file("d/file")

    def test_refuses_existing_without_force(self, env):
        env.fs.create_file("a", b"new")
        env.fs.create_file("b", b"old")
        assert invoke(env, ln_main, ["a", "b"]) == 1
        assert env.fs.read_file("b") == b"old"

    def test_force_replaces(self, env):
        env.fs.create_file("a", b"new")
        env.fs.create_file("b", b"old")
        assert invoke(env, ln_main, ["-f", "a", "b"]) == 0
        assert env.fs.read_file("b") == b"new"

    def test_multiple_sources_require_directory(self, env):
        env.fs.create_file("x", b"")
        env.fs.create_file("y", b"")
        env.fs.create_file("plain", b"")
        assert invoke(env, ln_main, ["x", "y", "plain"]) == 1

    def test_verbose_prints_arrow(self, env):
        env.fs.create_file("s", b"")
        assert invoke(env, ln_main, ["-v", "s", "t"]) == 0
        assert "=>" in stdout_of(env)

    def test_usage_error_before_any_work(self, env):
        assert invoke(env, ln_main, ["only"]) == 1
        assert env.libc.call_count("malloc") == 0

    def test_partial_batch_reports_but_continues(self, env):
        env.fs.create_file("x", b"")
        env.fs.create_file("y", b"")
        env.fs.mkdir("d")
        env.fs.create_file("d/x", b"")  # x collides, y should still link
        assert invoke(env, ln_main, ["x", "y", "d"]) == 1
        assert env.fs.is_file("d/y")


class TestMv:
    def test_rename_moves(self, env):
        env.fs.create_file("a", b"1")
        assert invoke(env, mv_main, ["a", "b"]) == 0
        assert not env.fs.exists("a") and env.fs.read_file("b") == b"1"

    def test_exdev_falls_back_to_copy(self, env):
        env.fs.create_file("a", b"cross-device")
        arm(env, "rename", 1, Errno.EXDEV)
        assert invoke(env, mv_main, ["a", "b"]) == 0
        assert env.fs.read_file("b") == b"cross-device"
        assert not env.fs.exists("a")

    def test_copy_fallback_failure_preserves_source(self, env):
        env.fs.create_file("a", b"precious")
        already_rename = env.libc.call_count("rename")
        already_write = env.libc.call_count("write")
        env.libc.set_plan(InjectionPlan((
            AtomicFault("rename", already_rename + 1, Errno.EXDEV, -1),
            AtomicFault("write", already_write + 1, Errno.ENOSPC, -1,
                        persistent=True),
        )))
        assert invoke(env, mv_main, ["a", "b"]) == 1
        assert env.fs.read_file("a") == b"precious"
        assert not env.fs.exists("b")  # partial dest cleaned up

    def test_backup_preserves_old_dest(self, env):
        env.fs.create_file("a", b"new")
        env.fs.create_file("b", b"old")
        assert invoke(env, mv_main, ["-b", "a", "b"]) == 0
        assert env.fs.read_file("b~") == b"old"
        assert env.fs.read_file("b") == b"new"

    def test_directory_move(self, env):
        env.fs.mkdir("d1")
        env.fs.create_file("d1/inner", b"v")
        assert invoke(env, mv_main, ["d1", "d2"]) == 0
        assert env.fs.read_file("d2/inner") == b"v"

    def test_multiple_into_directory(self, env):
        env.fs.create_file("x", b"")
        env.fs.create_file("y", b"")
        env.fs.mkdir("d")
        assert invoke(env, mv_main, ["x", "y", "d"]) == 0
        assert env.fs.is_file("d/x") and env.fs.is_file("d/y")

    def test_verbose_reports_mode(self, env):
        env.fs.create_file("a", b"")
        assert invoke(env, mv_main, ["-v", "a", "b"]) == 0
        assert "renamed" in stdout_of(env)

    def test_copy_mode_verbose_says_copied(self, env):
        env.fs.create_file("a", b"z")
        arm(env, "rename", 1, Errno.EXDEV)
        assert invoke(env, mv_main, ["-v", "a", "b"]) == 0
        assert "copied" in stdout_of(env)

    def test_missing_operand_usage(self, env):
        assert invoke(env, mv_main, ["one"]) == 1


class TestInvokeHelper:
    def test_invoke_returns_zero_for_clean_main(self, env):
        assert invoke(env, lambda e, args: None, []) == 0

    def test_invoke_catches_exit_codes(self, env):
        def main(e, args):
            raise ExitProgram(7)

        assert invoke(env, main, []) == 7
