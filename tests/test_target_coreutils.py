"""Tests for the simulated coreutils target (Φ_coreutils of §7.2-§7.5)."""

from __future__ import annotations


from repro.injection.libfi import LibFaultInjector
from repro.injection.plan import InjectionPlan
from repro.sim.process import run_test
from repro.sim.targets.coreutils import COREUTILS_FUNCTIONS


def inject(target, test_id, function, call, errno=None):
    attrs = {"function": function, "call": call}
    if errno is not None:
        attrs["errno"] = errno
    plan = LibFaultInjector().plan_for(attrs)
    return run_test(target, target.suite[test_id], plan)


class TestSuiteShape:
    def test_29_tests(self, coreutils):
        assert len(coreutils.suite) == 29

    def test_groups_are_contiguous_utilities(self, coreutils):
        assert coreutils.suite.groups == ("ls", "ln", "mv")
        assert len(coreutils.suite.in_group("ls")) == 11
        assert len(coreutils.suite.in_group("ln")) == 9
        assert len(coreutils.suite.in_group("mv")) == 9

    def test_19_functions(self, coreutils):
        assert len(COREUTILS_FUNCTIONS) == 19
        assert coreutils.libc_functions() == COREUTILS_FUNCTIONS

    def test_space_size_matches_paper(self, coreutils):
        # 29 tests x 19 functions x 3 call values = 1,653 (§7.2)
        assert len(coreutils.suite) * len(COREUTILS_FUNCTIONS) * 3 == 1653


class TestBaseline:
    def test_all_tests_pass_without_injection(self, coreutils):
        for test in coreutils.suite:
            result = run_test(coreutils, test)
            assert not result.failed, f"{test.name}: {result.summary()}"

    def test_no_injection_plan_point_is_benign(self, coreutils):
        # call=0 encodes "no injection": must behave exactly like baseline.
        for test_id in (1, 12, 21):
            result = inject(coreutils, test_id, "malloc", 0)
            assert not result.failed and not result.injected


class TestLsBehaviour:
    def test_opendir_failure_fails_ls_tests(self, coreutils):
        result = inject(coreutils, 2, "opendir", 1)
        assert result.failed and not result.crashed

    def test_opendir_failure_irrelevant_to_ln(self, coreutils):
        result = inject(coreutils, 12, "opendir", 1)
        assert not result.failed  # ln never calls opendir

    def test_setlocale_failure_is_tolerated(self, coreutils):
        # Fig. 1's gray column: locale failures are ignored by coreutils.
        for test_id in (2, 12, 21):
            result = inject(coreutils, test_id, "setlocale", 1)
            assert not result.failed

    def test_fputs_failure_is_write_error(self, coreutils):
        result = inject(coreutils, 2, "fputs", 1)
        assert result.failed
        assert result.exit_code == 1

    def test_closedir_failure_ignored_like_real_ls(self, coreutils):
        result = inject(coreutils, 2, "closedir", 1)
        assert not result.failed

    def test_readdir_failure_reported(self, coreutils):
        result = inject(coreutils, 2, "readdir", 1)
        assert result.failed

    def test_recursive_ls_chdir_failure_degrades(self, coreutils):
        result = inject(coreutils, 9, "chdir", 1)
        assert result.failed

    def test_realloc_failure_on_big_dir(self, coreutils):
        result = inject(coreutils, 6, "realloc", 1)
        assert result.failed  # 12 entries forces a grow


class TestLnMvBehaviour:
    def test_link_failure_fails_ln(self, coreutils):
        result = inject(coreutils, 12, "link", 1)
        assert result.failed

    def test_rename_exdev_triggers_copy_fallback_success(self, coreutils):
        result = inject(coreutils, 21, "rename", 1, errno="EXDEV")
        assert not result.failed  # recovery path works
        assert "mv.copy.ok" in result.coverage

    def test_rename_eacces_fails_mv(self, coreutils):
        result = inject(coreutils, 21, "rename", 1, errno="EACCES")
        assert result.failed

    def test_copy_fallback_write_failure_preserves_source(self, coreutils):
        # rename EXDEV (fault 1) is the scenario; write failure inside the
        # fallback needs a multi-fault plan.
        plan = InjectionPlan((
            LibFaultInjector().plan_for(
                {"function": "rename", "call": 1, "errno": "EXDEV"}
            ).faults[0],
            LibFaultInjector().plan_for(
                {"function": "write", "call": 1, "errno": "ENOSPC"}
            ).faults[0],
        ))
        result = run_test(coreutils, coreutils.suite[21], plan)
        assert result.failed
        assert "mv.copy.abort" in result.coverage

    def test_copy_fallback_read_eintr_retries(self, coreutils):
        plan = InjectionPlan((
            LibFaultInjector().plan_for(
                {"function": "rename", "call": 1, "errno": "EXDEV"}
            ).faults[0],
            LibFaultInjector().plan_for(
                {"function": "read", "call": 1, "errno": "EINTR"}
            ).faults[0],
        ))
        result = run_test(coreutils, coreutils.suite[21], plan)
        assert not result.failed
        assert "mv.copy.read_retry" in result.coverage

    def test_expected_failure_tests_tolerate_oom(self, coreutils):
        # ln-existing-dest (14), ln-missing-source (17), ln-usage (19),
        # mv-missing-source (26) pass even under malloc injection.
        for test_id in (14, 17, 19, 26):
            for call in (1, 2):
                result = inject(coreutils, test_id, "malloc", call)
                assert not result.failed, (test_id, call)


class TestTable6Invariant:
    def test_exactly_28_malloc_faults_fail_ln_and_mv(self, coreutils):
        """The search target of Table 6: 28 OOM scenarios over ln+mv."""
        failing = 0
        for test_id in range(12, 30):
            for call in (1, 2):
                if inject(coreutils, test_id, "malloc", call).failed:
                    failing += 1
        assert failing == 28

    def test_ln_mv_use_nine_functions(self, coreutils):
        """The §7.5 'trimmed fault space' knowledge is accurate-ish: the
        ln/mv tests call a strict subset of the 19-function axis."""
        from repro.injection.callsite import profile_target

        profile = profile_target(coreutils)
        used: set[str] = set()
        for test_id in range(12, 30):
            used.update(profile.functions_called_by(test_id))
        axis_used = used & set(COREUTILS_FUNCTIONS)
        assert len(axis_used) < len(COREUTILS_FUNCTIONS)
        assert "malloc" in axis_used and "opendir" not in axis_used


class TestStructureMap:
    def test_fig1_style_map_has_block_structure(self, coreutils):
        """ls-only functions fail ls tests but not ln/mv tests."""
        from repro.reporting import structure_map

        functions = list(COREUTILS_FUNCTIONS)
        grid = structure_map(coreutils, functions, call_number=1)
        opendir_column = functions.index("opendir")
        ls_failures = sum(grid[row][opendir_column] for row in range(0, 11))
        lnmv_failures = sum(grid[row][opendir_column] for row in range(11, 29))
        assert ls_failures >= 8
        assert lnmv_failures == 0

    def test_exhaustive_failure_count_in_paper_ballpark(self, coreutils):
        """Paper: 205/1653 injections fail; ours must be same order."""
        injector = LibFaultInjector()
        failed = 0
        for test in coreutils.suite:
            for function in COREUTILS_FUNCTIONS:
                for call in (0, 1, 2):
                    plan = injector.plan_for({"function": function, "call": call})
                    if run_test(coreutils, test, plan).failed:
                        failed += 1
        assert 100 <= failed <= 300
