"""Unit tests for MiniHttpd and DocStore internals, driven directly."""

from __future__ import annotations

import random

import pytest

from repro.injection.plan import AtomicFault, InjectionPlan
from repro.sim.coverage import Coverage
from repro.sim.crashes import SegmentationFault
from repro.sim.errnos import Errno
from repro.sim.filesystem import SimFilesystem
from repro.sim.libc import SimLibc
from repro.sim.process import Env
from repro.sim.stack import CallStack
from repro.sim.targets.docstore import (
    CONFIG_PATH,
    DATA_PATH,
    JOURNAL_PATH,
    DocStore,
)
from repro.sim.targets.httpd.server import BootError, HttpdServer


def make_env(setup=None) -> Env:
    fs = SimFilesystem()
    stack = CallStack()
    libc = SimLibc(fs, stack)
    env = Env(fs, libc, stack, Coverage(), random.Random(0))
    if setup:
        setup(fs)
    return env


def httpd_env(config: str = None, files=()) -> Env:
    def setup(fs):
        for d in ("/etc", "/var", "/var/log", "/srv", "/srv/www"):
            fs.mkdir(d)
        text = config if config is not None else (
            "Listen 80\nDocumentRoot /srv/www\n"
            "CustomLog /var/log/access_log\nLoadModules mod_core,mod_mime\n"
        )
        fs.create_file("/etc/httpd.conf", text.encode())
        fs.create_file("/srv/www/index.html", b"<html>hi</html>")
        for path, data in files:
            fs.create_file(path, data)
    return make_env(setup)


def arm(env: Env, function: str, call: int, errno: Errno, retval: int = -1):
    already = env.libc.call_count(function)
    env.libc.set_plan(
        InjectionPlan((AtomicFault(function, already + call, errno, retval),))
    )


class TestHttpdConfig:
    def test_parses_directives(self):
        env = httpd_env()
        server = HttpdServer(env)
        server.boot()
        assert server.config["Listen"] == "80"
        assert server.modules == ["mod_core", "mod_mime"]

    def test_missing_config_falls_back_to_defaults(self):
        env = httpd_env()
        env.fs.unlink("/etc/httpd.conf")
        server = HttpdServer(env)
        server.boot()
        assert server.config["DocumentRoot"] == "/srv/www"
        assert server.modules == ["mod_core"]

    def test_truncated_config_keeps_parsed_prefix(self):
        env = httpd_env(
            "DocumentRoot /alt\nListen 8080\nLoadModules mod_core\n"
        )
        env.fs.mkdir("/alt")
        arm(env, "fgets", 2, Errno.EIO, 0)  # truncate after 1st directive
        server = HttpdServer(env)
        server.boot()
        assert server.config["DocumentRoot"] == "/alt"   # parsed before cut
        assert server.config["Listen"] == "80"           # defaulted

    def test_unknown_module_is_fatal(self):
        env = httpd_env("DocumentRoot /srv/www\nLoadModules mod_nope\n")
        with pytest.raises(BootError):
            HttpdServer(env).boot()

    def test_comments_and_blank_lines_ignored(self):
        env = httpd_env("# comment\n\nDocumentRoot /srv/www\n")
        server = HttpdServer(env)
        server.boot()
        assert "#" not in server.config

    def test_oom_on_directive_skips_it(self):
        env = httpd_env()
        arm(env, "strdup", 1, Errno.ENOMEM, 0)
        server = HttpdServer(env)
        server.boot()
        assert "Listen" not in server.config or server.config["Listen"] == "80"
        assert any("skipping" in line for line in env.stderr)


class TestHttpdModules:
    def test_prelinked_vs_dso_split(self):
        many = ",".join([
            "mod_core", "mod_mime", "mod_dir", "mod_log_config",
            "mod_alias", "mod_auth_basic", "mod_authz_host",
        ])
        env = httpd_env(f"DocumentRoot /srv/www\nLoadModules {many}\n")
        server = HttpdServer(env)
        server.boot()
        assert len(server.modules) == 7
        assert "httpd.modules.dso" in env.cov.blocks

    def test_strdup_bug_prelinked_stack(self):
        env = httpd_env()
        arm(env, "strdup", 1 + 4, Errno.ENOMEM, 0)  # after 4 config values
        with pytest.raises(SegmentationFault):
            HttpdServer(env).boot()
        event = env.libc.injections[0]
        assert "ap_setup_prelinked_modules" in event.stack

    def test_strdup_bug_dso_stack_differs(self):
        many = ",".join([
            "mod_core", "mod_mime", "mod_dir", "mod_log_config",
            "mod_alias", "mod_auth_basic",
        ])
        env = httpd_env(f"DocumentRoot /srv/www\nLoadModules {many}\n")
        # 2 config strdups + 5 prelinked + the 6th module goes DSO
        arm(env, "strdup", 2 + 5 + 1, Errno.ENOMEM, 0)
        with pytest.raises(SegmentationFault):
            HttpdServer(env).boot()
        event = env.libc.injections[0]
        assert "mod_so_load" in event.stack


class TestHttpdRequests:
    def _booted(self):
        env = httpd_env(files=(("/srv/www/page.html", b"content"),
                               ("/srv/www/blob.bin", b"B" * 2000)))
        server = HttpdServer(env)
        server.boot()
        return env, server

    def test_serves_content(self):
        env, server = self._booted()
        env.libc.net_inbox.append(b"GET /page.html")
        assert server.serve_pending() == 1
        assert b"content" in env.libc.net_outbox[0]
        assert server.requests_served == 1

    def test_404_for_missing(self):
        env, server = self._booted()
        env.libc.net_inbox.append(b"GET /nope.html")
        server.serve_pending()
        assert b"404" in env.libc.net_outbox[0]
        assert b"404" in env.fs.read_file("/var/log/access_log")

    def test_405_for_post(self):
        env, server = self._booted()
        env.libc.net_inbox.append(b"POST /page.html")
        server.serve_pending()
        assert b"405" in env.libc.net_outbox[0]

    def test_handler_dispatch_by_type(self):
        assert HttpdServer._handler_for("/") == "mod_dir_handler"
        assert HttpdServer._handler_for("/a.html") == "mod_mime_handler"
        assert HttpdServer._handler_for("/a.bin") == "core_content_handler"
        assert HttpdServer._handler_for("/a.txt") == "default_handler"

    def test_large_file_served_in_chunks(self):
        env, server = self._booted()
        env.libc.net_inbox.append(b"GET /blob.bin")
        server.serve_pending()
        assert env.libc.net_outbox[0].endswith(b"B" * 100)
        assert env.libc.call_count("read") >= 2  # 2000 bytes / 1024 chunks

    def test_shutdown_closes_resources(self):
        env, server = self._booted()
        server.shutdown()
        assert server.log_stream == 0 and server.listen_sock == -1
        assert env.fs.open_fd_count == 0


class TestDocStoreInternals:
    def _env(self, journal: bytes | None = None) -> Env:
        def setup(fs):
            fs.mkdir("/etc")
            fs.mkdir("/data")
            fs.create_file(CONFIG_PATH, b"durability=full\n")
            if journal is not None:
                fs.create_file(JOURNAL_PATH, journal)
        return make_env(setup)

    def test_v2_journal_replay_restores_docs(self):
        env = self._env(journal=b"insert c doc-a\ninsert c doc-b\nremove c doc-a\n")
        store = DocStore(env, "2.0")
        assert store.boot()
        assert store.find("c", "doc-") == ["doc-b"]
        assert store.replayed_ops == 3

    def test_v2_replay_skips_malformed_lines(self):
        env = self._env(journal=b"garbage\ninsert c good\n???\n")
        store = DocStore(env, "2.0")
        assert store.boot()
        assert store.find("c", "good") == ["good"]

    def test_v08_ignores_journal_entirely(self):
        env = self._env(journal=b"insert c doc-a\n")
        store = DocStore(env, "0.8")
        assert store.boot()
        assert store.find("c", "doc-") == []

    def test_config_durability_relaxed_skips_fsyncless_flush(self):
        env = self._env()
        env.fs.create_file(CONFIG_PATH, b"durability=lazy\n")
        store = DocStore(env, "2.0")
        store.boot()
        before = env.libc.call_count("fflush")
        store.insert("c", "d")
        assert env.libc.call_count("fflush") == before

    def test_snapshot_roundtrip(self):
        env = self._env()
        store = DocStore(env, "2.0")
        store.boot()
        store.insert("a", "x")
        store.insert("b", "y")
        assert store.snapshot()
        content = env.fs.read_file(DATA_PATH).decode()
        assert "a x" in content and "b y" in content
        assert store.acked_snapshots

    def test_v2_failed_snapshot_keeps_previous(self):
        env = self._env()
        store = DocStore(env, "2.0")
        store.boot()
        store.insert("a", "one")
        assert store.snapshot()
        first = env.fs.read_file(DATA_PATH)
        store.insert("a", "two")
        already = env.libc.call_count("fsync")
        env.libc.set_plan(InjectionPlan((
            AtomicFault("fsync", already + 1, Errno.EIO, -1),
        )))
        assert not store.snapshot()
        assert env.fs.read_file(DATA_PATH) == first
        assert not env.fs.exists(DATA_PATH + ".tmp")

    def test_v08_failed_snapshot_destroys_previous(self):
        env = self._env()
        store = DocStore(env, "0.8")
        store.boot()
        store.insert("a", "one")
        assert store.snapshot()
        already = env.libc.call_count("write")
        env.libc.set_plan(InjectionPlan((
            AtomicFault("write", already + 1, Errno.ENOSPC, -1),
        )))
        store.insert("a", "two")
        assert not store.snapshot()
        assert env.fs.read_file(DATA_PATH) == b""  # the data-loss bug

    def test_remove_missing_doc_fails(self):
        env = self._env()
        store = DocStore(env, "2.0")
        store.boot()
        assert not store.remove("c", "ghost")
        assert "no such document" in store.errors

    def test_stats_report_sizes(self):
        env = self._env()
        store = DocStore(env, "2.0")
        store.boot()
        store.insert("m", "v")
        store.snapshot()
        stats = store.stats()
        assert stats["m"] == 1
        assert stats["data_bytes"] > 0
        assert stats["journal_bytes"] > 0
