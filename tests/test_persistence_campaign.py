"""Tests for result-set persistence and the campaign (certification) mode."""

from __future__ import annotations

import pytest

from repro.campaign import Campaign, CampaignJob
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.core.fault import Fault
from repro.core.results import ResultSet
from repro.errors import ReportError
from repro.sim.targets.coreutils import CoreutilsTarget
from repro.sim.targets.docstore import DocStoreTarget


def explore(coreutils, iterations=80, seed=3) -> ResultSet:
    return ExplorationSession(
        TargetRunner(coreutils),
        FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        ),
        standard_impact(),
        FitnessGuidedSearch(initial_batch=10),
        IterationBudget(iterations),
        rng=seed,
    ).run()


class TestResultPersistence:
    @pytest.fixture(scope="class")
    def results(self, coreutils) -> ResultSet:
        return explore(coreutils)

    def test_roundtrip_preserves_counts(self, results):
        restored = ResultSet.from_json(results.to_json())
        assert len(restored) == len(results)
        assert restored.failed_count() == results.failed_count()
        assert restored.crash_count() == results.crash_count()

    def test_roundtrip_preserves_faults_and_impacts(self, results):
        restored = ResultSet.from_json(results.to_json())
        for original, loaded in zip(results, restored):
            assert loaded.fault == original.fault
            assert loaded.impact == original.impact
            assert loaded.result.summary() == original.result.summary()

    def test_roundtrip_preserves_clustering_inputs(self, results):
        restored = ResultSet.from_json(results.to_json())
        assert restored.unique_failures() == results.unique_failures()
        assert restored.coverage_union() == results.coverage_union()

    def test_roundtrip_preserves_range_fault_values(self, coreutils):
        runner = TargetRunner(coreutils)
        fault = Fault.of(test=12, function="malloc", call=(1, 2))
        result = runner(fault)
        from repro.core.results import ExecutedTest

        saved = ResultSet([ExecutedTest(0, fault, result, 1.0, 1.0)])
        restored = ResultSet.from_json(saved.to_json())
        assert restored[0].fault.value("call") == (1, 2)

    def test_save_load_files(self, results, tmp_path):
        path = tmp_path / "run.json"
        results.save(path)
        restored = ResultSet.load(path)
        assert len(restored) == len(results)

    def test_replay_plan_survives_roundtrip(self, results, coreutils):
        restored = ResultSet.from_json(results.to_json())
        failing = restored.failed_tests()
        assert failing
        # The restored plan is executable against the live target.
        from repro.sim.process import run_test

        test_id = failing[0].result.test_id
        replayed = run_test(coreutils, coreutils.suite[test_id],
                            failing[0].result.plan)
        assert replayed.failed


class TestCampaign:
    def _jobs(self):
        coreutils = CoreutilsTarget()
        docstore = DocStoreTarget("0.8")
        return [
            CampaignJob(
                name="coreutils-8.1",
                target=coreutils,
                space=FaultSpace.product(
                    test=range(1, 30),
                    function=coreutils.libc_functions(),
                    call=[0, 1, 2],
                ),
                iterations=60,
                seed=1,
            ),
            CampaignJob(
                name="docstore-0.8",
                target=docstore,
                space=FaultSpace.product(
                    test=range(1, 61),
                    function=docstore.libc_functions(),
                    call=range(1, 6),
                ),
                iterations=60,
                seed=1,
                strategy_factory=RandomSearch,
            ),
        ]

    def test_campaign_runs_all_jobs(self):
        campaign = Campaign()
        for job in self._jobs():
            campaign.add(job)
        outcomes = campaign.run(report_top_n=3)
        assert [o.job.name for o in outcomes] == [
            "coreutils-8.1", "docstore-0.8",
        ]
        for outcome in outcomes:
            assert len(outcome.results) == 60
            assert outcome.report.explored == 60
            assert outcome.seconds > 0

    def test_verdicts(self):
        campaign = Campaign()
        for job in self._jobs():
            campaign.add(job)
        outcomes = campaign.run(report_top_n=2)
        # coreutils fails under injection but never crashes.
        assert outcomes[0].verdict == "FAILURES"
        assert outcomes[1].verdict in ("FAILURES", "CLEAN")

    def test_scorecard_renders(self):
        campaign = Campaign()
        for job in self._jobs():
            campaign.add(job)
        outcomes = campaign.run(report_top_n=2)
        text = Campaign.scorecard(outcomes).render()
        assert "coreutils-8.1" in text and "verdict" in text

    def test_duplicate_names_rejected(self):
        campaign = Campaign()
        jobs = self._jobs()
        campaign.add(jobs[0])
        with pytest.raises(ReportError):
            campaign.add(jobs[0])

    def test_empty_campaign_rejected(self):
        with pytest.raises(ReportError):
            Campaign().run()


class TestCampaignClusterMode:
    def test_cluster_job_produces_same_shape(self):
        from repro.sim.targets.coreutils import CoreutilsTarget

        target = CoreutilsTarget()
        job = CampaignJob(
            name="coreutils-clustered",
            target=target,
            space=FaultSpace.product(
                test=range(1, 30), function=target.libc_functions(),
                call=[0, 1, 2],
            ),
            iterations=60,
            seed=2,
            nodes=3,
        )
        outcomes = Campaign([job]).run(report_top_n=3)
        assert len(outcomes[0].results) >= 60
        assert outcomes[0].verdict == "FAILURES"

    def test_cluster_explorer_supports_environment_model(self):
        from repro.cluster import ClusterExplorer, LocalCluster, NodeManager
        from repro.core import IterationBudget, standard_impact
        from repro.quality import EnvironmentModel
        from repro.sim.targets.coreutils import CoreutilsTarget

        target = CoreutilsTarget()
        space = FaultSpace.product(
            test=range(1, 30), function=target.libc_functions(),
            call=[0, 1, 2],
        )
        model = EnvironmentModel({"malloc": 1.0})
        explorer = ClusterExplorer(
            LocalCluster([NodeManager("n", CoreutilsTarget())]),
            space, standard_impact(), RandomSearch(), IterationBudget(150),
            rng=4, environment=model,
        )
        results = explorer.run()
        nonzero = [t for t in results if t.impact > 0]
        assert nonzero
        assert all(
            t.fault.value("function") == "malloc" for t in nonzero
        )

    def test_invariant_violations_cross_the_wire(self):
        from repro.cluster import NodeManager, TestRequest
        from repro.sim.targets.coreutils import CoreutilsTarget

        manager = NodeManager("n", CoreutilsTarget())
        report = manager.execute(TestRequest(
            request_id=0, subspace="",
            scenario={"test": 27, "function": "stat", "call": 2},
        ))
        assert report.invariant_violations
        assert "data lost" in report.invariant_violations[0]
