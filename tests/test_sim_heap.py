"""Tests for the tracked heap: lifetimes, bounds, crash signals."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.crashes import AbortCrash, SegmentationFault
from repro.sim.heap import NULL, Heap


@pytest.fixture
def heap() -> Heap:
    return Heap()


class TestAllocation:
    def test_alloc_returns_nonnull_distinct_pointers(self, heap):
        a = heap.alloc(16)
        b = heap.alloc(16)
        assert a != NULL and b != NULL and a != b

    def test_alloc_zeroed(self, heap):
        ptr = heap.alloc(8)
        assert heap.load(ptr, 0, 8) == b"\x00" * 8

    def test_zero_size_alloc_is_valid(self, heap):
        ptr = heap.alloc(0)
        assert ptr != NULL

    def test_negative_size_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.alloc(-1)

    def test_bytes_in_use_accounting(self, heap):
        ptr = heap.alloc(100)
        assert heap.bytes_in_use == 100
        heap.free(ptr)
        assert heap.bytes_in_use == 0

    def test_live_allocations_counts(self, heap):
        a = heap.alloc(1)
        heap.alloc(1)
        assert heap.live_allocations == 2
        heap.free(a)
        assert heap.live_allocations == 1


class TestFree:
    def test_free_null_is_noop(self, heap):
        heap.free(NULL)  # must not raise

    def test_double_free_aborts(self, heap):
        ptr = heap.alloc(4)
        heap.free(ptr)
        with pytest.raises(AbortCrash):
            heap.free(ptr)

    def test_free_wild_pointer_segfaults(self, heap):
        with pytest.raises(SegmentationFault):
            heap.free(0xDEAD)

    def test_use_after_free_segfaults(self, heap):
        ptr = heap.alloc(4)
        heap.free(ptr)
        with pytest.raises(SegmentationFault):
            heap.load(ptr, 0, 1)


class TestAccess:
    def test_store_load_roundtrip(self, heap):
        ptr = heap.alloc(10)
        heap.store(ptr, 2, b"abc")
        assert heap.load(ptr, 2, 3) == b"abc"

    def test_null_deref_segfaults(self, heap):
        with pytest.raises(SegmentationFault) as excinfo:
            heap.store_byte(NULL, 0, 1)
        assert "NULL" in str(excinfo.value)

    def test_out_of_bounds_write_segfaults(self, heap):
        ptr = heap.alloc(4)
        with pytest.raises(SegmentationFault):
            heap.store(ptr, 2, b"abc")  # 2+3 > 4

    def test_out_of_bounds_read_segfaults(self, heap):
        ptr = heap.alloc(4)
        with pytest.raises(SegmentationFault):
            heap.load(ptr, 0, 5)

    def test_store_byte_is_one_byte(self, heap):
        ptr = heap.alloc(2)
        heap.store_byte(ptr, 1, 0x41)
        assert heap.load(ptr, 0, 2) == b"\x00A"

    def test_crash_carries_stack_snapshot(self):
        heap = Heap(stack_snapshot=lambda: ("main", "f"))
        with pytest.raises(SegmentationFault) as excinfo:
            heap.load(NULL, 0, 1)
        assert excinfo.value.stack == ("main", "f")


class TestStrings:
    def test_string_roundtrip(self, heap):
        ptr = heap.alloc(16)
        heap.store_string(ptr, "hello")
        assert heap.load_string(ptr) == "hello"

    def test_string_truncates_at_nul(self, heap):
        ptr = heap.alloc(16)
        heap.store(ptr, 0, b"ab\x00cd")
        assert heap.load_string(ptr) == "ab"

    def test_string_too_long_segfaults(self, heap):
        ptr = heap.alloc(3)
        with pytest.raises(SegmentationFault):
            heap.store_string(ptr, "long string")


class TestRealloc:
    def test_realloc_null_allocates(self, heap):
        ptr = heap.realloc(NULL, 8)
        assert ptr != NULL and heap.size_of(ptr) == 8

    def test_realloc_preserves_prefix(self, heap):
        ptr = heap.alloc(4)
        heap.store(ptr, 0, b"abcd")
        bigger = heap.realloc(ptr, 8)
        assert heap.load(bigger, 0, 4) == b"abcd"

    def test_realloc_shrink_truncates(self, heap):
        ptr = heap.alloc(4)
        heap.store(ptr, 0, b"abcd")
        smaller = heap.realloc(ptr, 2)
        assert heap.size_of(smaller) == 2
        assert heap.load(smaller, 0, 2) == b"ab"

    def test_realloc_frees_old_pointer(self, heap):
        ptr = heap.alloc(4)
        heap.realloc(ptr, 8)
        with pytest.raises(SegmentationFault):
            heap.load(ptr, 0, 1)


class TestHeapProperties:
    @given(st.lists(st.integers(min_value=0, max_value=64), max_size=30))
    def test_alloc_pointers_always_distinct(self, sizes):
        heap = Heap()
        pointers = [heap.alloc(size) for size in sizes]
        assert len(set(pointers)) == len(pointers)

    @given(st.binary(min_size=1, max_size=64))
    def test_store_load_identity(self, data):
        heap = Heap()
        ptr = heap.alloc(len(data))
        heap.store(ptr, 0, data)
        assert heap.load(ptr, 0, len(data)) == data

    @given(st.text(alphabet=st.characters(blacklist_characters="\x00",
                                          blacklist_categories=("Cs",)),
                   max_size=32))
    def test_string_identity(self, text):
        heap = Heap()
        ptr = heap.alloc(len(text.encode()) + 1)
        heap.store_string(ptr, text)
        assert heap.load_string(ptr) == text
