"""Model-based (stateful hypothesis) testing of the tracked heap.

The heap is what turns target bugs into observable crashes (NULL deref,
use-after-free, double free), so its bookkeeping must be exact.  The
state machine mirrors allocations against a plain-dict model and checks
content, accounting, and that every misuse raises the right signal.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.sim.crashes import AbortCrash, SegmentationFault
from repro.sim.heap import NULL, Heap

SIZES = st.integers(min_value=0, max_value=64)
PAYLOADS = st.binary(min_size=1, max_size=16)


class HeapModel(RuleBasedStateMachine):
    pointers = Bundle("pointers")

    def __init__(self) -> None:
        super().__init__()
        self.heap = Heap()
        self.live: dict[int, bytearray] = {}
        self.freed: set[int] = set()

    @rule(target=pointers, size=SIZES)
    def alloc(self, size):
        ptr = self.heap.alloc(size)
        assert ptr != NULL
        assert ptr not in self.live and ptr not in self.freed
        self.live[ptr] = bytearray(size)
        return ptr

    @rule(ptr=pointers)
    def free(self, ptr):
        if ptr in self.freed:
            with pytest.raises(AbortCrash):
                self.heap.free(ptr)
            return
        if ptr not in self.live:
            return  # consumed by a realloc rule
        self.heap.free(ptr)
        del self.live[ptr]
        self.freed.add(ptr)

    @rule(ptr=pointers, data=PAYLOADS, offset=st.integers(0, 80))
    def store(self, ptr, data, offset):
        if ptr in self.freed or ptr not in self.live:
            if ptr in self.freed:
                with pytest.raises(SegmentationFault):
                    self.heap.store(ptr, offset, data)
            return
        size = len(self.live[ptr])
        if offset + len(data) > size:
            with pytest.raises(SegmentationFault):
                self.heap.store(ptr, offset, data)
            return
        self.heap.store(ptr, offset, data)
        self.live[ptr][offset:offset + len(data)] = data

    @rule(ptr=pointers)
    def load_whole(self, ptr):
        if ptr in self.freed or ptr not in self.live:
            if ptr in self.freed:
                with pytest.raises(SegmentationFault):
                    self.heap.load(ptr, 0, 1)
            return
        size = len(self.live[ptr])
        assert self.heap.load(ptr, 0, size) == bytes(self.live[ptr])

    @rule(target=pointers, ptr=pointers, size=SIZES)
    def realloc(self, ptr, size):
        if ptr in self.freed or ptr not in self.live:
            return ptr
        old = bytes(self.live[ptr])
        new_ptr = self.heap.realloc(ptr, size)
        if new_ptr != ptr:
            del self.live[ptr]
            self.freed.add(ptr)
        keep = min(len(old), size)
        grown = bytearray(size)
        grown[:keep] = old[:keep]
        self.live[new_ptr] = grown
        self.freed.discard(new_ptr)
        return new_ptr

    @rule()
    def null_deref_always_segfaults(self):
        with pytest.raises(SegmentationFault):
            self.heap.load(NULL, 0, 1)
        with pytest.raises(SegmentationFault):
            self.heap.store_byte(NULL, 0, 1)

    @invariant()
    def accounting_matches_model(self):
        assert self.heap.live_allocations == len(self.live)
        assert self.heap.bytes_in_use == sum(
            len(data) for data in self.live.values()
        )

    @invariant()
    def contents_match_model(self):
        for ptr, expected in self.live.items():
            assert self.heap.load(ptr, 0, len(expected)) == bytes(expected)


HeapModel.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestHeapModel = HeapModel.TestCase
