"""Tests for the injection substrate: plans, profiles, plugins, analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import InjectionError
from repro.injection.callsite import profile_target
from repro.injection.injector import FaultInjector, InjectorRegistry
from repro.injection.libfi import LibFaultInjector
from repro.injection.plan import AtomicFault, InjectionPlan
from repro.injection.profiles import (
    default_fault,
    fault_profile,
    profiled_functions,
)
from repro.sim.errnos import Errno


class TestAtomicFault:
    def test_fires_exactly_once_by_default(self):
        fault = AtomicFault("read", 3, Errno.EINTR, -1)
        assert not fault.fires_at(2)
        assert fault.fires_at(3)
        assert not fault.fires_at(4)

    def test_persistent_fires_from_trigger_on(self):
        fault = AtomicFault("read", 3, Errno.EINTR, -1, persistent=True)
        assert not fault.fires_at(2)
        assert fault.fires_at(3) and fault.fires_at(99)

    def test_zero_call_number_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault("read", 0, Errno.EINTR, -1)

    def test_empty_function_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault("", 1, Errno.EINTR, -1)

    def test_format_matches_paper_fig5(self):
        fault = AtomicFault("malloc", 23, Errno.ENOMEM, 0)
        assert fault.format() == (
            "function malloc errno ENOMEM retval 0 callNumber 23"
        )

    def test_parse_fig5_example(self):
        fault = AtomicFault.parse(
            "function malloc errno ENOMEM retval 0 callNumber 23"
        )
        assert fault == AtomicFault("malloc", 23, Errno.ENOMEM, 0)

    def test_parse_missing_field_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault.parse("function malloc errno ENOMEM")

    def test_parse_unknown_errno_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault.parse("function f errno EWHAT retval 0 callNumber 1")

    def test_parse_bad_number_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault.parse("function f errno EIO retval x callNumber 1")

    @given(
        st.sampled_from(profiled_functions()),
        st.integers(min_value=1, max_value=1000),
        st.sampled_from([Errno.EIO, Errno.ENOMEM, Errno.EINTR]),
        st.sampled_from([-1, 0]),
        st.booleans(),
    )
    def test_format_parse_roundtrip(self, function, call, errno, retval, persistent):
        fault = AtomicFault(function, call, errno, retval, persistent)
        assert AtomicFault.parse(fault.format()) == fault


class TestInjectionPlan:
    def test_none_plan_is_empty(self):
        plan = InjectionPlan.none()
        assert plan.is_empty and len(plan) == 0
        assert plan.lookup("read", 1) is None

    def test_single_plan_lookup(self):
        plan = InjectionPlan.single("read", 2, Errno.EIO, -1)
        assert plan.lookup("read", 2) is not None
        assert plan.lookup("read", 1) is None
        assert plan.lookup("write", 2) is None

    def test_multi_fault_scenario(self):
        plan = InjectionPlan((
            AtomicFault("read", 3, Errno.EINTR, -1),
            AtomicFault("malloc", 7, Errno.ENOMEM, 0),
        ))
        assert plan.functions() == frozenset({"read", "malloc"})
        assert plan.lookup("malloc", 7).errno is Errno.ENOMEM

    def test_plan_text_roundtrip(self):
        plan = InjectionPlan((
            AtomicFault("read", 3, Errno.EINTR, -1),
            AtomicFault("malloc", 7, Errno.ENOMEM, 0, persistent=True),
        ))
        assert InjectionPlan.parse(plan.format()) == plan

    def test_parse_skips_comments_and_blanks(self):
        text = "# scenario\n\nfunction read errno EIO retval -1 callNumber 1\n"
        assert len(InjectionPlan.parse(text)) == 1


class TestProfiles:
    def test_known_function_profile(self):
        profile = fault_profile("read")
        assert Errno.EINTR in profile.errnos()
        assert profile.category == "file"

    def test_unknown_function_raises(self):
        with pytest.raises(InjectionError):
            fault_profile("nosuchfn")

    def test_default_fault_is_first_profile_entry(self):
        errno, retval = default_fault("malloc")
        assert errno is Errno.ENOMEM and retval == 0

    def test_category_filter(self):
        memory = profiled_functions("memory")
        assert "malloc" in memory and "read" not in memory

    def test_profiles_grouped_by_category(self):
        functions = profiled_functions()
        categories = [fault_profile(f).category for f in functions]
        # category changes must be monotone: once left, never revisited
        seen: list[str] = []
        for category in categories:
            if category not in seen:
                seen.append(category)
        assert categories == sorted(categories, key=seen.index)

    def test_pointer_functions_fail_with_null(self):
        for function in ("malloc", "fopen", "opendir", "strdup"):
            for errno, retval in fault_profile(function).errors:
                assert retval == 0, f"{function} should fail with NULL"


class TestLibFaultInjector:
    def setup_method(self):
        self.injector = LibFaultInjector()

    def test_full_attribute_plan(self):
        plan = self.injector.plan_for({
            "function": "read", "call": 3, "errno": "EINTR", "retval": -1,
        })
        fault = plan.faults[0]
        assert fault == AtomicFault("read", 3, Errno.EINTR, -1)

    def test_defaults_from_profile(self):
        plan = self.injector.plan_for({"function": "malloc", "call": 1})
        fault = plan.faults[0]
        assert fault.errno is Errno.ENOMEM and fault.retval == 0

    def test_call_zero_means_no_injection(self):
        plan = self.injector.plan_for({"function": "read", "call": 0})
        assert plan.is_empty

    def test_retval_paired_with_chosen_errno(self):
        plan = self.injector.plan_for(
            {"function": "read", "call": 1, "errno": "EIO"}
        )
        assert plan.faults[0].retval == -1

    def test_errno_outside_profile_rejected(self):
        with pytest.raises(InjectionError):
            self.injector.plan_for(
                {"function": "malloc", "call": 1, "errno": "EISDIR"}
            )

    def test_errno_enum_accepted(self):
        plan = self.injector.plan_for(
            {"function": "read", "call": 1, "errno": Errno.EINTR}
        )
        assert plan.faults[0].errno is Errno.EINTR

    def test_missing_function_rejected(self):
        with pytest.raises(InjectionError):
            self.injector.plan_for({"call": 1})

    def test_missing_call_rejected(self):
        with pytest.raises(InjectionError):
            self.injector.plan_for({"function": "read"})

    def test_negative_call_rejected(self):
        with pytest.raises(InjectionError):
            self.injector.plan_for({"function": "read", "call": -1})

    def test_callnumber_alias(self):
        plan = self.injector.plan_for({"function": "read", "callNumber": 2})
        assert plan.faults[0].call_number == 2

    def test_test_attribute_ignored(self):
        plan = self.injector.plan_for({"test": 9, "function": "read", "call": 1})
        assert len(plan) == 1


class TestInjectorRegistry:
    def test_register_and_get(self):
        registry = InjectorRegistry()
        injector = LibFaultInjector()
        registry.register(injector)
        assert registry.get("libfi") is injector
        assert "libfi" in registry and len(registry) == 1

    def test_duplicate_rejected(self):
        registry = InjectorRegistry()
        registry.register(LibFaultInjector())
        with pytest.raises(InjectionError):
            registry.register(LibFaultInjector())

    def test_unknown_name_rejected(self):
        with pytest.raises(InjectionError):
            InjectorRegistry().get("nope")

    def test_unnamed_injector_rejected(self):
        class Nameless(FaultInjector):
            def plan_for(self, attributes):
                return InjectionPlan.none()

        with pytest.raises(InjectionError):
            InjectorRegistry().register(Nameless())


class TestCallsiteAnalyzer:
    def test_profile_observes_coreutils_functions(self, coreutils):
        profile = profile_target(coreutils)
        assert "malloc" in profile.functions
        assert "opendir" in profile.functions
        assert profile.test_ids == tuple(range(1, 30))

    def test_call_counts_are_per_test_maxima(self, coreutils):
        profile = profile_target(coreutils)
        # ln-simple (test 12) makes exactly 2 malloc calls.
        assert profile.call_counts[12]["malloc"] == 2
        assert profile.max_calls["malloc"] >= 2

    def test_functions_called_by(self, coreutils):
        profile = profile_target(coreutils)
        ls_functions = profile.functions_called_by(2)  # ls-few-files
        assert "opendir" in ls_functions
        assert "rename" not in ls_functions

    def test_description_parses_back(self, coreutils):
        from repro.core.dsl import parse_fault_space

        profile = profile_target(coreutils)
        text = profile.fault_space_description(max_call=2,
                                               include_no_injection=True)
        space = parse_fault_space(text)
        assert space.size() > 0
        names = space.axis_names()
        assert names == ("test", "function", "call")

    def test_total_calls_sums_over_tests(self, coreutils):
        profile = profile_target(coreutils)
        assert profile.total_calls("malloc") >= 29  # every test copies args
