"""Tests for the §5 result-quality machinery."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReportError
from repro.injection.plan import InjectionPlan
from repro.quality.clustering import cluster_stacks, stack_similarity
from repro.quality.feedback import RedundancyFeedback
from repro.quality.levenshtein import levenshtein
from repro.quality.precision import measure_precision
from repro.quality.relevance import EnvironmentModel
from repro.sim.process import RunResult


def _reference_levenshtein(a, b):
    """Textbook full-matrix implementation, as the property oracle."""
    m, n = len(a), len(b)
    table = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(m + 1):
        table[i][0] = i
    for j in range(n + 1):
        table[0][j] = j
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            table[i][j] = min(table[i - 1][j] + 1, table[i][j - 1] + 1,
                              table[i - 1][j - 1] + cost)
    return table[m][n]


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein(("a", "b"), ("a", "b")) == 0

    def test_empty_vs_nonempty(self):
        assert levenshtein((), ("a", "b", "c")) == 3

    def test_substitution(self):
        assert levenshtein(("a", "b", "c"), ("a", "x", "c")) == 1

    def test_insertion_deletion(self):
        assert levenshtein(("a", "b"), ("a", "x", "b")) == 1
        assert levenshtein(("a", "x", "b"), ("a", "b")) == 1

    def test_strings_work_too(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_upper_bound_early_exit_overshoots_safely(self):
        distance = levenshtein("aaaaaaaa", "bbbbbbbb", upper_bound=2)
        assert distance > 2

    def test_upper_bound_exact_when_within(self):
        assert levenshtein("abcd", "abxd", upper_bound=3) == 1

    def test_length_gap_beyond_bound_short_circuits(self):
        assert levenshtein("a", "abcdefgh", upper_bound=3) > 3

    @given(st.text(alphabet="abc", max_size=12),
           st.text(alphabet="abc", max_size=12))
    def test_matches_reference(self, a, b):
        assert levenshtein(a, b) == _reference_levenshtein(a, b)

    @given(st.text(alphabet="ab", max_size=10),
           st.text(alphabet="ab", max_size=10))
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(alphabet="abc", max_size=8),
           st.text(alphabet="abc", max_size=8),
           st.text(alphabet="abc", max_size=8))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestStackSimilarity:
    def test_identical_is_one(self):
        assert stack_similarity(("main", "f"), ("main", "f")) == 1.0

    def test_disjoint_is_zero(self):
        assert stack_similarity(("a", "b"), ("x", "y")) == 0.0

    def test_partial(self):
        sim = stack_similarity(("main", "f", "g"), ("main", "f", "h"))
        assert sim == pytest.approx(2 / 3)

    def test_empty_stacks_identical(self):
        assert stack_similarity((), ()) == 1.0


class TestClustering:
    def test_identical_stacks_cluster_together(self):
        stacks = [("main", "f"), ("main", "f"), ("main", "g")]
        clusters = cluster_stacks(stacks, max_distance=0)
        assert clusters.cluster_count == 2
        assert clusters.cluster_of(0) == clusters.cluster_of(1)
        assert clusters.cluster_of(0) != clusters.cluster_of(2)

    def test_near_stacks_merge_within_threshold(self):
        stacks = [("main", "f", "g"), ("main", "f", "h")]
        assert cluster_stacks(stacks, max_distance=1).cluster_count == 1
        assert cluster_stacks(stacks, max_distance=0).cluster_count == 2

    def test_transitive_chaining(self):
        # a~b and b~c within threshold => one cluster even if a!~c.
        stacks = [("m", "a", "x"), ("m", "a", "y"), ("m", "b", "y")]
        clusters = cluster_stacks(stacks, max_distance=1)
        assert clusters.cluster_count == 1

    def test_none_stacks_are_singletons(self):
        stacks = [None, None, ("main",)]
        clusters = cluster_stacks(stacks, max_distance=5)
        assert clusters.cluster_count == 3

    def test_representatives_one_per_cluster(self):
        stacks = [("a",), ("a",), ("b",), ("b",)]
        clusters = cluster_stacks(stacks, max_distance=0)
        reps = clusters.representatives()
        assert len(reps) == 2
        assert {clusters.cluster_of(r) for r in reps} == {0, 1}

    def test_empty_input(self):
        clusters = cluster_stacks([])
        assert clusters.cluster_count == 0

    @given(st.lists(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("xy")),
        max_size=12,
    ))
    def test_assignment_is_total_and_dense(self, stacks):
        clusters = cluster_stacks(list(stacks), max_distance=1)
        assert len(clusters.assignment) == len(stacks)
        if stacks:
            ids = set(clusters.assignment)
            assert ids == set(range(clusters.cluster_count))


def _result_with_stack(stack) -> RunResult:
    return RunResult(
        test_id=1, test_name="t", plan=InjectionPlan.none(), exit_code=1,
        crash_kind=None, crash_message=None, crash_stack=None,
        injection_stack=stack, injected=stack is not None,
        coverage=frozenset(), steps=1,
    )


class TestRedundancyFeedback:
    def test_first_trace_keeps_full_fitness(self):
        feedback = RedundancyFeedback()
        assert feedback(None, _result_with_stack(("main", "f")), 10.0) == 10.0

    def test_exact_repeat_zeroes_fitness(self):
        feedback = RedundancyFeedback()
        feedback(None, _result_with_stack(("main", "f")), 10.0)
        assert feedback(None, _result_with_stack(("main", "f")), 10.0) == 0.0

    def test_similar_trace_discounts_linearly(self):
        feedback = RedundancyFeedback()
        feedback(None, _result_with_stack(("main", "f", "g")), 10.0)
        weighted = feedback(None, _result_with_stack(("main", "f", "h")), 10.0)
        assert weighted == pytest.approx(10.0 * (1 - 2 / 3))

    def test_no_injection_point_is_untouched(self):
        feedback = RedundancyFeedback()
        assert feedback(None, _result_with_stack(None), 7.0) == 7.0
        assert feedback.distinct_traces == 0

    def test_distinct_traces_counted(self):
        feedback = RedundancyFeedback()
        feedback(None, _result_with_stack(("a",)), 1.0)
        feedback(None, _result_with_stack(("b", "c")), 1.0)
        feedback(None, _result_with_stack(("a",)), 1.0)  # repeat
        assert feedback.distinct_traces == 2


class TestPrecision:
    def test_deterministic_fault_has_infinite_precision(self):
        report = measure_precision(
            lambda fault, trial: _result_with_stack(("main",)),
            fault=None,
            metric=lambda result: 5.0,
            trials=4,
        )
        assert report.deterministic
        assert math.isinf(report.precision)
        assert report.variance == 0.0

    def test_variable_fault_has_finite_precision(self):
        outcomes = {0: 0.0, 1: 10.0, 2: 0.0, 3: 10.0}

        def execute(fault, trial):
            return _result_with_stack(("main",) if outcomes[trial] else None)

        report = measure_precision(
            execute, None, metric=lambda r: 10.0 if r.injected else 0.0,
            trials=4,
        )
        assert not report.deterministic
        assert report.mean == 5.0
        assert report.precision == pytest.approx(1 / 25.0)

    def test_needs_two_trials(self):
        with pytest.raises(ValueError):
            measure_precision(lambda f, t: None, None, lambda r: 0.0, trials=1)

    def test_minidb_flaky_net_fault_varies_across_trials(self, minidb):
        """§5 end-to-end: the flaky recv retry gives finite precision."""
        from repro.injection.plan import InjectionPlan
        from repro.sim.errnos import Errno
        from repro.sim.process import run_test

        # A flaky connect test (i % 10 >= 7): test ids 8-10, 18-20...
        flaky_test = minidb.suite[8]
        plan = InjectionPlan.single("recv", 1, Errno.ECONNRESET, -1)
        report = measure_precision(
            lambda fault, trial: run_test(minidb, flaky_test, plan, trial=trial),
            fault=None,
            metric=lambda result: 5.0 if result.failed else 0.0,
            trials=8,
        )
        assert not report.deterministic

    def test_minidb_storage_fault_is_deterministic(self, minidb):
        from repro.injection.plan import InjectionPlan
        from repro.sim.errnos import Errno
        from repro.sim.process import run_test

        create_test = minidb.suite[51]
        plan = InjectionPlan.single("write", 2, Errno.ENOSPC, -1)
        report = measure_precision(
            lambda fault, trial: run_test(minidb, create_test, plan, trial=trial),
            fault=None,
            metric=lambda result: 5.0 if result.failed else 0.0,
            trials=5,
        )
        assert report.deterministic


class TestEnvironmentModel:
    def test_table6_model_normalizes(self):
        model = EnvironmentModel.from_groups([
            (["malloc"], 0.40),
            (["fopen", "read", "write", "close", "open"], 0.50),
            (["opendir", "chdir"], 0.10),
        ])
        assert model.weights["malloc"] == pytest.approx(0.40)
        assert model.weights["read"] == pytest.approx(0.10)
        assert sum(model.weights.values()) == pytest.approx(1.0)

    def test_relevance_of_fault(self):
        from repro.core.fault import Fault

        model = EnvironmentModel({"malloc": 1.0, "read": 3.0})
        assert model.relevance(Fault.of(function="read")) == pytest.approx(0.75)
        assert model.relevance(Fault.of(function="unknown")) == 0.0

    def test_weight_impact_scales_by_relative_relevance(self):
        from repro.core.fault import Fault

        model = EnvironmentModel({"a": 3.0, "b": 1.0})
        # mean modelled weight is 0.5; a=0.75 -> 1.5x, b=0.25 -> 0.5x
        assert model.weight_impact(Fault.of(function="a"), 10.0) == pytest.approx(15.0)
        assert model.weight_impact(Fault.of(function="b"), 10.0) == pytest.approx(5.0)

    def test_uniform_model_leaves_impact_unchanged(self):
        from repro.core.fault import Fault

        model = EnvironmentModel({"a": 1.0, "b": 1.0})
        assert model.weight_impact(Fault.of(function="a"), 8.0) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ReportError):
            EnvironmentModel({})
        with pytest.raises(ReportError):
            EnvironmentModel({"a": -1.0})
        with pytest.raises(ReportError):
            EnvironmentModel({"a": 0.0})
        with pytest.raises(ReportError):
            EnvironmentModel.from_groups([((), 1.0)])
