"""Tests for axes, faults, and fault spaces (§2 machinery)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.axis import Axis
from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace, Subspace
from repro.errors import FaultSpaceError


class TestAxis:
    def test_index_value_roundtrip(self):
        axis = Axis("f", ["open", "close", "read"])
        assert axis.index_of("close") == 1
        assert axis.value_at(1) == "close"
        assert len(axis) == 3

    def test_duplicate_values_rejected(self):
        with pytest.raises(FaultSpaceError):
            Axis("f", ["a", "a"])

    def test_empty_axis_rejected(self):
        with pytest.raises(FaultSpaceError):
            Axis("f", [])

    def test_unknown_value_rejected(self):
        with pytest.raises(FaultSpaceError):
            Axis("f", ["a"]).index_of("b")

    def test_out_of_range_index_rejected(self):
        with pytest.raises(FaultSpaceError):
            Axis("f", ["a"]).value_at(1)

    def test_from_range_inclusive(self):
        axis = Axis.from_range("call", 0, 2)
        assert axis.values == (0, 1, 2)

    def test_from_range_empty_rejected(self):
        with pytest.raises(FaultSpaceError):
            Axis.from_range("call", 5, 4)

    def test_from_subintervals(self):
        axis = Axis.from_subintervals("span", 1, 3)
        assert axis.values == ((1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3))

    def test_shuffled_preserves_value_set(self):
        axis = Axis("f", list(range(10)))
        shuffled = axis.shuffled(random.Random(1))
        assert set(shuffled.values) == set(axis.values)
        assert shuffled.values != axis.values  # overwhelmingly likely

    def test_restricted_keeps_order(self):
        axis = Axis("f", ["a", "b", "c", "d"])
        assert axis.restricted(["d", "b"]).values == ("b", "d")

    def test_restricted_unknown_value_rejected(self):
        with pytest.raises(FaultSpaceError):
            Axis("f", ["a"]).restricted(["z"])

    def test_equality_and_hash(self):
        assert Axis("f", [1, 2]) == Axis("f", [1, 2])
        assert Axis("f", [1, 2]) != Axis("f", [2, 1])
        assert hash(Axis("f", [1, 2])) == hash(Axis("f", [1, 2]))


class TestFault:
    def test_of_constructor_and_access(self):
        fault = Fault.of("sub", test=3, function="read")
        assert fault.value("test") == 3
        assert fault.get("missing") is None
        with pytest.raises(KeyError):
            fault.value("missing")

    def test_as_dict(self):
        fault = Fault.of(test=1, call=2)
        assert fault.as_dict() == {"test": 1, "call": 2}

    def test_replace_clones(self):
        fault = Fault.of(test=1, call=2)
        clone = fault.replace("call", 9)
        assert clone.value("call") == 9
        assert fault.value("call") == 2
        with pytest.raises(KeyError):
            fault.replace("nope", 1)

    def test_hashable_and_equal(self):
        assert Fault.of(a=1) == Fault.of(a=1)
        assert hash(Fault.of(a=1)) == hash(Fault.of(a=1))
        assert Fault.of(a=1) != Fault.of(a=2)

    def test_str_rendering(self):
        assert "test=3" in str(Fault.of(test=3))


@pytest.fixture
def space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 5),           # 4
        function=["open", "close", "read"],  # 3
        call=[0, 1, 2],             # 3
    )


class TestFaultSpace:
    def test_size(self, space):
        assert space.size() == 4 * 3 * 3

    def test_enumerate_is_complete_and_unique(self, space):
        faults = list(space.enumerate())
        assert len(faults) == space.size()
        assert len(set(faults)) == space.size()

    def test_contains(self, space):
        fault = next(space.enumerate())
        assert space.contains(fault)
        assert not space.contains(Fault.of(test=99, function="open", call=0))
        assert not space.contains(Fault.of("other", test=1))

    def test_random_fault_in_space(self, space):
        rng = random.Random(3)
        for _ in range(20):
            assert space.contains(space.random_fault(rng))

    def test_distance_is_manhattan(self, space):
        a = Fault.of(test=1, function="open", call=0)
        b = Fault.of(test=3, function="read", call=1)
        assert space.distance(a, b) == 2 + 2 + 1

    def test_distance_zero_to_self(self, space):
        fault = space.random_fault(1)
        assert space.distance(fault, fault) == 0

    def test_vicinity_radius_zero_is_self(self, space):
        fault = Fault.of(test=2, function="close", call=1)
        assert list(space.vicinity(fault, 0)) == [fault]

    def test_vicinity_respects_distance(self, space):
        fault = Fault.of(test=2, function="close", call=1)
        for neighbour in space.vicinity(fault, 2):
            assert space.distance(fault, neighbour) <= 2

    def test_vicinity_count_interior_point(self, space):
        # In 3D at an interior point with enough room, |vicinity(1)| = 7.
        fault = Fault.of(test=2, function="close", call=1)
        assert len(list(space.vicinity(fault, 1))) == 7

    def test_negative_radius_rejected(self, space):
        with pytest.raises(FaultSpaceError):
            list(space.vicinity(space.random_fault(1), -1))

    def test_axis_names(self, space):
        assert space.axis_names() == ("test", "function", "call")


class TestHoles:
    def test_holes_excluded_everywhere(self):
        space = FaultSpace.product(
            "sub",
            valid=lambda attrs: attrs["call"] != 1,
            call=[0, 1, 2],
            function=["a", "b"],
        )
        faults = list(space.enumerate())
        assert all(f.value("call") != 1 for f in faults)
        assert len(faults) == 4
        hole = Fault.of("sub", call=1, function="a")
        assert not space.contains(hole)
        rng = random.Random(0)
        for _ in range(20):
            assert space.subspaces[0].random_fault(rng).value("call") != 1

    def test_size_counts_grid_points_including_holes(self):
        space = FaultSpace.product(
            valid=lambda attrs: attrs["call"] == 0, call=[0, 1, 2]
        )
        # size() is the addressable grid; enumerate() skips the holes.
        assert space.size() == 3
        assert len(list(space.enumerate())) == 1

    def test_all_holes_sampling_fails_loudly(self):
        space = FaultSpace.product(valid=lambda attrs: False, call=[0, 1])
        with pytest.raises(FaultSpaceError):
            space.subspaces[0].random_fault(random.Random(1), max_tries=10)


class TestUnions:
    def test_union_of_subspaces(self):
        space = FaultSpace([
            Subspace("mem", [Axis("function", ["malloc"]), Axis("call", [1, 2])]),
            Subspace("io", [Axis("function", ["read"]), Axis("call", [1, 2, 3])]),
        ])
        assert space.size() == 2 + 3
        labels = {f.subspace for f in space.enumerate()}
        assert labels == {"mem", "io"}

    def test_cross_subspace_distance_rejected(self):
        space = FaultSpace([
            Subspace("a", [Axis("x", [1, 2])]),
            Subspace("b", [Axis("x", [1, 2])]),
        ])
        fa = Fault.of("a", x=1)
        fb = Fault.of("b", x=1)
        with pytest.raises(FaultSpaceError):
            space.distance(fa, fb)

    def test_duplicate_labels_rejected(self):
        sub = Subspace("a", [Axis("x", [1])])
        with pytest.raises(FaultSpaceError):
            FaultSpace([sub, Subspace("a", [Axis("x", [1])])])

    def test_random_sampling_weighted_by_size(self):
        space = FaultSpace([
            Subspace("big", [Axis("x", range(99))]),
            Subspace("small", [Axis("x", range(1))]),
        ])
        rng = random.Random(5)
        picks = [space.random_fault(rng).subspace for _ in range(300)]
        assert picks.count("big") > 250


class TestTransformations:
    def test_shuffle_axis_preserves_fault_set(self, space):
        shuffled = space.shuffle_axis("function", 7)
        assert set(shuffled.enumerate()) == set(space.enumerate())

    def test_shuffle_changes_geometry(self):
        space = FaultSpace.product(x=range(50), y=range(2))
        shuffled = space.shuffle_axis("x", 7)
        a = Fault.of(x=0, y=0)
        b = Fault.of(x=1, y=0)
        # Distance was 1; after shuffling it is overwhelmingly likely larger.
        assert shuffled.distance(a, b) != 1 or space.distance(a, b) == 1

    def test_shuffle_unknown_axis_rejected(self, space):
        with pytest.raises(FaultSpaceError):
            space.shuffle_axis("nope", 1)

    def test_restrict_axis_shrinks_space(self, space):
        trimmed = space.restrict_axis("function", ["open"])
        assert trimmed.size() == 4 * 1 * 3
        assert all(f.value("function") == "open" for f in trimmed.enumerate())

    def test_restrict_unknown_axis_rejected(self, space):
        with pytest.raises(FaultSpaceError):
            space.restrict_axis("nope", [])


class TestLinearDensity:
    def test_density_detects_structure(self):
        # Impact concentrated along the x axis at y=0: walking x at y=0 is
        # denser than the space average.
        space = FaultSpace.product(x=range(10), y=range(10))

        def impact(fault):
            return 1.0 if fault.value("y") == 0 else 0.0

        ridge_point = Fault.of(x=5, y=0)
        rho_x = space.relative_linear_density(ridge_point, "x", impact)
        rho_y = space.relative_linear_density(ridge_point, "y", impact)
        assert rho_x > 1.0
        assert rho_x > rho_y

    def test_density_uniform_impact_is_one(self):
        space = FaultSpace.product(x=range(5), y=range(5))
        rho = space.relative_linear_density(
            Fault.of(x=2, y=2), "x", lambda f: 1.0
        )
        assert rho == pytest.approx(1.0)

    def test_density_with_radius_restricts_reference(self):
        space = FaultSpace.product(x=range(30), y=range(30))

        def impact(fault):
            return 1.0 if fault.value("x") < 3 and fault.value("y") < 3 else 0.0

        inside = Fault.of(x=1, y=1)
        rho_local = space.relative_linear_density(inside, "x", impact, radius=2)
        assert rho_local > 0.0

    def test_density_zero_reference_returns_zero(self):
        space = FaultSpace.product(x=range(3), y=range(3))
        rho = space.relative_linear_density(
            Fault.of(x=1, y=1), "x", lambda f: 0.0
        )
        assert rho == 0.0

    def test_fig1_style_density_example(self, coreutils):
        """§2's worked example: vertical density at a failing fault > 1."""
        from repro.reporting import structure_map
        functions = list(coreutils.libc_functions())
        grid = structure_map(coreutils, functions, call_number=1)
        space = FaultSpace.product(
            test=range(1, 30), function=functions, call=[1]
        )

        def impact(fault):
            row = int(fault.value("test")) - 1
            col = functions.index(fault.value("function"))
            return 1.0 if grid[row][col] else 0.0

        # malloc fails nearly every test: density along the test axis at a
        # malloc fault should exceed 1 (the space average is much lower).
        fault = Fault.of(test=2, function="malloc", call=1)
        rho = space.relative_linear_density(fault, "test", impact)
        assert rho > 1.0


class TestFaultSpaceProperties:
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=4))
    def test_vicinity_symmetric(self, nx, ny, radius):
        space = FaultSpace.product(x=range(nx), y=range(ny))
        rng = random.Random(nx * 100 + ny)
        a = space.random_fault(rng)
        b = space.random_fault(rng)
        in_a = b in set(space.vicinity(a, radius))
        in_b = a in set(space.vicinity(b, radius))
        assert in_a == in_b

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=2, max_value=8))
    def test_distance_triangle_inequality(self, nx, ny):
        space = FaultSpace.product(x=range(nx), y=range(ny))
        rng = random.Random(nx * 31 + ny)
        a, b, c = (space.random_fault(rng) for _ in range(3))
        assert space.distance(a, c) <= space.distance(a, b) + space.distance(b, c)

    @given(st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=5))
    def test_enumeration_matches_size(self, nx, ny, nz):
        space = FaultSpace.product(x=range(nx), y=range(ny), z=range(nz))
        assert len(list(space.enumerate())) == space.size()
