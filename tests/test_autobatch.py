"""Tests for adaptive batch sizing (cluster/autobatch.py) and its
``--batch-size auto`` surface on the explorer and CLI."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AdaptiveBatchController,
    ClusterExplorer,
    LocalCluster,
    NodeManager,
)
from repro.core.checkpoint import history_digest
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.search import strategy_by_name
from repro.core.targets import IterationBudget
from repro.errors import ClusterError
from repro.obs import MetricsRegistry
from repro.sim.targets.minidb import MiniDbTarget


class TestController:
    def test_starts_small_and_width_aligned(self):
        controller = AdaptiveBatchController(4)
        assert controller.batch_size() == 8  # 2x width: a cheap probe
        assert controller.batch_size() % 4 == 0

    def test_grows_toward_the_target_round_duration(self):
        controller = AdaptiveBatchController(4, target_round_seconds=1.0)
        size = controller.batch_size()
        # Fast rounds (1 ms/test): the ideal batch is 1000, growth is
        # bounded to 2x per round, so sizes double until the cap.
        seen = []
        for _ in range(12):
            size = controller.observe(size, size * 0.001)
            seen.append(size)
        assert seen[0] == 16  # 8 -> 16: one growth step, not a jump
        assert size == controller.max_batch  # 64 * width = 256 < 1000
        assert all(s % 4 == 0 for s in seen)

    def test_shrinks_when_tests_get_slow(self):
        controller = AdaptiveBatchController(2, target_round_seconds=0.1)
        size = controller.batch_size()
        for _ in range(8):
            size = controller.observe(size, size * 0.5)  # 0.5 s/test!
        assert size == controller.min_batch

    def test_bounded_move_per_round(self):
        controller = AdaptiveBatchController(1, target_round_seconds=10.0)
        first = controller.batch_size()
        nxt = controller.observe(first, first * 1e-6)  # absurdly fast
        assert nxt <= first * controller.growth  # no 10^7 jump

    def test_degenerate_observations_are_ignored(self):
        controller = AdaptiveBatchController(4)
        size = controller.batch_size()
        assert controller.observe(0, 1.0) == size
        assert controller.observe(8, 0.0) == size
        assert controller.observe(-3, -1.0) == size
        assert controller.rounds == 0
        assert controller.per_test_seconds is None

    def test_ewma_smooths_noisy_latency(self):
        controller = AdaptiveBatchController(1, smoothing=0.5)
        controller.observe(10, 10 * 0.010)
        assert controller.per_test_seconds == pytest.approx(0.010)
        controller.observe(10, 10 * 0.030)  # one noisy round
        assert controller.per_test_seconds == pytest.approx(0.020)

    def test_explicit_bounds_are_honoured(self):
        controller = AdaptiveBatchController(
            4, min_batch=8, max_batch=32, target_round_seconds=100.0
        )
        size = controller.batch_size()
        for _ in range(10):
            size = controller.observe(size, size * 1e-6)
        assert size == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 0},
            {"width": 2, "target_round_seconds": 0.0},
            {"width": 2, "growth": 1.0},
            {"width": 2, "smoothing": 0.0},
            {"width": 2, "smoothing": 1.5},
            {"width": 2, "min_batch": 0},
            {"width": 2, "min_batch": 8, "max_batch": 4},
        ],
    )
    def test_bad_configuration_is_a_cluster_error(self, kwargs):
        width = kwargs.pop("width")
        with pytest.raises(ClusterError):
            AdaptiveBatchController(width, **kwargs)

    def test_stats_and_describe(self):
        controller = AdaptiveBatchController(2)
        assert "unmeasured" in controller.describe()
        controller.observe(4, 0.004)
        stats = controller.stats()
        assert stats["rounds"] == 1
        assert stats["width"] == 2
        assert stats["batch_size"] == controller.batch_size()
        assert "ms/test" in controller.describe()

    def test_metrics_gauges(self):
        controller = AdaptiveBatchController(2)
        registry = MetricsRegistry()
        controller.bind_metrics(registry)
        controller.bind_metrics(registry)  # idempotent
        controller.observe(8, 0.008)
        gauges = registry.snapshot()["gauges"]
        assert gauges["fabric.batch.size"] == controller.batch_size()
        assert gauges["fabric.batch.per_test_seconds"] == \
            pytest.approx(0.001)


def _explore(minidb, **kwargs):
    space = FaultSpace.product(
        test=range(1, len(minidb.suite) + 1),
        function=minidb.libc_functions(),
        call=range(0, 3),
    )
    managers = [NodeManager(f"m{i}", minidb) for i in range(2)]
    explorer = ClusterExplorer(
        LocalCluster(managers), space, standard_impact(),
        strategy_by_name("fitness"), IterationBudget(60), rng=5, **kwargs,
    )
    return explorer, explorer.run()


class TestExplorerIntegration:
    def test_auto_runs_a_campaign_and_adapts(self, minidb):
        explorer, reports = _explore(minidb, batch_size="auto")
        assert len(list(reports)) == 60
        assert explorer.autobatch is not None
        assert explorer.autobatch.rounds >= 1
        # The simulated target is fast: the controller must have grown
        # past its opening probe size.
        assert explorer.batch_size > 2 * len(explorer.cluster)

    def test_fixed_batch_size_leaves_the_controller_off(self, minidb):
        explorer, reports = _explore(minidb, batch_size=6)
        assert explorer.autobatch is None
        assert explorer.batch_size == 6
        assert len(list(reports)) == 60

    def test_auto_is_deterministic_for_a_fixed_trajectory(self, minidb):
        # Batch sizes depend on wall-clock, so auto trades replayability
        # for speed — but identical fixed-size runs must stay identical,
        # proving auto changed only scheduling, not per-test outcomes.
        _, first = _explore(minidb, batch_size=8)
        _, second = _explore(minidb, batch_size=8)
        assert history_digest(list(first)) == history_digest(list(second))

    def test_auto_refuses_checkpointing(self, minidb, tmp_path):
        space = FaultSpace.product(
            test=range(1, 3), function=minidb.libc_functions(), call=[0]
        )
        with pytest.raises(ClusterError, match="auto"):
            ClusterExplorer(
                LocalCluster([NodeManager("m", minidb)]), space,
                standard_impact(), strategy_by_name("fitness"),
                IterationBudget(4), batch_size="auto",
                checkpoint_path=tmp_path / "c.json",
            )

    def test_unknown_batch_size_string_is_refused(self, minidb):
        space = FaultSpace.product(
            test=range(1, 3), function=minidb.libc_functions(), call=[0]
        )
        with pytest.raises(ClusterError):
            ClusterExplorer(
                LocalCluster([NodeManager("m", minidb)]), space,
                standard_impact(), strategy_by_name("fitness"),
                IterationBudget(4), batch_size="huge",
            )


class TestCliSurface:
    def test_batch_size_auto_parses(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--target", "minidb", "--iterations", "24",
            "--fabric", "threads", "--nodes", "2",
            "--batch-size", "auto", "--seed", "3",
        ])
        assert code in (0, 1)  # campaign verdict, not a usage error
        out = capsys.readouterr().out
        assert "tests" in out.lower() or out  # it ran and reported

    def test_batch_size_auto_needs_a_parallel_fabric(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--target", "minidb", "--iterations", "8",
            "--fabric", "serial", "--batch-size", "auto",
        ])
        assert code == 2
        assert "parallel fabric" in capsys.readouterr().out

    def test_batch_size_auto_refuses_checkpointing(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "run", "--target", "minidb", "--iterations", "8",
            "--fabric", "threads", "--batch-size", "auto",
            "--checkpoint", str(tmp_path / "c.json"),
        ])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().out

    def test_batch_size_rejects_garbage(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "run", "--target", "minidb", "--iterations", "8",
                "--batch-size", "sometimes",
            ])
