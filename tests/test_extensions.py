"""Tests for the extension features: range faults, multi-fault scenarios,
adaptive sigma, slowdown impact, the §6.3 report, and CLI additions."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    SlowdownImpact,
    TargetRunner,
    measure_step_baseline,
    standard_impact,
)
from repro.core.fault import Fault
from repro.errors import InjectionError, ReportError, SearchError
from repro.injection.libfi import LibFaultInjector, MultiLibFaultInjector, atomic_for
from repro.injection.plan import AtomicFault, InjectionPlan
from repro.quality import build_report
from repro.sim.errnos import Errno
from repro.sim.filesystem import SimFilesystem
from repro.sim.libc import SimLibc
from repro.sim.process import run_test


class TestRangeFaults:
    def test_until_fires_across_window(self):
        fault = AtomicFault("read", 3, Errno.EIO, -1, until=5)
        assert not fault.fires_at(2)
        assert fault.fires_at(3) and fault.fires_at(4) and fault.fires_at(5)
        assert not fault.fires_at(6)

    def test_until_before_call_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault("read", 5, Errno.EIO, -1, until=3)

    def test_until_with_persistent_rejected(self):
        with pytest.raises(InjectionError):
            AtomicFault("read", 1, Errno.EIO, -1, persistent=True, until=3)

    def test_format_parse_roundtrip_with_until(self):
        fault = AtomicFault("read", 2, Errno.EIO, -1, until=7)
        assert AtomicFault.parse(fault.format()) == fault

    def test_libc_honours_range_fault(self):
        libc = SimLibc(SimFilesystem())
        libc.set_plan(InjectionPlan((
            AtomicFault("getrlimit", 2, Errno.EINVAL, -1, until=3),
        )))
        assert libc.getrlimit() > 0     # call 1
        assert libc.getrlimit() == -1   # call 2
        assert libc.getrlimit() == -1   # call 3
        assert libc.getrlimit() > 0     # call 4

    def test_injector_accepts_tuple_call_value(self):
        plan = LibFaultInjector().plan_for(
            {"function": "read", "call": (2, 4)}
        )
        fault = plan.faults[0]
        assert fault.call_number == 2 and fault.until == 4

    def test_tuple_starting_at_zero_is_no_injection(self):
        plan = LibFaultInjector().plan_for(
            {"function": "read", "call": (0, 4)}
        )
        assert plan.is_empty

    def test_subinterval_axis_drives_range_faults(self, coreutils):
        """The DSL's < lo , hi > axis end-to-end: a (1, 2) sub-interval
        fails both malloc calls in an ln test."""
        from repro.core.axis import Axis

        runner = TargetRunner(coreutils)
        fault = Fault.of(test=12, function="malloc", call=(1, 2))
        result = runner(fault)
        assert result.failed
        assert result.plan.faults[0].until == 2
        # the axis type generating such values:
        axis = Axis.from_subintervals("call", 1, 2)
        assert (1, 2) in axis.values


class TestAtomicFor:
    def test_defaults_resolved(self):
        fault = atomic_for("malloc", 1)
        assert fault.errno is Errno.ENOMEM and fault.retval == 0

    def test_none_for_call_zero(self):
        assert atomic_for("malloc", 0) is None

    def test_missing_function_rejected(self):
        with pytest.raises(InjectionError):
            atomic_for(None, 1)

    def test_bad_tuple_rejected(self):
        with pytest.raises(InjectionError):
            atomic_for("read", (1, 2, 3))


class TestMultiFaultInjector:
    def setup_method(self):
        self.injector = MultiLibFaultInjector()

    def test_suffix_groups_build_two_faults(self):
        plan = self.injector.plan_for({
            "test": 21,
            "function_a": "rename", "call_a": 1, "errno_a": "EXDEV",
            "function_b": "write", "call_b": 1, "errno_b": "ENOSPC",
        })
        assert len(plan) == 2
        assert plan.lookup("rename", 1).errno is Errno.EXDEV
        assert plan.lookup("write", 1).errno is Errno.ENOSPC

    def test_zero_call_group_contributes_nothing(self):
        plan = self.injector.plan_for({
            "function_a": "rename", "call_a": 1,
            "function_b": "write", "call_b": 0,
        })
        assert len(plan) == 1

    def test_unsuffixed_attributes_also_work(self):
        plan = self.injector.plan_for({"function": "read", "call": 2})
        assert len(plan) == 1

    def test_mixed_plain_and_suffixed(self):
        plan = self.injector.plan_for({
            "function": "read", "call": 1,
            "function_x": "malloc", "call_x": 3,
        })
        assert plan.functions() == frozenset({"read", "malloc"})

    def test_overlapping_same_function_rejected(self):
        with pytest.raises(InjectionError):
            self.injector.plan_for({
                "function_a": "read", "call_a": (1, 5),
                "function_b": "read", "call_b": 3,
            })

    def test_disjoint_same_function_allowed(self):
        plan = self.injector.plan_for({
            "function_a": "read", "call_a": 1,
            "function_b": "read", "call_b": 5,
        })
        assert len(plan) == 2

    def test_empty_scenario_gives_empty_plan(self):
        assert self.injector.plan_for({"test": 3}).is_empty

    def test_two_fault_scenario_reaches_deep_recovery(self, coreutils):
        """mv's copy-fallback write-failure path needs two faults."""
        runner = TargetRunner(coreutils, injector=MultiLibFaultInjector())
        fault = Fault.of(
            test=21,
            function_a="rename", call_a=1, errno_a="EXDEV",
            function_b="write", call_b=1,
        )
        result = runner(fault)
        assert result.failed
        assert "mv.copy.abort" in result.coverage

    def test_multi_fault_exploration_covers_more_recovery(self, coreutils):
        """Exploring (rename-fault x write/close-fault) combinations
        reaches recovery blocks single-fault exploration cannot."""
        space = FaultSpace.product(
            test=range(21, 30),
            function_a=["rename"], call_a=[0, 1],
            function_b=["open", "read", "write", "close", "unlink"],
            call_b=[0, 1, 2],
        )
        session = ExplorationSession(
            runner=TargetRunner(coreutils, injector=MultiLibFaultInjector()),
            space=space,
            metric=standard_impact(),
            strategy=FitnessGuidedSearch(initial_batch=15),
            target=IterationBudget(min(120, space.size())),
            rng=5,
        )
        results = session.run()
        covered = results.coverage_union()
        assert "mv.copy.abort" in covered  # unreachable with single faults


class TestAdaptiveSigma:
    def test_disabled_by_default(self):
        strategy = FitnessGuidedSearch()
        space = FaultSpace.product(x=range(20), y=range(20))
        strategy.bind(space, random.Random(1))
        assert set(strategy.sigma_factors().values()) == {strategy.sigma_factor}

    def test_invalid_bounds_rejected(self):
        with pytest.raises(SearchError):
            FitnessGuidedSearch(adaptive_sigma=True, sigma_bounds=(0.5, 0.1))

    def test_sigma_adapts_during_search(self):
        from repro.injection.plan import InjectionPlan
        from repro.sim.process import RunResult

        space = FaultSpace.product(x=range(40), y=range(40))
        strategy = FitnessGuidedSearch(initial_batch=10, adaptive_sigma=True)
        strategy.bind(space, random.Random(3))
        blank = RunResult(
            test_id=1, test_name="", plan=InjectionPlan.none(), exit_code=0,
            crash_kind=None, crash_message=None, crash_stack=None,
            injection_stack=None, injected=True, coverage=frozenset(),
            steps=1,
        )
        for _ in range(150):
            fault = strategy.propose()
            if fault is None:
                break
            score = 10.0 if fault.value("x") < 8 else 0.0
            strategy.observe(fault, score, blank)
        factors = strategy.sigma_factors()
        low, high = strategy.sigma_bounds
        assert all(low <= f <= high for f in factors.values())
        assert any(f != strategy.sigma_factor for f in factors.values())

    def test_adaptive_still_finds_structure(self):
        """Adaptive sigma must not break the core guarantee."""
        from tests.test_core_search import drive

        space = FaultSpace.product(x=range(40), y=range(40))
        guided = drive(
            FitnessGuidedSearch(initial_batch=15, adaptive_sigma=True),
            space, 200, 2,
        )
        hits = sum(1 for _, s in guided if s > 0)
        assert hits > 10


class TestSlowdownImpact:
    def test_baseline_measurement(self, coreutils):
        baseline = measure_step_baseline(coreutils)
        assert set(baseline) == set(coreutils.suite.ids)
        assert all(v > 0 for v in baseline.values())

    def test_no_slowdown_scores_zero(self, coreutils):
        baseline = measure_step_baseline(coreutils)
        metric = SlowdownImpact(baseline)
        result = run_test(coreutils, coreutils.suite[1])
        assert metric.score(result) == 0.0

    def test_retry_inducing_fault_scores_positive(self, coreutils):
        """rename-EXDEV forces mv through the (slower) copy fallback."""
        baseline = measure_step_baseline(coreutils)
        metric = SlowdownImpact(baseline, scale=10.0)
        runner = TargetRunner(coreutils)
        result = runner(Fault.of(test=29, function="rename", call=1,
                                 errno="EXDEV"))
        assert not result.failed  # recovery works...
        assert metric.score(result) > 0.0  # ...but costs extra work

    def test_unknown_test_scores_zero(self):
        metric = SlowdownImpact({1: 100})
        from tests.test_core_components import make_result

        result = make_result()
        result = type(result)(**{**result.__dict__, "test_id": 99})
        assert metric.score(result) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowdownImpact({})
        with pytest.raises(ValueError):
            SlowdownImpact({1: 0})


class TestExplorationReport:
    @pytest.fixture(scope="class")
    def report(self, coreutils):
        runner = TargetRunner(coreutils)
        space = FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        )
        results = ExplorationSession(
            runner, space, standard_impact(),
            FitnessGuidedSearch(initial_batch=10),
            IterationBudget(120), rng=6,
        ).run()
        return build_report(results, runner, "coreutils",
                            strategy_name="fitness", top_n=8)

    def test_counts_match_exploration(self, report):
        assert report.explored == 120
        assert report.failed > 0

    def test_top_faults_ranked(self, report):
        impacts = [r.executed.impact for r in report.reported]
        assert impacts == sorted(impacts, reverse=True)
        assert len(report.reported) <= 8

    def test_precision_measured_for_every_reported_fault(self, report):
        for reported in report.reported:
            assert reported.precision is not None
            # coreutils faults are deterministic
            assert math.isinf(reported.precision.precision)

    def test_one_replay_script_per_cluster(self, report):
        assert len(report.replay_scripts) == report.cluster_count
        for source in report.replay_scripts.values():
            compile(source, "<replay>", "exec")

    def test_render_mentions_key_fields(self, report):
        text = report.render()
        assert "coreutils" in text and "fitness" in text
        assert "top faults by severity" in text
        assert "deterministic" in text

    def test_relevance_column_when_model_given(self, coreutils):
        from repro.quality import EnvironmentModel

        runner = TargetRunner(coreutils)
        space = FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        )
        results = ExplorationSession(
            runner, space, standard_impact(),
            FitnessGuidedSearch(initial_batch=10),
            IterationBudget(60), rng=6,
        ).run()
        model = EnvironmentModel({"malloc": 1.0})
        report = build_report(results, runner, "coreutils",
                              environment=model, top_n=4)
        assert report.relevance_modelled
        assert "relevance" in report.render()

    def test_empty_results_rejected(self, coreutils):
        from repro.core.results import ResultSet

        with pytest.raises(ReportError):
            build_report(ResultSet([]), TargetRunner(coreutils), "x")

    def test_bad_top_n_rejected(self, report, coreutils):
        from repro.core.results import ResultSet

        with pytest.raises(ReportError):
            build_report(ResultSet([report.reported[0].executed]),
                         TargetRunner(coreutils), "x", top_n=0)


class TestCliExtensions:
    def test_map_command(self, capsys):
        from repro.cli import main

        assert main(["map", "--target", "coreutils", "--tests", "1,12"]) == 0
        out = capsys.readouterr().out
        assert "structure map" in out and "#" in out

    def test_report_command_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "report"
        assert main([
            "report", "--target", "coreutils", "--iterations", "50",
            "--seed", "2", "--top", "3", "--trials", "3",
            "--out", str(out_dir),
        ]) == 0
        assert (out_dir / "report.txt").exists()
        assert list(out_dir.glob("replay_*.py"))

    def test_run_with_feedback_flag(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--target", "coreutils", "--iterations", "30",
            "--seed", "1", "--feedback",
        ]) == 0

    def test_feedback_requires_fitness(self, capsys):
        from repro.cli import main

        assert main([
            "run", "--target", "coreutils", "--strategy", "random",
            "--iterations", "5", "--feedback",
        ]) == 2


class TestSeededSearch:
    """§4: static-analysis seeding of the initial generation phase."""

    def test_seeds_proposed_first(self, coreutils):
        from repro.core.fault import Fault

        space = FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        )
        seeds = (
            Fault.of(test=12, function="malloc", call=1),
            Fault.of(test=2, function="opendir", call=1),
        )
        strategy = FitnessGuidedSearch(initial_batch=5, initial_seeds=seeds)
        strategy.bind(space, random.Random(1))
        assert strategy.propose() == seeds[0]
        assert strategy.propose() == seeds[1]

    def test_invalid_seeds_skipped(self, coreutils):
        from repro.core.fault import Fault

        space = FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        )
        bogus = Fault.of(test=999, function="malloc", call=1)
        good = Fault.of(test=1, function="malloc", call=1)
        strategy = FitnessGuidedSearch(initial_seeds=(bogus, good))
        strategy.bind(space, random.Random(1))
        assert strategy.propose() == good

    def test_suggest_seeds_ranks_memory_first(self, coreutils):
        from repro.injection.callsite import profile_target, suggest_seeds

        profile = profile_target(coreutils)
        seeds = suggest_seeds(profile)
        assert seeds[0].value("function") in ("malloc", "realloc")
        # Every seed is a live injection (call count verified by profile).
        runner = TargetRunner(coreutils)
        for seed in seeds[:5]:
            assert runner(seed).injected

    def test_seeded_search_finds_failures_sooner(self, coreutils):
        """The §4 claim: seeding speeds the early phase of the search."""
        from repro.injection.callsite import profile_target, suggest_seeds

        profile = profile_target(coreutils)
        seeds = suggest_seeds(profile)
        space = FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        )

        def early_failures(strategy, seed):
            results = ExplorationSession(
                TargetRunner(coreutils), space, standard_impact(),
                strategy, IterationBudget(40), rng=seed,
            ).run()
            return results.failed_count()

        seeded = sum(
            early_failures(
                FitnessGuidedSearch(initial_batch=20, initial_seeds=seeds), s)
            for s in (1, 2, 3)
        )
        unseeded = sum(
            early_failures(FitnessGuidedSearch(initial_batch=20), s)
            for s in (1, 2, 3)
        )
        assert seeded > unseeded


class TestResourceLeaks:
    """The resource-leak impact extension: silent leaks are scorable."""

    def test_baseline_is_clean_for_coreutils(self, coreutils):
        from repro.core import measure_leak_baseline

        baseline = measure_leak_baseline(coreutils)
        # The utilities clean up after themselves when nothing fails.
        assert all(fds == 0 for fds, _ in baseline.values())

    def test_injected_close_failure_leaks_fd_silently(self, minidb):
        """MiniDB's insert survives a failed close — but leaks the fd."""
        from repro.core import ResourceLeakImpact

        runner = TargetRunner(minidb)
        result = runner(Fault.of(test=201, function="close", call=3,
                                 errno="EINTR"))
        assert not result.failed          # the test passes...
        assert result.open_fds == 1       # ...but a descriptor leaked
        assert ResourceLeakImpact().score(result) > 0

    def test_boot_failure_leaks_errmsg_heap(self, minidb):
        runner = TargetRunner(minidb)
        result = runner(Fault.of(test=201, function="fopen", call=1))
        assert result.failed
        assert result.leaked_heap_bytes > 0

    def test_clean_run_scores_zero(self, minidb):
        from repro.core import ResourceLeakImpact

        result = run_test(minidb, minidb.suite[201])
        assert ResourceLeakImpact().score(result) == 0.0

    def test_baseline_subtraction(self):
        from repro.core import ResourceLeakImpact
        from tests.test_core_components import make_result

        result = make_result()
        leaky = type(result)(**{**result.__dict__, "open_fds": 3,
                                "leaked_heap_bytes": 100})
        metric = ResourceLeakImpact(fd_points=5.0, byte_points=0.01,
                                    baseline={1: (2, 50)})
        assert metric.score(leaky) == pytest.approx(5.0 + 0.5)

    def test_leak_guided_exploration_finds_silent_leaks(self, minidb):
        """An exploration scored purely by leaks surfaces passing-but-
        leaky faults that failure-oriented metrics ignore."""
        from repro.core import ResourceLeakImpact

        space = FaultSpace.product(
            test=range(201, 251),     # insert-group tests
            function=["close", "open", "write", "read"],
            call=range(1, 12),
        )
        session = ExplorationSession(
            runner=TargetRunner(minidb),
            space=space,
            metric=ResourceLeakImpact(),
            strategy=FitnessGuidedSearch(initial_batch=15),
            target=IterationBudget(150),
            rng=2,
        )
        results = session.run()
        silent_leaks = [
            t for t in results
            if not t.failed and t.result.open_fds > 0
        ]
        assert silent_leaks, "expected at least one passing-but-leaky fault"
        assert all(t.impact > 0 for t in silent_leaks)


class TestEvictionPolicy:
    def test_strict_min_always_drops_weakest(self):
        import random as _random

        from repro.core.fault import Fault
        from repro.core.queues import Candidate, PriorityQueue

        queue = PriorityQueue(3, _random.Random(1), eviction="strict-min")
        for i, fitness in enumerate((5.0, 1.0, 9.0)):
            queue.add(Candidate(Fault.of(a=i), fitness, fitness))
        queue.add(Candidate(Fault.of(a="new"), 4.0, 4.0))
        fitnesses = sorted(c.fitness for c in queue)
        assert fitnesses == [4.0, 5.0, 9.0]  # the 1.0 candidate went

    def test_unknown_policy_rejected(self):
        import random as _random

        from repro.core.queues import PriorityQueue
        from repro.errors import SearchError

        with pytest.raises(SearchError):
            PriorityQueue(3, _random.Random(1), eviction="lifo")

    def test_strategy_forwards_policy(self):
        space = FaultSpace.product(x=range(10), y=range(10))
        strategy = FitnessGuidedSearch(eviction="strict-min")
        strategy.bind(space, random.Random(1))
        assert strategy._queue().eviction == "strict-min"
