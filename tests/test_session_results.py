"""Tests for exploration sessions, search targets, and result sets."""

from __future__ import annotations

import pytest

from repro.core.fault import Fault
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.results import ExecutedTest, ResultSet
from repro.core.runner import TargetRunner
from repro.core.search import FitnessGuidedSearch, RandomSearch
from repro.core.session import ExplorationSession
from repro.core.targets import (
    AnyOf,
    CollectMatching,
    ImpactThreshold,
    IterationBudget,
    TimeBudget,
)
from repro.errors import SearchError, TargetError
from repro.injection.plan import InjectionPlan
from repro.sim.process import RunResult


def coreutils_space(coreutils) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30),
        function=coreutils.libc_functions(),
        call=[0, 1, 2],
    )


def make_session(coreutils, strategy=None, target=None, **kwargs):
    return ExplorationSession(
        runner=TargetRunner(coreutils),
        space=coreutils_space(coreutils),
        metric=standard_impact(),
        strategy=strategy or RandomSearch(),
        target=target or IterationBudget(30),
        rng=kwargs.pop("rng", 1),
        **kwargs,
    )


class TestSearchTargets:
    def _executed(self, impacts):
        return [
            ExecutedTest(i, Fault.of(a=i), _dummy_result(), impact, impact)
            for i, impact in enumerate(impacts)
        ]

    def test_iteration_budget(self):
        target = IterationBudget(3)
        assert not target.done(self._executed([0, 0]))
        assert target.done(self._executed([0, 0, 0]))
        with pytest.raises(ValueError):
            IterationBudget(0)

    def test_impact_threshold(self):
        target = ImpactThreshold(count=2, min_impact=5.0)
        assert not target.done(self._executed([6.0, 1.0]))
        assert target.done(self._executed([6.0, 1.0, 5.0]))

    def test_collect_matching(self):
        target = CollectMatching(lambda t: t.impact > 0, expected=2)
        assert not target.done(self._executed([1.0, 0.0]))
        assert target.done(self._executed([1.0, 0.0, 2.0]))
        assert len(target.matches(self._executed([1.0, 0.0, 2.0]))) == 2

    def test_time_budget(self):
        clock = iter([0.0, 1.0, 5.0, 11.0]).__next__
        target = TimeBudget(10.0, clock=clock)
        assert not target.done([])   # starts the clock at 0
        assert not target.done([])   # 1.0
        assert not target.done([])   # 5.0
        assert target.done([])       # 11.0

    def test_any_of(self):
        target = AnyOf(IterationBudget(5), ImpactThreshold(1, 100.0))
        assert target.done(self._executed([200.0]))
        assert "or" in target.describe()

    def test_describe_strings(self):
        assert "250" in IterationBudget(250).describe()
        assert "impact" in ImpactThreshold(1, 2.0).describe()
        assert "collect" in CollectMatching(lambda t: True, 3).describe()


def _dummy_result() -> RunResult:
    return RunResult(
        test_id=1, test_name="t", plan=InjectionPlan.none(), exit_code=0,
        crash_kind=None, crash_message=None, crash_stack=None,
        injection_stack=None, injected=False, coverage=frozenset(), steps=1,
    )


class TestExplorationSession:
    def test_runs_to_iteration_budget(self, coreutils):
        results = make_session(coreutils).run()
        assert len(results) == 30

    def test_deterministic_given_seed(self, coreutils):
        a = make_session(coreutils, rng=5).run()
        b = make_session(coreutils, rng=5).run()
        assert [t.fault for t in a] == [t.fault for t in b]
        assert [t.impact for t in a] == [t.impact for t in b]

    def test_cannot_run_twice(self, coreutils):
        session = make_session(coreutils)
        session.run()
        with pytest.raises(SearchError):
            session.run()

    def test_on_test_callback_invoked(self, coreutils):
        seen = []
        session = make_session(coreutils, on_test=seen.append)
        session.run()
        assert len(seen) == 30
        assert seen[0].index == 0

    def test_environment_model_reweights_impact(self, coreutils):
        from repro.quality.relevance import EnvironmentModel

        model = EnvironmentModel(
            {f: 1.0 for f in coreutils.libc_functions() if f != "malloc"}
            | {"malloc": 100.0}
        )
        plain = make_session(coreutils, rng=4).run()
        weighted = ExplorationSession(
            runner=TargetRunner(coreutils),
            space=coreutils_space(coreutils),
            metric=standard_impact(),
            strategy=RandomSearch(),
            target=IterationBudget(30),
            rng=4,
            environment=model,
        ).run()
        # Same faults (same seed/strategy), different impact weighting for
        # malloc faults.
        malloc_tests = [
            (p, w) for p, w in zip(plain, weighted)
            if p.fault.value("function") == "malloc" and p.impact > 0
        ]
        for p, w in malloc_tests:
            assert w.impact > p.impact

    def test_runner_requires_test_attribute(self, coreutils):
        runner = TargetRunner(coreutils)
        with pytest.raises(TargetError):
            runner(Fault.of(function="malloc", call=1))

    def test_runner_translates_fault_to_plan(self, coreutils):
        runner = TargetRunner(coreutils)
        result = runner(Fault.of(test=12, function="malloc", call=1))
        assert result.injected
        assert result.plan.faults[0].function == "malloc"

    def test_collect_matching_ends_session_early(self, coreutils):
        def is_malloc_failure(t):
            return t.failed and t.fault.value("function") == "malloc"

        session = make_session(
            coreutils,
            strategy=FitnessGuidedSearch(initial_batch=10),
            target=AnyOf(CollectMatching(is_malloc_failure, 3),
                         IterationBudget(1000)),
            rng=2,
        )
        results = session.run()
        matches = [t for t in results if is_malloc_failure(t)]
        assert len(matches) >= 3 or len(results) == 1000


class TestResultSet:
    @pytest.fixture
    def results(self, coreutils) -> ResultSet:
        return make_session(
            coreutils, strategy=FitnessGuidedSearch(initial_batch=10),
            target=IterationBudget(120), rng=3,
        ).run()

    def test_counts_consistent(self, results):
        assert results.failed_count() == len(results.failed_tests())
        assert results.crash_count() == len(results.crashes())
        assert 0 <= results.failed_count() <= len(results)

    def test_top_sorted_by_impact(self, results):
        top = results.top(10)
        impacts = [t.impact for t in top]
        assert impacts == sorted(impacts, reverse=True)

    def test_coverage_union_superset_of_each(self, results):
        union = results.coverage_union()
        for test in results:
            assert test.result.coverage <= union

    def test_unique_failures_at_most_failures(self, results):
        assert results.unique_failures() <= results.failed_count()

    def test_cluster_representatives_cover_all_clusters(self, results):
        clusters = results.cluster(of=lambda t: t.failed)
        reps = results.cluster_representatives(of=lambda t: t.failed)
        assert len(reps) == clusters.cluster_count

    def test_matching_filter(self, results):
        failed = results.matching(lambda t: t.failed)
        assert all(t.failed for t in failed)

    def test_summary_keys(self, results):
        summary = results.summary()
        assert set(summary) >= {"tests", "failed", "crashes", "hangs"}

    def test_replay_script_reproduces_outcome(self, results, tmp_path):
        """§6.3: generated test scripts actually replay the injection."""
        failing = results.failed_tests()
        assert failing, "expected at least one failure in 120 guided tests"
        script = results.replay_script(failing[0], "coreutils")
        namespace: dict = {}
        exec(compile(script, "<replay>", "exec"), namespace)
        replayed = namespace["replay"]()
        assert replayed.failed

    def test_regression_suite_one_script_per_cluster(self, results):
        scripts = results.regression_suite("coreutils", of=lambda t: t.failed)
        clusters = results.cluster(of=lambda t: t.failed)
        assert len(scripts) == clusters.cluster_count
        for source in scripts.values():
            compile(source, "<script>", "exec")  # all scripts are valid Python
