"""Tests for the networked multi-node fabric (cluster/socket_fabric.py)
and its wire protocol (cluster/wire.py).

Everything runs on localhost with real sockets: the manager binds an
ephemeral port, :class:`~repro.cluster.socket_fabric.ExplorerNode`
instances serve from daemon threads (the protocol is identical to the
multi-process deployment; only the transport endpoints live in one
process here).
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.cluster import (
    ClusterExplorer,
    ExplorerNode,
    FaultTolerantFabric,
    LocalCluster,
    NodeManager,
    PROTOCOL_VERSION,
    RetryPolicy,
    SensitivityPartitioner,
    SocketFabric,
    WireError,
)
from repro.cluster.messages import TestReport as ClusterTestReport
from repro.cluster.messages import TestRequest as ClusterTestRequest
from repro.cluster.wire import (
    BINARY_MAGIC,
    encode_frame,
    encode_report_frame,
    recv_frame,
    report_from_wire,
    report_to_wire,
    request_from_wire,
    request_to_wire,
    send_frame,
)
from repro.core.checkpoint import history_digest
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.search import strategy_by_name
from repro.core.targets import IterationBudget
from repro.errors import ClusterError
from repro.sim.targets.minidb import MiniDbTarget

from tests.netutil import free_port


def make_request(i: int, **scenario) -> ClusterTestRequest:
    scenario = scenario or {"test": 1 + (i % 3), "function": "read", "call": 0}
    return ClusterTestRequest(request_id=i, subspace="net", scenario=scenario)


def make_report(i: int, **overrides) -> ClusterTestReport:
    defaults = dict(
        request_id=i, manager="m", failed=True, crash_kind="segfault",
        exit_code=139, coverage=frozenset({"a", "b"}),
        injection_stack=("main", "read"), injected=True, steps=10,
        measurements={"steps": 10.0}, cost=0.01,
        invariant_violations=("inv",), spans=(),
        stack_digest="digest",
    )
    defaults.update(overrides)
    return ClusterTestReport(**defaults)


@pytest.fixture
def fleet(minidb):
    """A live manager plus two registered in-thread explorer nodes."""
    net = SocketFabric("127.0.0.1:0", expected_nodes=2, ready_timeout=5.0)
    nodes = [
        ExplorerNode(
            (net.host, net.port), MiniDbTarget, name=f"n{i}", capacity=2,
            heartbeat_interval=0.1,
            reconnect_policy=RetryPolicy(
                max_attempts=100, base_delay=0.02, max_delay=0.2
            ),
        )
        for i in range(2)
    ]
    threads = [n.run_in_thread() for n in nodes]
    net.wait_for_nodes(timeout=15)
    yield net, nodes
    net.close()
    for node in nodes:
        node.stop()
    for thread in threads:
        thread.join(timeout=10)


class TestWireCodec:
    def test_request_roundtrip(self):
        request = ClusterTestRequest(
            request_id=7, subspace="s",
            scenario={"test": 3, "function": "read", "call": 1},
            trace_id="t", parent_span="p",
        )
        assert request_from_wire(request_to_wire(request)) == request

    def test_request_roundtrip_preserves_tuple_values(self):
        request = ClusterTestRequest(
            request_id=1, subspace="s",
            scenario={"path": ("a", "b"), "call": 0},
        )
        back = request_from_wire(request_to_wire(request))
        assert back.scenario["path"] == ("a", "b")

    def test_report_roundtrip(self):
        report = make_report(9)
        back = report_from_wire(report_to_wire(report))
        assert back == report
        assert isinstance(back.coverage, frozenset)
        assert isinstance(back.injection_stack, tuple)
        assert isinstance(back.invariant_violations, tuple)

    def test_report_roundtrip_none_fields(self):
        report = make_report(
            3, crash_kind=None, injection_stack=None, injected=False,
            stack_digest=None, invariant_violations=(),
        )
        assert report_from_wire(report_to_wire(report)) == report

    def test_frame_roundtrip_over_a_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "hello", "n": 1})
            assert recv_frame(b) == {"type": "hello", "n": 1}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none_not_an_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_frame_is_a_wire_error(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"type": "hello"})
            a.sendall(frame[: len(frame) - 2])
            a.close()
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            b.close()

    def test_garbage_payload_is_a_wire_error(self):
        a, b = socket.socketpair()
        try:
            payload = b"\xff\xfenot json"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            a.close()
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_is_rejected_before_reading(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_payload_is_a_wire_error(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"type": "x"})
            payload = b"[1,2,3]"
            a.sendall(struct.pack(">I", len(payload)) + payload)
            assert recv_frame(b) == {"type": "x"}
            with pytest.raises(WireError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestDispatch:
    def test_batch_completes_and_preserves_request_order(self, fleet, minidb):
        net, _nodes = fleet
        requests = [make_request(i) for i in range(10)]
        reports = net.run_batch(requests)
        assert [r.request_id for r in reports] == list(range(10))
        assert all(isinstance(r, ClusterTestReport) for r in reports)
        assert net.health.completed == 10

    def test_reports_match_a_local_node_manager(self, fleet, minidb):
        net, _nodes = fleet
        request = make_request(1, test=2, function="malloc", call=1)
        over_wire = net.run_batch([request])[0]
        local = NodeManager("ref", minidb).execute(request)
        # manager/cost/spans are placement-dependent; the execution
        # outcome is not.
        assert over_wire.failed == local.failed
        assert over_wire.crash_kind == local.crash_kind
        assert over_wire.coverage == local.coverage
        assert over_wire.steps == local.steps
        assert over_wire.stack_digest == local.stack_digest

    def test_len_is_total_fleet_capacity(self, fleet):
        net, _nodes = fleet
        assert len(net) == 4  # two nodes, capacity 2 each

    def test_empty_batch_is_a_noop(self, fleet):
        net, _nodes = fleet
        assert net.run_batch([]) == []

    def test_run_batch_after_close_raises(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        net.close()
        with pytest.raises(ClusterError):
            net.run_batch([make_request(0)])

    def test_wait_for_nodes_times_out_without_nodes(self):
        with SocketFabric("127.0.0.1:0", expected_nodes=1) as net:
            with pytest.raises(ClusterError):
                net.wait_for_nodes(timeout=0.2)

    def test_no_live_nodes_fails_the_round_after_ready_timeout(self):
        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=1, ready_timeout=0.3
        )
        try:
            with pytest.raises(ClusterError):
                net.run_batch([make_request(0)])
        finally:
            net.close()


class TestDigestParity:
    def test_socket_campaign_matches_in_process_fabric(self, fleet, minidb):
        net, _nodes = fleet
        space = FaultSpace.product(
            test=range(1, len(minidb.suite) + 1),
            function=minidb.libc_functions(),
            call=range(0, 3),
        )

        def explore(cluster):
            return ClusterExplorer(
                cluster, space, standard_impact(),
                strategy_by_name("fitness"), IterationBudget(40),
                rng=11, batch_size=4,
            ).run()

        managers = [NodeManager(f"ref{i}", minidb) for i in range(2)]
        reference = explore(
            FaultTolerantFabric(LocalCluster(managers), policy=RetryPolicy())
        )
        over_wire = explore(
            FaultTolerantFabric(net, policy=RetryPolicy())
        )
        assert history_digest(list(over_wire)) == \
            history_digest(list(reference))


class TestNodeFailure:
    def test_node_killed_mid_batch_requeues_no_lost_no_duplicated(
        self, fleet
    ):
        net, nodes = fleet

        # Slow the victim down so the kill deterministically lands while
        # its chunk is still in flight (the batched v2 data plane would
        # otherwise finish the whole round before a timer fires).
        class SlowManager(NodeManager):
            def execute(self, request):
                time.sleep(0.05)
                return super().execute(request)

        nodes[0]._manager = SlowManager(nodes[0].name, MiniDbTarget())
        killer = threading.Timer(0.05, nodes[0].stop)
        killer.start()
        try:
            reports = net.run_batch([make_request(i) for i in range(16)])
        finally:
            killer.cancel()
        ids = [r.request_id for r in reports]
        assert ids == list(range(16))          # nothing lost, in order
        assert len(set(ids)) == 16             # nothing duplicated
        assert net.requeued >= 1               # the dead node's chunk moved

    def test_silent_node_is_expired_by_heartbeat_liveness(self, minidb):
        # A raw socket that completes the handshake then goes silent
        # must be declared dead and its work requeued — without a real
        # node the round can't finish, so we assert on the expiry
        # bookkeeping instead.
        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=1,
            ready_timeout=1.0, heartbeat_timeout=0.3,
        )
        sock = socket.create_connection((net.host, net.port), timeout=5)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION,
                "node": "mute", "capacity": 1,
            })
            assert recv_frame(sock)["type"] == "welcome"
            send_frame(sock, {"type": "ready", "slots": 1})

            def pull_then_mute():
                # Accept the work frame, then never answer again.
                while True:
                    frame = recv_frame(sock)
                    if frame is None or frame["type"] == "work":
                        return

            threading.Thread(target=pull_then_mute, daemon=True).start()
            with pytest.raises(ClusterError):
                net.run_batch([make_request(0)])
            assert net.health.worker_deaths == 1
            assert net.requeued == 1
        finally:
            sock.close()
            net.close()

    def test_manager_restart_on_same_port_gets_its_fleet_back(self):
        net1 = SocketFabric("127.0.0.1:0", expected_nodes=1)
        port = net1.port
        node = ExplorerNode(
            ("127.0.0.1", port), MiniDbTarget, name="survivor", capacity=2,
            heartbeat_interval=0.1,
            reconnect_policy=RetryPolicy(
                max_attempts=200, base_delay=0.02, max_delay=0.2
            ),
        )
        thread = node.run_in_thread()
        try:
            net1.wait_for_nodes(timeout=15)
            first = net1.run_batch([make_request(i) for i in range(4)])
            assert len(first) == 4
            net1.close(drain=False)  # crash: no shutdown frame

            net2 = SocketFabric(f"127.0.0.1:{port}", expected_nodes=1)
            try:
                net2.wait_for_nodes(timeout=15)
                second = net2.run_batch(
                    [make_request(100 + i) for i in range(4)]
                )
                assert [r.request_id for r in second] == [100, 101, 102, 103]
                assert node.connections == 2
            finally:
                net2.close()
        finally:
            net1.close()
            node.stop()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_reregistration_under_same_name_replaces_the_stale_node(
        self, minidb
    ):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        try:
            def register(tag):
                sock = socket.create_connection(
                    (net.host, net.port), timeout=5
                )
                send_frame(sock, {
                    "type": "hello", "version": PROTOCOL_VERSION,
                    "node": "twin", "capacity": 1,
                })
                assert recv_frame(sock)["type"] == "welcome"
                return sock

            first = register("a")
            net.wait_for_nodes(timeout=5)
            second = register("b")  # same name: must retire the first
            deadline = time.monotonic() + 5
            while net.registrations < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert net.registrations == 2
            assert net.wait_for_nodes(timeout=5) == 1  # still one node
            first.close()
            second.close()
        finally:
            net.close()

    def test_node_gives_up_after_consecutive_connect_failures(self):
        # Point a node at a port nothing listens on: bounded retries,
        # then ClusterError.
        port = free_port()
        node = ExplorerNode(
            ("127.0.0.1", port), MiniDbTarget, name="lost",
            reconnect_policy=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.02
            ),
            sleep=lambda _s: None,
        )
        with pytest.raises(ClusterError):
            node.run()


class TestHostileFrames:
    """Garbage on the wire must never crash the manager (satellite 4)."""

    def _connect(self, net):
        return socket.create_connection((net.host, net.port), timeout=5)

    def test_garbage_bytes_on_a_fresh_connection(self, fleet):
        net, _nodes = fleet
        sock = self._connect(net)
        sock.sendall(b"\x00\x00\x00\x05junk!")
        sock.close()
        # The fleet still serves work afterwards.
        reports = net.run_batch([make_request(i) for i in range(4)])
        assert len(reports) == 4

    def test_oversized_length_prefix_on_a_fresh_connection(self, fleet):
        net, _nodes = fleet
        sock = self._connect(net)
        sock.sendall(struct.pack(">I", 1 << 31))
        sock.close()
        assert len(net.run_batch([make_request(0)])) == 1

    def test_truncated_hello_then_eof(self, fleet):
        net, _nodes = fleet
        sock = self._connect(net)
        frame = encode_frame({"type": "hello"})
        sock.sendall(frame[:-3])
        sock.close()
        assert len(net.run_batch([make_request(0)])) == 1

    def test_wrong_protocol_version_is_refused_with_an_error_frame(
        self, fleet
    ):
        net, _nodes = fleet
        sock = self._connect(net)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION + 1,
                "node": "future", "capacity": 1,
            })
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "version" in reply["reason"]
        finally:
            sock.close()

    def test_absurd_capacity_is_refused(self, fleet):
        net, _nodes = fleet
        sock = self._connect(net)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION,
                "node": "greedy", "capacity": 1_000_000,
            })
            assert recv_frame(sock)["type"] == "error"
        finally:
            sock.close()

    def test_registered_node_sending_garbage_is_dropped_and_requeued(
        self, minidb
    ):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1,
                           ready_timeout=1.0)
        sock = socket.create_connection((net.host, net.port), timeout=5)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION,
                "node": "rogue", "capacity": 1,
            })
            assert recv_frame(sock)["type"] == "welcome"
            dispatcher = threading.Thread(
                target=lambda: pytest.raises(
                    ClusterError, net.run_batch, [make_request(0)]
                ),
                daemon=True,
            )
            dispatcher.start()
            sock.settimeout(5)
            send_frame(sock, {"type": "ready", "slots": 1})
            while True:
                frame = recv_frame(sock)
                if frame["type"] == "work":
                    assert len(frame["requests"]) == 1
                    break
                send_frame(sock, {"type": "ready", "slots": 1})
            before = net.health.corrupt_reports
            sock.sendall(b"\x00\x00\x00\x04\xff\xff\xff\xff")
            deadline = time.monotonic() + 5
            while net.requeued < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert net.requeued == 1
            assert net.health.corrupt_reports == before + 1
        finally:
            sock.close()
            net.close()

    def test_fabricated_report_id_is_discarded_as_corrupt(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        sock = socket.create_connection((net.host, net.port), timeout=5)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION,
                "node": "liar", "capacity": 1,
            })
            assert recv_frame(sock)["type"] == "welcome"
            send_frame(sock, {
                "type": "report",
                "report": report_to_wire(make_report(424242)),
            })
            deadline = time.monotonic() + 5
            while net.health.corrupt_reports < 1 and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert net.health.corrupt_reports == 1
            assert net.late_reports == 0
        finally:
            sock.close()
            net.close()


class TestBackpressure:
    def test_node_never_holds_more_than_its_declared_slots(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        sock = socket.create_connection((net.host, net.port), timeout=5)
        sock.settimeout(5)
        try:
            # This fake node hand-speaks the v1 JSON dialect (separate
            # ready/report frames), so it pins version 1 in its hello.
            send_frame(sock, {
                "type": "hello", "version": 1,
                "node": "narrow", "capacity": 2,
            })
            welcome = recv_frame(sock)
            assert welcome["type"] == "welcome"
            assert welcome["version"] == 1  # manager honours the pin

            outcome: dict = {}

            def dispatch():
                try:
                    outcome["reports"] = net.run_batch(
                        [make_request(i) for i in range(6)]
                    )
                except ClusterError as exc:  # pragma: no cover
                    outcome["error"] = exc

            runner = threading.Thread(target=dispatch, daemon=True)
            runner.start()
            manager = NodeManager("narrow", minidb)
            served = 0
            while served < 6:
                send_frame(sock, {"type": "ready", "slots": 2})
                frame = recv_frame(sock)
                if frame["type"] == "idle":
                    continue
                assert frame["type"] == "work"
                # Backpressure: never more than the declared free slots.
                assert len(frame["requests"]) <= 2
                for payload in frame["requests"]:
                    request = request_from_wire(payload)
                    report = manager.execute(request)
                    send_frame(sock, {
                        "type": "report",
                        "report": report_to_wire(report),
                    })
                    served += 1
            runner.join(timeout=15)
            assert not runner.is_alive()
            assert "error" not in outcome
            assert [r.request_id for r in outcome["reports"]] == \
                list(range(6))
        finally:
            sock.close()
            net.close()


class TestSensitivityPartitioner:
    def test_no_feedback_means_proposal_order(self):
        partitioner = SensitivityPartitioner()
        requests = [make_request(i, test=i, function="read", call=0)
                    for i in range(5)]
        assert partitioner.arrange(requests) == requests

    def test_partitions_along_the_sensitive_axis(self):
        partitioner = SensitivityPartitioner(window=10)
        # 'function' discriminates outcomes; 'test' does not: crashes
        # happen iff function == "malloc", across every test value.
        for i in range(12):
            function = "malloc" if i % 2 else "read"
            request = make_request(
                i, test=i % 3, function=function, call=0
            )
            report = make_report(
                i,
                crash_kind="segfault" if function == "malloc" else None,
                failed=function == "malloc",
                exit_code=139 if function == "malloc" else 0,
            )
            partitioner.observe(request, report)
        axis = partitioner.partition_axis()
        assert axis == "function"
        mixed = [
            make_request(
                i, test=i % 3,
                function=("malloc", "read")[i % 2], call=0,
            )
            for i in range(8)
        ]
        arranged = partitioner.arrange(mixed)
        functions = [r.scenario["function"] for r in arranged]
        # Contiguous partitions: all malloc together, all read together.
        assert functions == sorted(functions, key=repr)
        # Placement is a permutation — nothing added or dropped.
        assert sorted(r.request_id for r in arranged) == list(range(8))

    def test_new_axes_rebuild_the_tracker(self):
        partitioner = SensitivityPartitioner()
        partitioner.observe(
            make_request(0, test=1, function="read", call=0), make_report(0)
        )
        partitioner.observe(
            make_request(1, test=1, function="read", call=0, errno=5),
            make_report(1),
        )
        assert partitioner.partition_axis() in (
            "test", "function", "call", "errno"
        )


class TestObservability:
    def test_wire_counters_and_metrics_gauges(self, fleet):
        net, _nodes = fleet
        from repro.obs import MetricsRegistry

        net.run_batch([make_request(i) for i in range(6)])
        assert net.bytes_in > 0 and net.bytes_out > 0
        assert net.frames_in > 0 and net.frames_out > 0
        registry = MetricsRegistry()
        net.bind_metrics(registry)
        net.bind_metrics(registry)  # idempotent: no duplicate collectors
        gauges = registry.snapshot()["gauges"]
        assert gauges["fabric.net.nodes"] == 2
        assert gauges["fabric.net.capacity"] == 4
        assert gauges["fabric.net.frames_in"] > 0
        executed = sum(
            value for name, value in gauges.items()
            if name.startswith("fabric.worker_executed")
        )
        assert executed == 6

    def test_node_stats_account_completed_work(self, fleet):
        net, _nodes = fleet
        net.run_batch([make_request(i) for i in range(8)])
        stats = net.node_stats()
        assert sorted(s["node"] for s in stats) == ["n0", "n1"]
        assert sum(s["executed"] for s in stats) == 8
        # A steal race can leave the losing side still finishing a
        # test the round no longer needs; that in-flight remnant
        # drains as soon as its (discarded) report lands.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            stats = net.node_stats()
            if all(s["in_flight"] == 0 for s in stats):
                break
            time.sleep(0.01)
        assert all(s["in_flight"] == 0 for s in stats)

    def test_describe_mentions_endpoint_and_protocol(self, fleet):
        net, nodes = fleet
        assert f"{net.host}:{net.port}" in net.describe()
        assert f"v{PROTOCOL_VERSION}" in net.describe()
        assert nodes[0].name in nodes[0].describe()

    def test_wire_cost_gauges_are_exported(self, fleet):
        net, _nodes = fleet
        from repro.obs import MetricsRegistry

        net.run_batch([make_request(i) for i in range(6)])
        registry = MetricsRegistry()
        net.bind_metrics(registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges["fabric.dispatch.encode_seconds"] >= 0.0
        per_test = gauges["fabric.net.bytes_per_test"]
        assert 0 < per_test == \
            (net.bytes_in + net.bytes_out) / net.health.completed


class TestVersionNegotiationEndToEnd:
    """The (manager, node) pairings the handshake can see (satellite)."""

    def _campaign(self, fabric, minidb):
        space = FaultSpace.product(
            test=range(1, len(minidb.suite) + 1),
            function=minidb.libc_functions(),
            call=range(0, 3),
        )
        return ClusterExplorer(
            FaultTolerantFabric(fabric, policy=RetryPolicy()),
            space, standard_impact(), strategy_by_name("fitness"),
            IterationBudget(32), rng=7, batch_size=4,
        ).run()

    def _fleet_digest(self, minidb, wire_version):
        net = SocketFabric("127.0.0.1:0", expected_nodes=2)
        nodes = [
            ExplorerNode(
                (net.host, net.port), MiniDbTarget, name=f"n{i}",
                capacity=2, wire_version=wire_version,
            )
            for i in range(2)
        ]
        threads = [n.run_in_thread() for n in nodes]
        try:
            net.wait_for_nodes(timeout=15)
            reports = self._campaign(net, minidb)
            digest = history_digest(list(reports))
            wire_bytes = net.bytes_in + net.bytes_out
        finally:
            net.close()
            for node in nodes:
                node.stop()
            for thread in threads:
                thread.join(timeout=10)
        return digest, wire_bytes

    def test_v1_pinned_nodes_complete_a_campaign_with_equal_digest(
        self, minidb
    ):
        # A legacy JSON fleet and a v2 binary fleet run the same
        # campaign: identical outcomes, and v2 pays far fewer bytes.
        v2_digest, v2_bytes = self._fleet_digest(minidb, PROTOCOL_VERSION)
        v1_digest, v1_bytes = self._fleet_digest(minidb, 1)
        assert v1_digest == v2_digest
        assert v2_bytes < v1_bytes / 2

    def test_mixed_fleet_one_v1_one_v2_node(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=2)
        nodes = [
            ExplorerNode(
                (net.host, net.port), MiniDbTarget, name=f"mix{v}",
                capacity=2, wire_version=v,
            )
            for v in (1, 2)
        ]
        threads = [n.run_in_thread() for n in nodes]
        try:
            net.wait_for_nodes(timeout=15)
            reports = net.run_batch([make_request(i) for i in range(12)])
            assert [r.request_id for r in reports] == list(range(12))
            # Both dialects carried work.
            assert all(n.executed > 0 for n in nodes)
        finally:
            net.close()
            for node in nodes:
                node.stop()
            for thread in threads:
                thread.join(timeout=10)

    def test_future_node_that_speaks_down_gets_v2(self, fleet):
        net, _nodes = fleet
        sock = socket.create_connection((net.host, net.port), timeout=5)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION + 7,
                "min_version": 1, "node": "poly", "capacity": 1,
            })
            welcome = recv_frame(sock)
            assert welcome["type"] == "welcome"
            assert welcome["version"] == PROTOCOL_VERSION
        finally:
            sock.close()

    def test_node_downgrades_when_an_old_manager_refuses_v2(self, minidb):
        # Simulate a pre-negotiation manager: refuse the first hello
        # with a version-mismatch error, welcome the v1 retry, then
        # shut the node down.  The node must land on wire_version 1.
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(2)
        hellos = []

        def old_manager():
            for _ in range(2):
                conn, _addr = server.accept()
                conn.settimeout(5)
                hello = recv_frame(conn)
                hellos.append(hello)
                if hello.get("version", 0) > 1:
                    send_frame(conn, {
                        "type": "error",
                        "reason": "protocol version mismatch: "
                                  "manager speaks v1",
                    })
                    conn.close()
                    continue
                send_frame(conn, {"type": "welcome", "version": 1})
                send_frame(conn, {"type": "shutdown"})
                recv_frame(conn)  # the node's bye
                conn.close()
                return

        thread = threading.Thread(target=old_manager, daemon=True)
        thread.start()
        node = ExplorerNode(
            server.getsockname(), MiniDbTarget, name="legacyable",
            reconnect_policy=RetryPolicy(
                max_attempts=10, base_delay=0.01, max_delay=0.02
            ),
            sleep=lambda _s: None,
        )
        try:
            node.run()  # returns cleanly after the shutdown frame
            thread.join(timeout=10)
            assert [h.get("version") for h in hellos] == \
                [PROTOCOL_VERSION, 1]
            assert node.wire_version == 1
        finally:
            server.close()


class TestHostileBinaryFramesLiveManager:
    """Binary garbage must poison one peer, never the manager thread."""

    def test_binary_garbage_from_registered_node_requeues(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1,
                           ready_timeout=1.0)
        sock = socket.create_connection((net.host, net.port), timeout=5)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION,
                "node": "binrogue", "capacity": 1,
            })
            assert recv_frame(sock)["type"] == "welcome"
            dispatcher = threading.Thread(
                target=lambda: pytest.raises(
                    ClusterError, net.run_batch, [make_request(0)]
                ),
                daemon=True,
            )
            dispatcher.start()
            sock.settimeout(5)
            send_frame(sock, {"type": "ready", "slots": 1})
            while True:
                frame = recv_frame(sock)
                if frame["type"] == "work":
                    break
                send_frame(sock, {"type": "ready", "slots": 1})
            # A binary frame that passes the magic check then rots.
            payload = bytes([BINARY_MAGIC, 0x02]) + b"\xff\xff\xff\xff"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            deadline = time.monotonic() + 5
            while net.requeued < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert net.requeued == 1
        finally:
            sock.close()
            net.close()

    def test_fabricated_binary_report_batch_is_corrupt_not_fatal(
        self, minidb
    ):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        sock = socket.create_connection((net.host, net.port), timeout=5)
        try:
            send_frame(sock, {
                "type": "hello", "version": PROTOCOL_VERSION,
                "node": "binliar", "capacity": 1,
            })
            assert recv_frame(sock)["type"] == "welcome"
            sock.sendall(
                encode_report_frame([make_report(998877)], slots=1)
            )
            deadline = time.monotonic() + 5
            while net.health.corrupt_reports < 1 and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert net.health.corrupt_reports == 1
            assert net.late_reports == 0
        finally:
            sock.close()
            net.close()

    def test_fleet_survives_a_binary_fuzzing_peer(self, fleet):
        net, _nodes = fleet
        rng = __import__("random").Random(1234)
        for _ in range(25):
            sock = socket.create_connection((net.host, net.port), timeout=5)
            blob = bytes([BINARY_MAGIC]) + bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 64))
            )
            sock.sendall(struct.pack(">I", len(blob)) + blob)
            sock.close()
        reports = net.run_batch([make_request(i) for i in range(4)])
        assert len(reports) == 4
