"""CampaignEngine: the extraction's digest-parity gate and warm reuse."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignJob
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.checkpoint import history_digest
from repro.errors import ClusterError
from repro.service.engine import CampaignEngine, EngineRun
from repro.service.spec import CampaignSpec


def space_for(target):
    return FaultSpace.product(
        test=range(1, 30), function=target.libc_functions(), call=[0, 1, 2]
    )


@pytest.fixture(scope="module")
def reference_digest(coreutils):
    """What the pre-engine serial flow produces for this campaign."""
    results = ExplorationSession(
        TargetRunner(coreutils),
        space_for(coreutils),
        standard_impact(),
        FitnessGuidedSearch(),
        IterationBudget(60),
        rng=1,
    ).run()
    return history_digest(list(results))


class TestDigestParity:
    """The refactor gate: engine campaigns reproduce the legacy flows
    byte-for-byte."""

    def test_serial_matches_session(self, coreutils, reference_digest):
        with CampaignEngine(coreutils) as engine:
            run = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=60, seed=1,
            )
        assert run.digest == reference_digest

    def test_campaign_job_matches(self, coreutils, reference_digest):
        job = CampaignJob(
            name="cert", target=coreutils, space=space_for(coreutils),
            iterations=60, seed=1,
        )
        try:
            _, results, _ = job.execute()
        finally:
            job.close()
        assert history_digest(list(results)) == reference_digest

    def test_threads_fabric_same_trajectory_any_workers(self, coreutils):
        """Fabric placement moves *where* tests run, never the search
        trajectory: worker count doesn't change the digest."""
        digests = set()
        for workers in (2, 3):
            with CampaignEngine(
                coreutils, fabric="threads", workers=workers
            ) as engine:
                run = engine.explore(
                    space_for(coreutils), FitnessGuidedSearch(),
                    iterations=60, seed=1, batch_size=4,
                )
            digests.add(run.digest)
        assert len(digests) == 1

    def test_spec_built_engine_matches_cli_flow(self, coreutils):
        """CampaignSpec.build_engine reproduces the `afex run` path."""
        spec = CampaignSpec(target="coreutils", iterations=40, seed=1)
        engine = spec.build_engine()
        try:
            run = engine.explore(
                spec.build_space(engine.target), spec.build_strategy(),
                iterations=spec.iterations, seed=spec.seed,
            )
        finally:
            engine.close()
        # The frozen baseline the CLI printed before the refactor.
        assert run.digest == (
            "89d67e178ca102eb7184c79893c5d62a2c7a77dee3016a46e72c4f5c1ab5c78b"
        )


class TestWarmReuse:
    def test_serial_runner_is_reused(self, coreutils):
        with CampaignEngine(coreutils) as engine:
            assert not engine.warm
            first = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=20, seed=1,
            )
            assert engine.warm
            assert engine.warm_reuses == 0
            second = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=20, seed=1,
            )
            assert engine.warm_reuses == 1
            assert engine.runs == 2
        assert first.digest == second.digest

    def test_threads_fabric_is_reused(self, coreutils):
        with CampaignEngine(
            coreutils, fabric="threads", workers=2
        ) as engine:
            a = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=20, seed=1,
            )
            b = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=20, seed=1,
            )
            assert engine.warm_reuses == 1
            assert a.digest == b.digest

    def test_close_then_reuse_rebuilds(self, coreutils):
        engine = CampaignEngine(coreutils, fabric="threads", workers=2)
        engine.explore(space_for(coreutils), FitnessGuidedSearch(),
                       iterations=10, seed=1)
        engine.close()
        assert not engine.warm
        engine.explore(space_for(coreutils), FitnessGuidedSearch(),
                       iterations=10, seed=1)
        assert engine.warm
        assert engine.warm_reuses == 0  # cold again after close
        engine.close()

    def test_close_is_idempotent(self, coreutils):
        engine = CampaignEngine(coreutils)
        engine.close()
        engine.close()

    def test_campaign_job_reuses_engine_across_executes(self, coreutils):
        job = CampaignJob(
            name="cert", target=coreutils, space=space_for(coreutils),
            iterations=20, seed=1, fabric="threads", nodes=2,
        )
        try:
            _, first, _ = job.execute()
            engine = job.engine()
            _, second, _ = job.execute()
            assert job.engine() is engine
            assert engine.warm_reuses >= 1
            assert history_digest(list(first)) == history_digest(
                list(second)
            )
        finally:
            job.close()
        assert not engine.warm

    def test_campaign_job_rebuilds_on_fabric_change(self, coreutils):
        job = CampaignJob(
            name="cert", target=coreutils, space=space_for(coreutils),
            iterations=10, seed=1,
        )
        try:
            job.execute()
            serial_engine = job.engine()
            job.fabric = "threads"
            job.nodes = 2
            job.execute()
            assert job.engine() is not serial_engine
        finally:
            job.close()


class TestValidation:
    def test_unknown_fabric_rejected(self, coreutils):
        with pytest.raises(ClusterError):
            CampaignEngine(coreutils, fabric="quantum")

    def test_auto_resolution(self, coreutils):
        assert CampaignEngine(
            coreutils, fabric="auto", workers=1
        ).resolved_fabric == "serial"
        assert CampaignEngine(
            coreutils, fabric="auto", workers=3
        ).resolved_fabric == "threads"

    def test_serial_rejects_auto_batch(self, coreutils):
        with CampaignEngine(coreutils) as engine:
            with pytest.raises(ClusterError):
                engine.explore(
                    space_for(coreutils), FitnessGuidedSearch(),
                    iterations=10, batch_size="auto",
                )


class TestEngineRun:
    def test_run_carries_quality_and_health(self, coreutils):
        with CampaignEngine(
            coreutils, fabric="threads", workers=2
        ) as engine:
            run = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=30, seed=1, online_quality=True,
            )
        assert isinstance(run, EngineRun)
        assert run.fabric == "threads"
        assert run.health is not None
        assert run.quality_stats is not None
        assert run.seconds > 0
        assert run.runner is not None

    def test_checkpoint_resume_round_trip(self, coreutils, tmp_path):
        """Kill-and-resume through the engine is byte-identical."""
        from repro.errors import CheckpointError

        path = tmp_path / "c.ckpt"
        with CampaignEngine(coreutils) as engine:
            full = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=40, seed=5,
            )
            # A partial run that checkpoints, stopped short by budget.
            engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=20, seed=5,
                checkpoint_path=path, checkpoint_every=5,
            )
            resumed = engine.explore(
                space_for(coreutils), FitnessGuidedSearch(),
                iterations=40, seed=5, resume_from=path,
            )
        assert resumed.digest == full.digest


class TestSpec:
    def test_canonicalizes_fault_model(self):
        a = CampaignSpec(target="coreutils", fault_model="disk+errno")
        b = CampaignSpec(target="coreutils", fault_model="errno+disk")
        assert a.fault_model == b.fault_model
        assert a.engine_signature() == b.engine_signature()

    def test_round_trips_json(self):
        spec = CampaignSpec(
            target="minidb", fabric="threads", workers=2, batch_size=8,
            iterations=100, seed=1,
        )
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_rejects_unknown_keys_and_values(self):
        from repro.errors import ReportError

        with pytest.raises(ReportError):
            CampaignSpec.from_dict({"target": "coreutils", "bogus": 1})
        with pytest.raises(ReportError):
            CampaignSpec.from_dict({})
        with pytest.raises(ReportError):
            CampaignSpec(target="nope")
        with pytest.raises(ReportError):
            CampaignSpec(target="coreutils", strategy="nope")
        with pytest.raises(ReportError):
            CampaignSpec(target="coreutils", iterations=0)
        with pytest.raises(ReportError):
            CampaignSpec(target="coreutils", fault_model="nope")
