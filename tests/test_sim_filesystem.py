"""Tests for the in-memory filesystem."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.errnos import Errno
from repro.sim.filesystem import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    FsError,
    SimFilesystem,
)


@pytest.fixture
def fs() -> SimFilesystem:
    return SimFilesystem()


class TestPaths:
    def test_resolve_absolute(self, fs):
        assert fs.resolve("/a/b") == "/a/b"

    def test_resolve_relative_uses_cwd(self, fs):
        fs.mkdir("/d")
        fs.chdir("/d")
        assert fs.resolve("x") == "/d/x"

    def test_resolve_dotdot(self, fs):
        assert fs.resolve("/a/b/../c") == "/a/c"

    def test_resolve_collapses_slashes_and_dots(self, fs):
        assert fs.resolve("//a/./b//") == "/a/b"

    def test_dotdot_above_root_stays_at_root(self, fs):
        assert fs.resolve("/../..") == "/"

    def test_empty_path_is_error(self, fs):
        with pytest.raises(FsError) as excinfo:
            fs.resolve("")
        assert excinfo.value.errno is Errno.ENOENT


class TestDirectories:
    def test_mkdir_listdir(self, fs):
        fs.mkdir("/d")
        fs.create_file("/d/f", b"x")
        assert fs.listdir("/d") == ["f"]

    def test_mkdir_missing_parent_enoent(self, fs):
        with pytest.raises(FsError) as excinfo:
            fs.mkdir("/a/b")
        assert excinfo.value.errno is Errno.ENOENT

    def test_mkdir_existing_eexist(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FsError) as excinfo:
            fs.mkdir("/d")
        assert excinfo.value.errno is Errno.EEXIST

    def test_listdir_only_immediate_children(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d/sub")
        fs.create_file("/d/sub/deep", b"")
        assert fs.listdir("/d") == ["sub"]

    def test_listdir_file_enotdir(self, fs):
        fs.create_file("/f", b"")
        with pytest.raises(FsError) as excinfo:
            fs.listdir("/f")
        assert excinfo.value.errno is Errno.ENOTDIR

    def test_rmdir_nonempty_refused(self, fs):
        fs.mkdir("/d")
        fs.create_file("/d/f", b"")
        with pytest.raises(FsError) as excinfo:
            fs.rmdir("/d")
        assert excinfo.value.errno is Errno.ENOTEMPTY

    def test_rmdir_removes_empty(self, fs):
        fs.mkdir("/d")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_chdir_and_cwd(self, fs):
        fs.mkdir("/w")
        fs.chdir("/w")
        assert fs.cwd == "/w"

    def test_chdir_to_file_enotdir(self, fs):
        fs.create_file("/f", b"")
        with pytest.raises(FsError) as excinfo:
            fs.chdir("/f")
        assert excinfo.value.errno is Errno.ENOTDIR


class TestOpenReadWrite:
    def test_open_missing_enoent(self, fs):
        with pytest.raises(FsError) as excinfo:
            fs.open("/missing")
        assert excinfo.value.errno is Errno.ENOENT

    def test_creat_then_read_back(self, fs):
        fd = fs.open("/f", O_CREAT | O_WRONLY)
        fs.write(fd, b"hello")
        fs.close(fd)
        fd = fs.open("/f", O_RDONLY)
        assert fs.read(fd, 100) == b"hello"

    def test_excl_on_existing_eexist(self, fs):
        fs.create_file("/f", b"")
        with pytest.raises(FsError) as excinfo:
            fs.open("/f", O_CREAT | O_EXCL | O_WRONLY)
        assert excinfo.value.errno is Errno.EEXIST

    def test_trunc_clears_content(self, fs):
        fs.create_file("/f", b"old content")
        fd = fs.open("/f", O_WRONLY | O_TRUNC)
        fs.close(fd)
        assert fs.read_file("/f") == b""

    def test_append_positions_at_end(self, fs):
        fs.create_file("/f", b"ab")
        fd = fs.open("/f", O_WRONLY | O_APPEND)
        fs.write(fd, b"cd")
        fs.close(fd)
        assert fs.read_file("/f") == b"abcd"

    def test_read_on_wronly_ebadf(self, fs):
        fd = fs.open("/f", O_CREAT | O_WRONLY)
        with pytest.raises(FsError) as excinfo:
            fs.read(fd, 1)
        assert excinfo.value.errno is Errno.EBADF

    def test_write_on_rdonly_ebadf(self, fs):
        fs.create_file("/f", b"x")
        fd = fs.open("/f", O_RDONLY)
        with pytest.raises(FsError):
            fs.write(fd, b"y")

    def test_read_past_eof_returns_empty(self, fs):
        fs.create_file("/f", b"x")
        fd = fs.open("/f", O_RDONLY)
        fs.read(fd, 10)
        assert fs.read(fd, 10) == b""

    def test_partial_reads_advance_offset(self, fs):
        fs.create_file("/f", b"abcdef")
        fd = fs.open("/f", O_RDONLY)
        assert fs.read(fd, 2) == b"ab"
        assert fs.read(fd, 2) == b"cd"

    def test_lseek_repositions(self, fs):
        fs.create_file("/f", b"abcdef")
        fd = fs.open("/f", O_RDONLY)
        fs.lseek(fd, 4)
        assert fs.read(fd, 2) == b"ef"

    def test_write_extends_with_zeros_after_seek(self, fs):
        fd = fs.open("/f", O_CREAT | O_RDWR)
        fs.lseek(fd, 3)
        fs.write(fd, b"x")
        fs.close(fd)
        assert fs.read_file("/f") == b"\x00\x00\x00x"

    def test_close_twice_ebadf(self, fs):
        fd = fs.open("/f", O_CREAT | O_WRONLY)
        fs.close(fd)
        with pytest.raises(FsError):
            fs.close(fd)

    def test_fd_exhaustion_emfile(self, fs):
        fs.max_open_files = 2
        fs.create_file("/f", b"")
        fs.open("/f")
        fs.open("/f")
        with pytest.raises(FsError) as excinfo:
            fs.open("/f")
        assert excinfo.value.errno is Errno.EMFILE

    def test_open_dir_eisdir(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FsError) as excinfo:
            fs.open("/d", O_WRONLY)
        assert excinfo.value.errno is Errno.EISDIR

    def test_unlinked_open_file_still_readable(self, fs):
        fs.create_file("/f", b"keep")
        fd = fs.open("/f", O_RDONLY)
        fs.unlink("/f")
        assert not fs.exists("/f")
        assert fs.read(fd, 10) == b"keep"


class TestRenameLinkUnlink:
    def test_rename_file(self, fs):
        fs.create_file("/a", b"x")
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"x"
        assert not fs.exists("/a")

    def test_rename_overwrites(self, fs):
        fs.create_file("/a", b"new")
        fs.create_file("/b", b"old")
        fs.rename("/a", "/b")
        assert fs.read_file("/b") == b"new"

    def test_rename_missing_enoent(self, fs):
        with pytest.raises(FsError):
            fs.rename("/nope", "/x")

    def test_rename_directory_moves_subtree(self, fs):
        fs.mkdir("/d1")
        fs.create_file("/d1/f", b"v")
        fs.rename("/d1", "/d2")
        assert fs.read_file("/d2/f") == b"v"
        assert not fs.exists("/d1")

    def test_link_shares_content_and_nlink(self, fs):
        fs.create_file("/a", b"shared")
        fs.link("/a", "/b")
        assert fs.read_file("/b") == b"shared"
        assert fs.stat("/a").nlink == 2

    def test_link_existing_dest_eexist(self, fs):
        fs.create_file("/a", b"")
        fs.create_file("/b", b"")
        with pytest.raises(FsError) as excinfo:
            fs.link("/a", "/b")
        assert excinfo.value.errno is Errno.EEXIST

    def test_link_to_directory_eperm(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FsError) as excinfo:
            fs.link("/d", "/l")
        assert excinfo.value.errno is Errno.EPERM

    def test_unlink_directory_eisdir(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FsError) as excinfo:
            fs.unlink("/d")
        assert excinfo.value.errno is Errno.EISDIR

    def test_writes_through_one_link_visible_via_other(self, fs):
        fs.create_file("/a", b"")
        fs.link("/a", "/b")
        fd = fs.open("/a", O_WRONLY)
        fs.write(fd, b"data")
        fs.close(fd)
        assert fs.read_file("/b") == b"data"


class TestStat:
    def test_stat_file_size(self, fs):
        fs.create_file("/f", b"12345")
        st = fs.stat("/f")
        assert st.size == 5 and not st.is_dir

    def test_stat_dir(self, fs):
        fs.mkdir("/d")
        assert fs.stat("/d").is_dir

    def test_stat_missing_enoent(self, fs):
        with pytest.raises(FsError):
            fs.stat("/missing")


class TestFsProperties:
    @given(st.binary(max_size=128))
    def test_create_read_identity(self, data):
        fs = SimFilesystem()
        fs.create_file("/f", data)
        assert fs.read_file("/f") == data

    @given(st.lists(
        st.text(alphabet="abcdef", min_size=1, max_size=6), min_size=1,
        max_size=10, unique=True,
    ))
    def test_listdir_is_sorted_and_complete(self, names):
        fs = SimFilesystem()
        fs.mkdir("/d")
        for name in names:
            fs.create_file(f"/d/{name}", b"")
        assert fs.listdir("/d") == sorted(names)

    @given(st.binary(max_size=64), st.integers(min_value=1, max_value=16))
    def test_chunked_read_equals_whole(self, data, chunk):
        fs = SimFilesystem()
        fs.create_file("/f", data)
        fd = fs.open("/f")
        out = b""
        while True:
            piece = fs.read(fd, chunk)
            if not piece:
                break
            out += piece
        assert out == data
