"""End-to-end observability: traces, metrics, checkpoints, CLI, campaign.

The headline property (ISSUE acceptance): a recorded trace of a
process-pool exploration replays into a tree where propose / dispatch /
execute / inject / verdict spans nest correctly with matching trace ids
across the process boundary.
"""

from __future__ import annotations

import functools
import json

from repro.campaign import Campaign, CampaignJob
from repro.cluster import (
    ClusterExplorer,
    FaultTolerantFabric,
    LocalCluster,
    NodeManager,
    ProcessPoolCluster,
)
from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.cache import ResultCache
from repro.core.checkpoint import CHECKPOINT_VERSION, load_checkpoint
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
    assemble,
    parse_prometheus,
    read_jsonl,
)
from repro.sim.targets import target_by_name


def small_space(target) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 20), function=target.libc_functions(), call=[0, 1, 2],
    )


def serial_session(target, *, iterations=25, seed=2, metrics=None,
                   tracer=None, cache=None, **kwargs) -> ExplorationSession:
    return ExplorationSession(
        runner=TargetRunner(target, cache=cache, metrics=metrics,
                            tracer=tracer),
        space=small_space(target),
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(iterations),
        rng=seed,
        metrics=metrics,
        tracer=tracer,
        **kwargs,
    )


class TestTraceReconstruction:
    """Replay a recorded trace and verify the round pipeline nests."""

    def test_process_pool_spans_nest_across_the_process_boundary(self):
        target = target_by_name("coreutils")
        ring = RingBufferSink(capacity=100_000)
        tracer = Tracer(sinks=[ring])
        metrics = MetricsRegistry()
        pool = ProcessPoolCluster(
            functools.partial(target_by_name, "coreutils"), workers=2,
        )
        explorer = ClusterExplorer(
            pool, small_space(target), standard_impact(),
            FitnessGuidedSearch(), IterationBudget(12), rng=3,
            batch_size=4, metrics=metrics, tracer=tracer,
        )
        try:
            results = explorer.run()
        finally:
            pool.close()
        assert len(results) == 12

        traces = assemble(ring.events)
        assert set(traces) == {tracer.trace_id}  # one trace id everywhere
        tree = traces[tracer.trace_id]

        rounds = tree["roots"]
        assert all(n["event"]["name"] == "round" for n in rounds)
        assert len(rounds) == 3  # 12 tests / batch 4

        executes_seen = 0
        injects_seen = 0
        for round_node in rounds:
            names = [c["event"]["name"] for c in round_node["children"]]
            assert names[0] == "propose"
            assert names[1] == "dispatch"
            assert names.count("verdict") == 4
            (dispatch,) = [c for c in round_node["children"]
                           if c["event"]["name"] == "dispatch"]
            for child in dispatch["children"]:
                event = child["event"]
                # Worker-side spans: produced in another process, with
                # request-derived ids, parented to this dispatch span.
                assert event["name"] == "execute"
                assert event["span"].startswith("w")
                assert event["parent"] == dispatch["event"]["span"]
                assert event["trace"] == tracer.trace_id
                executes_seen += 1
                for grandchild in child["children"]:
                    assert grandchild["event"]["name"] == "inject"
                    assert grandchild["event"]["parent"] == event["span"]
                    injects_seen += 1
        assert executes_seen == 12
        # The rng=3 trajectory injects at least one real fault.
        assert injects_seen >= 1

        snapshot = metrics.snapshot()
        assert snapshot["histograms"]["fabric.dispatch_seconds"]["count"] == 3
        assert snapshot["counters"]["session.tests"] == 12

    def test_serial_trace_includes_cache_lookup(self):
        target = target_by_name("coreutils")
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        serial_session(target, iterations=6, tracer=tracer,
                       cache=ResultCache()).run()
        tree = assemble(ring.events)[tracer.trace_id]
        (dispatch,) = [
            c for c in tree["roots"][0]["children"]
            if c["event"]["name"] == "dispatch"
        ]
        names = [c["event"]["name"] for c in dispatch["children"]]
        assert "cache_lookup" in names and "execute" in names


class TestCheckpointMetadata:
    def test_metrics_snapshot_and_trace_schema_land_in_meta(self, tmp_path):
        target = target_by_name("coreutils")
        path = tmp_path / "ck.json"
        metrics = MetricsRegistry()
        session = serial_session(
            target, iterations=20, metrics=metrics,
            checkpoint_path=path, checkpoint_every=10,
        )
        session.run()
        checkpoint = load_checkpoint(path)
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.meta["trace_schema"] == TRACE_SCHEMA_VERSION
        embedded = checkpoint.meta["metrics"]
        assert embedded["counters"]["session.tests"] == 20
        assert embedded["counters"]["runner.tests"] == 20
        # The whole snapshot survives the JSON round trip verbatim.
        assert json.loads(json.dumps(embedded)) == embedded

    def test_resume_unaffected_by_observability_metadata(self, tmp_path):
        target = target_by_name("coreutils")
        path = tmp_path / "ck.json"
        serial_session(target, iterations=20, metrics=MetricsRegistry(),
                       checkpoint_path=path, checkpoint_every=5).run()
        resumed = serial_session(
            target, iterations=30, metrics=MetricsRegistry(),
            resume_from=load_checkpoint(path),
        ).run()
        uninterrupted = serial_session(target, iterations=30).run()
        from repro.core.checkpoint import history_digest

        assert history_digest(list(resumed)) == \
            history_digest(list(uninterrupted))


class TestDeterministicCounters:
    def test_identical_runs_report_identical_counters(self):
        target = target_by_name("coreutils")

        def counters():
            metrics = MetricsRegistry()
            serial_session(target, iterations=25, metrics=metrics,
                           cache=ResultCache()).run()
            return metrics.counters()

        first, second = counters(), counters()
        assert first == second
        assert first["session.tests"] == 25
        assert any(k.startswith("sim.injected_calls") for k in first)

    def test_instrumented_and_plain_runs_explore_identically(self):
        target = target_by_name("coreutils")
        plain = serial_session(target, iterations=25).run()
        observed = serial_session(
            target, iterations=25, metrics=MetricsRegistry(),
            tracer=Tracer(sinks=[RingBufferSink()]),
        ).run()
        from repro.core.checkpoint import history_digest

        assert history_digest(list(plain)) == history_digest(list(observed))


class TestThreadFabricMetrics:
    def test_worker_utilization_gauges_collected(self):
        target = target_by_name("coreutils")
        target.suite  # pre-build once so managers share it
        metrics = MetricsRegistry()
        managers = [
            NodeManager(f"n{i}", target, metrics=metrics) for i in range(2)
        ]
        fabric = FaultTolerantFabric(LocalCluster(managers),
                                     sleep=lambda _: None)
        ClusterExplorer(
            fabric, small_space(target), standard_impact(),
            FitnessGuidedSearch(), IterationBudget(10), rng=1,
            batch_size=2, metrics=metrics,
        ).run()
        snapshot = metrics.snapshot()
        gauges = snapshot["gauges"]
        assert gauges['fabric.worker_executed{worker="n0"}'] \
            + gauges['fabric.worker_executed{worker="n1"}'] == 10
        assert gauges["fabric.health.completed"] == 10
        assert snapshot["counters"]['manager.tests{manager="n0"}'] \
            + snapshot["counters"]['manager.tests{manager="n1"}'] == 10


class TestHotPathGauges:
    """The perf-tentpole series (encode cost, wire economy, batch size)
    must reach the Prometheus export (satellite)."""

    def test_socket_fabric_exports_wire_cost_gauges(self):
        from repro.cluster import ExplorerNode, SocketFabric
        from repro.obs import to_prometheus

        target = target_by_name("coreutils")
        metrics = MetricsRegistry()
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        node = ExplorerNode(
            (net.host, net.port),
            functools.partial(target_by_name, "coreutils"),
            name="obs", capacity=4,
        )
        thread = node.run_in_thread()
        try:
            net.wait_for_nodes(timeout=15)
            ClusterExplorer(
                net, small_space(target), standard_impact(),
                FitnessGuidedSearch(), IterationBudget(12), rng=2,
                batch_size=4, metrics=metrics,
            ).run()
            net.bind_metrics(metrics)
            parsed = parse_prometheus(to_prometheus(metrics))
        finally:
            net.close()
            node.stop()
            thread.join(timeout=10)
        encode = parsed["afex_fabric_dispatch_encode_seconds"]["samples"]
        assert encode["afex_fabric_dispatch_encode_seconds"] >= 0.0
        per_test = parsed["afex_fabric_net_bytes_per_test"]["samples"][
            "afex_fabric_net_bytes_per_test"]
        assert per_test > 0.0
        # The whole point of wire v2: a test costs tens of bytes, not
        # the ~1 kB the JSON dialect paid.
        assert per_test < 1000.0

    def test_process_pool_exports_encode_seconds(self):
        from repro.obs import to_prometheus

        target = target_by_name("coreutils")
        metrics = MetricsRegistry()
        pool = ProcessPoolCluster(
            functools.partial(target_by_name, "coreutils"), workers=2,
        )
        pool.bind_metrics(metrics)
        try:
            ClusterExplorer(
                pool, small_space(target), standard_impact(),
                FitnessGuidedSearch(), IterationBudget(8), rng=2,
                batch_size=4, metrics=metrics,
            ).run()
            parsed = parse_prometheus(to_prometheus(metrics))
        finally:
            pool.close()
        samples = parsed["afex_fabric_dispatch_encode_seconds"]["samples"]
        assert samples["afex_fabric_dispatch_encode_seconds"] > 0.0

    def test_adaptive_batching_exports_batch_size_gauge(self):
        from repro.obs import to_prometheus

        target = target_by_name("coreutils")
        metrics = MetricsRegistry()
        managers = [NodeManager(f"g{i}", target) for i in range(2)]
        ClusterExplorer(
            LocalCluster(managers), small_space(target),
            standard_impact(), FitnessGuidedSearch(), IterationBudget(20),
            rng=2, batch_size="auto", metrics=metrics,
        ).run()
        parsed = parse_prometheus(to_prometheus(metrics))
        size = parsed["afex_fabric_batch_size"]["samples"][
            "afex_fabric_batch_size"]
        assert size >= 2  # a real dispatch width, adapted at least once
        assert parsed["afex_fabric_batch_per_test_seconds"]["samples"][
            "afex_fabric_batch_per_test_seconds"] > 0.0


class TestCampaignWiring:
    def test_outcome_carries_snapshot_and_scorecard_renders_hit_ratio(self):
        target = target_by_name("coreutils")
        metrics = MetricsRegistry()
        cache = ResultCache()
        campaign = Campaign()
        campaign.add(CampaignJob(
            name="coreutils-obs", target=target,
            space=small_space(target), iterations=15, seed=1,
            cache=cache, metrics=metrics,
        ))
        (outcome,) = campaign.run(report_top_n=3)
        assert outcome.metrics_snapshot is not None
        assert outcome.metrics_snapshot["counters"]["session.tests"] == 15
        assert "cache.hit_ratio" in outcome.metrics_snapshot["gauges"]
        text = Campaign.scorecard([outcome]).render()
        assert "cache hit%" in text


class TestCliFlags:
    def test_profile_metrics_and_trace_outputs(self, tmp_path, monkeypatch,
                                               capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        code = main([
            "run", "--target", "coreutils", "--iterations", "15",
            "--seed", "1", "--profile",
            "--metrics-out", str(tmp_path / "metrics.prom"),
            "--trace-out", str(tmp_path / "trace.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "history digest:" in out
        assert "profile: BENCH_obs.json" in out

        parsed = parse_prometheus((tmp_path / "metrics.prom").read_text())
        assert parsed["afex_session_tests_total"]["samples"][
            "afex_session_tests_total"] == 15.0
        assert "afex_runner_execute_seconds" in parsed

        events = read_jsonl(tmp_path / "trace.jsonl")
        assert {e["v"] for e in events} == {TRACE_SCHEMA_VERSION}
        tree = assemble(events)
        (trace_id,) = tree.keys()
        assert all(n["event"]["name"] == "round"
                   for n in tree[trace_id]["roots"])

        payload = json.loads((tmp_path / "BENCH_obs.json").read_text())
        assert payload["benchmark"] == "observability"
        assert payload["meta"]["target"] == "coreutils"
        assert payload["counters"]["session.tests"] == 15
        assert payload["histograms"]["runner.execute_seconds"]["count"] == 15

    def test_run_without_flags_collects_nothing(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--target", "coreutils", "--iterations", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "history digest:" in out
        assert "profile:" not in out
