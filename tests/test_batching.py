"""Tests for speculative batch proposal and the parallel fabrics.

Covers the §6.1 batching contract: ``propose_batch(1)`` must reproduce
serial ``propose()`` exactly, an ``ExplorationSession`` at
``batch_size=1`` must be byte-identical to the pre-batching serial loop,
and the process-pool fabric must return reports in request order with
graceful degradation when the target cannot cross a process boundary.
"""

from __future__ import annotations

import functools
import random

import pytest

from repro.cluster import ClusterExplorer, ProcessPoolCluster
from repro.cluster.messages import TestRequest as ClusterTestRequest
from repro.core import (
    ExhaustiveSearch,
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    ResultSet,
    TargetRunner,
    standard_impact,
)
from repro.errors import SearchError
from repro.sim.targets import target_by_name


def small_space(target) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=target.libc_functions(), call=[0, 1, 2]
    )


def serial_reference_loop(runner, space, metric, strategy, target, rng):
    """The pre-batching serial explorer, verbatim: propose/execute/observe
    one fault at a time.  Batched sessions at ``batch_size=1`` must
    reproduce this trajectory byte for byte."""
    from repro.core.results import ExecutedTest

    strategy.bind(space, rng)
    executed = []
    while not target.done(executed):
        fault = strategy.propose()
        if fault is None:
            break
        result = runner(fault)
        impact = metric.score(result)
        strategy.observe(fault, impact, result)
        executed.append(ExecutedTest(
            index=len(executed), fault=fault, result=result,
            impact=impact, fitness=impact,
        ))
    return ResultSet(executed)


class TestProposeBatch:
    @pytest.mark.parametrize("strategy_factory", [
        RandomSearch, ExhaustiveSearch,
        lambda: FitnessGuidedSearch(initial_batch=10),
    ])
    def test_batched_proposal_equals_serial(self, coreutils,
                                            strategy_factory):
        """propose_batch(k) must emit the same faults, in the same
        order, as k serial propose() calls with an identical RNG (no
        feedback in between)."""
        space = small_space(coreutils)
        serial = strategy_factory()
        serial.bind(space, random.Random(11))
        expected = []
        for _ in range(20):
            fault = serial.propose()
            if fault is None:
                break
            expected.append(fault)

        batched = strategy_factory()
        batched.bind(space, random.Random(11))
        got = []
        while len(got) < 20:
            batch = batched.propose_batch(min(7, 20 - len(got)))
            if not batch:
                break
            got.extend(batch)
        assert got == expected

    def test_batch_of_one_is_single_propose(self, coreutils):
        space = small_space(coreutils)
        a = RandomSearch()
        a.bind(space, random.Random(3))
        b = RandomSearch()
        b.bind(space, random.Random(3))
        assert a.propose_batch(1) == [b.propose()]

    def test_batch_never_repeats_within_or_across(self, coreutils):
        space = small_space(coreutils)
        strategy = FitnessGuidedSearch(initial_batch=5)
        strategy.bind(space, random.Random(2))
        seen = set()
        for _ in range(6):
            for fault in strategy.propose_batch(8):
                assert fault not in seen
                seen.add(fault)

    def test_exhaustive_batch_is_enumeration_slice(self, coreutils):
        space = FaultSpace.product(test=[1, 2], function=["malloc"],
                                   call=[0, 1])
        strategy = ExhaustiveSearch()
        strategy.bind(space, random.Random(0))
        first = strategy.propose_batch(3)
        rest = strategy.propose_batch(3)
        assert len(first) == 3 and len(rest) == 1  # 4-point space drained
        assert strategy.propose_batch(3) == []

    def test_invalid_batch_size_rejected(self, coreutils):
        strategy = RandomSearch()
        strategy.bind(small_space(coreutils), random.Random(0))
        with pytest.raises(SearchError):
            strategy.propose_batch(0)

    def test_seed_cursor_survives_rebind(self, coreutils):
        """Satellite regression: initial_seeds is immutable config; a
        rebound strategy instance must not have lost its seeds."""
        from repro.core.fault import Fault

        space = small_space(coreutils)
        seeds = (Fault.of(test=1, function="malloc", call=1),
                 Fault.of(test=2, function="stat", call=1))
        strategy = FitnessGuidedSearch(initial_seeds=seeds)
        strategy.bind(space, random.Random(1))
        assert strategy.propose() == seeds[0]
        assert strategy.initial_seeds == seeds  # config untouched

        fresh = FitnessGuidedSearch(initial_seeds=seeds)
        fresh.bind(space, random.Random(1))
        assert fresh.propose() == seeds[0]


class TestBatchedSession:
    def run_session(self, coreutils, batch_size, iterations=60, seed=3,
                    batch_runner=None):
        return ExplorationSession(
            TargetRunner(coreutils),
            small_space(coreutils),
            standard_impact(),
            FitnessGuidedSearch(initial_batch=10),
            IterationBudget(iterations),
            rng=seed,
            batch_size=batch_size,
            batch_runner=batch_runner,
        ).run()

    def test_batch_size_one_matches_pre_batching_loop(self, coreutils):
        """The acceptance bar: batch_size=1 is byte-identical to the
        serial propose/execute/observe loop."""
        reference = serial_reference_loop(
            TargetRunner(coreutils), small_space(coreutils),
            standard_impact(), FitnessGuidedSearch(initial_batch=10),
            IterationBudget(60), random.Random(3),
        )
        batched = self.run_session(coreutils, batch_size=1)
        assert batched.to_json() == reference.to_json()

    def test_default_batch_size_is_one(self, coreutils):
        session = ExplorationSession(
            TargetRunner(coreutils), small_space(coreutils),
            standard_impact(), RandomSearch(), IterationBudget(5), rng=1,
        )
        assert session.batch_size == 1

    def test_wide_batches_explore_same_budget(self, coreutils):
        results = self.run_session(coreutils, batch_size=8)
        assert len(results) >= 60          # may overshoot by < one batch
        assert len(results) < 60 + 8
        assert results.failed_count() > 0

    def test_batch_runner_receives_whole_generations(self, coreutils):
        runner = TargetRunner(coreutils)
        batches = []

        def fabric(faults):
            batches.append(len(faults))
            return [runner(f) for f in faults]

        results = self.run_session(coreutils, batch_size=6,
                                   batch_runner=fabric)
        assert len(results) >= 60
        assert batches and all(size <= 6 for size in batches)
        assert any(size > 1 for size in batches)

    def test_mismatched_batch_runner_rejected(self, coreutils):
        with pytest.raises(SearchError):
            self.run_session(coreutils, batch_size=4,
                             batch_runner=lambda faults: [])

    def test_invalid_batch_size_rejected(self, coreutils):
        with pytest.raises(SearchError):
            self.run_session(coreutils, batch_size=0)


class TestProcessPoolCluster:
    def make_pool(self, workers=2):
        return ProcessPoolCluster(
            functools.partial(target_by_name, "coreutils"), workers=workers
        )

    def request(self, i):
        return ClusterTestRequest(
            request_id=i, subspace="",
            scenario={"test": 1 + i % 29, "function": "malloc", "call": 1},
        )

    def test_reports_in_request_order(self):
        with self.make_pool() as pool:
            reports = pool.run_batch([self.request(i) for i in range(11)])
        assert [r.request_id for r in reports] == list(range(11))

    def test_matches_in_process_execution(self, coreutils):
        """The pool crosses a process boundary but must report exactly
        what an in-process manager reports for the same scenarios."""
        from repro.cluster import NodeManager

        requests = [self.request(i) for i in range(6)]
        with self.make_pool() as pool:
            remote = pool.run_batch(requests)
        manager = NodeManager("ref", coreutils)
        local = [manager.execute(r) for r in requests]
        for got, want in zip(remote, local):
            assert got.failed == want.failed
            assert got.crash_kind == want.crash_kind
            assert got.exit_code == want.exit_code
            assert got.coverage == want.coverage
            assert got.steps == want.steps

    def test_empty_batch(self):
        with self.make_pool() as pool:
            assert pool.run_batch([]) == []

    def test_workers_must_be_positive(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError):
            self.make_pool(workers=0)

    def test_unpicklable_target_degrades_gracefully(self):
        pool = ProcessPoolCluster(lambda: target_by_name("coreutils"),
                                  workers=2)
        assert pool.is_degraded
        with pytest.warns(UserWarning, match="degrading to in-process"):
            reports = pool.run_batch([self.request(i) for i in range(4)])
        assert [r.request_id for r in reports] == list(range(4))

    def test_degradation_warns_exactly_once(self):
        """The in-process fallback announces itself once, then stays
        quiet — and keeps producing ordered reports batch after batch."""
        import warnings as warnings_module

        pool = ProcessPoolCluster(lambda: target_by_name("coreutils"),
                                  workers=2, name="oncepool")
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            first = pool.run_batch([self.request(i) for i in range(5)])
            second = pool.run_batch([self.request(i) for i in range(5, 9)])
        fallback_warnings = [
            w for w in caught if "degrading to in-process" in str(w.message)
        ]
        assert len(fallback_warnings) == 1
        assert "oncepool" in str(fallback_warnings[0].message)
        assert [r.request_id for r in first] == list(range(5))
        assert [r.request_id for r in second] == list(range(5, 9))
        assert pool.health.fallbacks == 1

    def test_end_to_end_exploration(self, coreutils):
        with self.make_pool() as pool:
            explorer = ClusterExplorer(
                pool, small_space(coreutils), standard_impact(),
                RandomSearch(), IterationBudget(16), rng=9, batch_size=8,
            )
            results = explorer.run()
        assert len(results) >= 16
        assert results.failed_count() > 0

    def test_deterministic_given_seed(self, coreutils):
        def explore():
            with self.make_pool() as pool:
                explorer = ClusterExplorer(
                    pool, small_space(coreutils), standard_impact(),
                    RandomSearch(), IterationBudget(12), rng=7,
                    batch_size=6,
                )
                return [t.fault for t in explorer.run()]

        assert explore() == explore()
