"""Tests for the fault-space description language (Fig. 3/4)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.dsl import format_fault_space, parse_fault_space, tokenize
from repro.core.faultspace import FaultSpace
from repro.errors import DslError

PAPER_FIG4 = """
function : { malloc, calloc, realloc }
errno : { ENOMEM }
retval : { 0 }
callNumber : [ 1 , 100 ] ;

function : { read }
errno : { EINTR }
retVal : { -1 }
callNumber : [ 1 , 50 ] ;
"""


class TestTokenizer:
    def test_tokenizes_punctuation_and_words(self):
        tokens = tokenize("f : { a , b } ;")
        assert [t.kind for t in tokens] == [
            "ident", ":", "{", "ident", ",", "ident", "}", ";",
        ]

    def test_numbers(self):
        tokens = tokenize("[ 10 , 20 ]")
        assert [t.text for t in tokens] == ["[", "10", ",", "20", "]"]

    def test_negative_numbers(self):
        tokens = tokenize("{ -1 }")
        assert tokens[1].kind == "number" and tokens[1].text == "-1"

    def test_comments_stripped(self):
        assert tokenize("a # comment here\n") == tokenize("a\n")

    def test_positions_reported(self):
        token = tokenize("  abc")[0]
        assert token.line == 1 and token.column == 3

    def test_bad_character_raises_with_location(self):
        with pytest.raises(DslError) as excinfo:
            tokenize("a : { $ }")
        assert excinfo.value.line == 1


class TestParser:
    def test_paper_fig4_example(self):
        space = parse_fault_space(PAPER_FIG4)
        assert len(space.subspaces) == 2
        mem, io = space.subspaces
        assert mem.axis("function").values == ("malloc", "calloc", "realloc")
        assert mem.axis("errno").values == ("ENOMEM",)
        assert len(mem.axis("callNumber")) == 100
        assert io.axis("function").values == ("read",)
        assert len(io.axis("callNumber")) == 50
        # total size: 3*1*1*100 + 1*1*1*50
        assert space.size() == 350

    def test_subtype_labels_subspace(self):
        space = parse_fault_space("disk\nfunction : { read, write } ;")
        assert space.subspaces[0].label == "disk"

    def test_multiple_subtypes_joined(self):
        space = parse_fault_space("disk io\nf : { a, b } ;")
        assert space.subspaces[0].label == "disk.io"

    def test_anonymous_subspaces_get_unique_labels(self):
        space = parse_fault_space("f : { a, b } ;\ng : { c, d } ;")
        labels = [s.label for s in space.subspaces]
        assert len(set(labels)) == 2

    def test_point_interval(self):
        space = parse_fault_space("call : [ 2 , 5 ] ;")
        assert space.subspaces[0].axis("call").values == (2, 3, 4, 5)

    def test_subinterval_axis(self):
        space = parse_fault_space("span : < 1 , 3 > ;")
        values = space.subspaces[0].axis("span").values
        assert (1, 3) in values and (2, 2) in values
        assert len(values) == 6

    def test_singleton_set_allowed(self):
        space = parse_fault_space("errno : { ENOMEM } ;")
        assert space.subspaces[0].axis("errno").values == ("ENOMEM",)

    def test_empty_input_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("")

    def test_unterminated_subspace_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("f : { a, b }")

    def test_subspace_without_parameters_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("justalabel ;")

    def test_empty_interval_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("call : [ 5 , 2 ] ;")

    def test_missing_comma_in_set_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("f : { a b } ;")

    def test_wrong_bracket_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("f : ( a ) ;")

    def test_interval_with_ident_rejected(self):
        with pytest.raises(DslError):
            parse_fault_space("call : [ a , b ] ;")


class TestWriter:
    def test_roundtrip_paper_example(self):
        space = parse_fault_space(PAPER_FIG4)
        text = format_fault_space(space)
        again = parse_fault_space(text)
        assert again.size() == space.size()
        assert [s.axis_names for s in again.subspaces] == \
               [s.axis_names for s in space.subspaces]

    def test_contiguous_int_axis_renders_as_interval(self):
        space = FaultSpace.product(call=range(1, 11))
        assert "[ 1 , 10 ]" in format_fault_space(space)

    def test_string_axis_renders_as_set(self):
        space = FaultSpace.product(f=["a", "b"])
        assert "{ a, b }" in format_fault_space(space)

    def test_subinterval_axis_renders_as_angle_interval(self):
        space = parse_fault_space("span : < 2 , 4 > ;")
        assert "< 2 , 4 >" in format_fault_space(space)

    @given(
        st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]),
                 min_size=1, max_size=4, unique=True),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    def test_roundtrip_property(self, names, low, span):
        space = FaultSpace.product(
            function=names, call=range(low, low + span)
        )
        again = parse_fault_space(format_fault_space(space))
        assert again.size() == space.size()
        assert set(f.values for f in again.enumerate()) == \
               set(f.values for f in space.enumerate())
