"""The metrics registry: exact bucket/percentile math, stable exports.

The observability layer's contract is that its numbers are *checkable*:
with an injected clock every observation is exact, so bucket counts,
percentile estimates, exposition text, and snapshots are deterministic
functions a test can compute independently.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    profile_payload,
    render_table,
    series_id,
    to_prometheus,
)


class TestSeriesId:
    def test_no_labels_is_the_bare_name(self):
        assert series_id("session.tests") == "session.tests"

    def test_labels_sorted_by_key(self):
        a = series_id("sim.injected_calls",
                      {"function": "malloc", "errno": "ENOMEM"})
        b = series_id("sim.injected_calls",
                      {"errno": "ENOMEM", "function": "malloc"})
        assert a == b == 'sim.injected_calls{errno="ENOMEM",function="malloc"}'


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counters() == {"a": 5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("a").inc(-1)

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_labeled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("m.tests", manager="n0").inc()
        registry.counter("m.tests", manager="n1").inc(2)
        assert registry.counters() == {
            'm.tests{manager="n0"}': 1, 'm.tests{manager="n1"}': 2,
        }


class TestHistogramBuckets:
    def test_boundary_is_inclusive_upper_bound(self):
        h = Histogram("h", boundaries=(1.0, 2.0))
        h.observe(1.0)   # exactly on the first boundary -> first bucket
        h.observe(1.001)
        h.observe(5.0)   # above the last boundary -> overflow
        assert h.bucket_counts == [1, 1, 1]

    def test_rejects_unsorted_or_empty_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(1.0, 1.0))

    def test_default_boundaries_strictly_increase(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == \
            sorted(set(DEFAULT_LATENCY_BUCKETS))


class TestHistogramPercentiles:
    """Exact percentile math: rank = ceil(p/100 * count), linear
    interpolation between the winning bucket's bounds by rank."""

    def test_hand_computed_interpolation(self):
        h = Histogram("h", boundaries=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 3.5):
            h.observe(value)
        # count=4; p50 -> rank 2 -> bucket (1,2] holds obs #2 and is its
        # only one: 1.0 + (2.0-1.0) * (2-1)/1 = 2.0
        assert h.percentile(50) == pytest.approx(2.0)
        # p75 -> rank 3 -> bucket (2,4], first of its two obs:
        # 2.0 + 2.0 * 1/2 = 3.0
        assert h.percentile(75) == pytest.approx(3.0)
        assert h.percentile(100) == pytest.approx(4.0)

    def test_overflow_bucket_reports_the_max(self):
        h = Histogram("h", boundaries=(1.0,))
        h.observe(7.5)
        h.observe(9.25)
        assert h.percentile(50) == 9.25  # no upper bound to interpolate to
        assert h.percentile(99) == 9.25

    def test_empty_histogram_is_zero(self):
        h = Histogram("h", boundaries=(1.0,))
        assert h.percentile(50) == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0}

    def test_percentile_range_validated(self):
        h = Histogram("h", boundaries=(1.0,))
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_summary_digest(self):
        h = Histogram("h", boundaries=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        digest = h.summary()
        assert digest["count"] == 2
        assert digest["sum"] == pytest.approx(2.0)
        assert digest["min"] == 0.5 and digest["max"] == 1.5
        assert digest["mean"] == pytest.approx(1.0)


class TestInjectedClock:
    def test_timer_observes_exact_durations(self):
        now = [0.0]
        registry = MetricsRegistry(clock=lambda: now[0])
        with registry.timer("op.seconds", op="save"):
            now[0] += 0.25
        with registry.timer("op.seconds", op="save"):
            now[0] += 0.75
        h = registry.histogram("op.seconds", op="save")
        assert h.count == 2
        assert h.total == pytest.approx(1.0)
        assert h.min == 0.25 and h.max == 0.75


class TestCollectors:
    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        pulls = []
        registry.register_collector(
            lambda reg: (pulls.append(1), reg.gauge("lazy").set(len(pulls)))
        )
        assert pulls == []  # nothing until a snapshot is taken
        assert registry.snapshot()["gauges"]["lazy"] == 1
        assert registry.snapshot()["gauges"]["lazy"] == 2


class TestPrometheusExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("session.tests").inc(12)
        registry.counter("sim.injected_calls", function="read",
                         errno="EIO").inc(3)
        registry.gauge("fabric.queue_depth").set(4)
        h = registry.histogram("fabric.dispatch_seconds",
                               boundaries=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            h.observe(value)
        return registry

    def test_counters_gain_total_suffix_and_labels_survive(self):
        text = to_prometheus(self._registry())
        assert "# TYPE afex_session_tests_total counter" in text
        assert "afex_session_tests_total 12" in text
        assert ('afex_sim_injected_calls_total'
                '{errno="EIO",function="read"} 3') in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = to_prometheus(self._registry())
        assert 'afex_fabric_dispatch_seconds_bucket{le="0.1"} 1' in text
        assert 'afex_fabric_dispatch_seconds_bucket{le="1"} 2' in text
        assert 'afex_fabric_dispatch_seconds_bucket{le="+Inf"} 3' in text
        assert "afex_fabric_dispatch_seconds_count 3" in text

    def test_parse_round_trips_values(self):
        registry = self._registry()
        parsed = parse_prometheus(to_prometheus(registry))
        assert parsed["afex_session_tests_total"]["type"] == "counter"
        assert parsed["afex_session_tests_total"]["samples"] == {
            "afex_session_tests_total": 12.0,
        }
        assert parsed["afex_fabric_queue_depth"]["samples"] == {
            "afex_fabric_queue_depth": 4.0,
        }
        histogram = parsed["afex_fabric_dispatch_seconds"]
        assert histogram["type"] == "histogram"
        assert histogram["samples"][
            'afex_fabric_dispatch_seconds_bucket{le="+Inf"}'] == 3.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all{{{")


class TestRenderAndProfile:
    def test_table_lists_every_series(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc()
        registry.gauge("b.depth").set(2)
        registry.histogram("c.seconds", boundaries=(1.0,)).observe(0.5)
        text = render_table(registry)
        for series in ("a.count", "b.depth", "c.seconds"):
            assert series in text

    def test_profile_payload_shape(self):
        registry = MetricsRegistry()
        registry.counter("session.tests").inc(5)
        registry.histogram("x.seconds", boundaries=(1.0,)).observe(0.5)
        payload = profile_payload(registry, meta={"target": "coreutils"})
        assert payload["benchmark"] == "observability"
        assert payload["schema"] == 1
        assert payload["meta"] == {"target": "coreutils"}
        assert payload["counters"]["session.tests"] == 5
        digest = payload["histograms"]["x.seconds"]
        assert "p99" in digest and "bucket_counts" not in digest


class TestSnapshotStability:
    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "z.last"]

    def test_thread_safe_series_creation(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)

        def hammer() -> None:
            barrier.wait()
            for _ in range(200):
                registry.counter("shared").inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # One Counter object for all threads (creation is locked).
        assert registry.counter("shared") is registry.counter("shared")
        assert 0 < registry.counters()["shared"] <= 1600
