"""Shared network helpers for the socket-fabric test suites.

The pattern everywhere is "bind port 0, read back the real port": the
kernel picks a free ephemeral port, so parallel test runs never race
over a hard-coded number.  :func:`free_port` reserves one for tests
that need to know the port *before* a listener exists (e.g. a manager
restart that must come back on the same endpoint), and
:func:`endpoint` formats it the way ``SocketFabric`` expects.
"""

from __future__ import annotations

import socket

__all__ = ["endpoint", "free_port"]


def free_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port and return its number.

    The probe socket is closed before returning, so there is a window
    in which another process could grab the port — fine for tests on a
    loopback interface, where the only competitors are our own
    fixtures.  ``SO_REUSEADDR`` keeps a lingering TIME_WAIT entry from
    a previous test from failing the re-bind.
    """
    with socket.socket() as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def endpoint(port: int = 0, host: str = "127.0.0.1") -> str:
    """Format ``host:port`` the way ``SocketFabric`` parses it."""
    return f"{host}:{port}"
