"""Cross-model conformance harness for the fault-model plugin interface.

Every registered :class:`~repro.injection.models.FaultModel` must honor
the same contracts: its declared axes are exactly what its scenarios
carry and what :meth:`compile` consumes, its world hooks leave the
simulated world pristine after disarm, its scenarios survive the JSON
and binary wire codecs plus checkpoint serialization, and its campaigns
digest deterministically — batched exactly like serial.

The errno differential gate at the bottom is the refactor's keystone:
the historical ``LibFaultInjector`` and the plugin-based
``ModelInjector("errno")`` must produce byte-identical campaign digests
on every bundled target.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.checkpoint import (
    build_checkpoint,
    history_digest,
    load_checkpoint,
    save_checkpoint,
)
from repro.cluster.messages import TestReport, TestRequest
from repro.cluster.wire import (
    decode_binary_frame,
    encode_report_frame,
    encode_work_frame,
)
from repro.errors import InjectionError
from repro.injection import LibFaultInjector
from repro.injection.models import (
    ModelInjector,
    ScenarioPlan,
    canonical_spec,
    compose_models,
    model_by_name,
    model_injector,
    model_space,
    registered_models,
)
from repro.sim.coverage import Coverage
from repro.sim.filesystem import SimFilesystem
from repro.sim.libc import SimLibc
from repro.sim.process import Env
from repro.sim.stack import CallStack
from repro.sim.targets import target_by_name
from tests.test_batching import serial_reference_loop

ALL_MODELS = registered_models()

#: a firing (non-zero) scenario for each model's own axes.
FIRING_ATTRS = {
    "errno": {"function": "open", "call": 1},
    "disk": {"disk_write": 2, "disk_mode": "corrupt"},
    "net": {"net_op": 1, "net_mode": "partition"},
    "bitflip": {"flip_access": 3, "flip_bit": 5},
}

#: the same axes at their explicit no-fault point.
NOOP_ATTRS = {
    "errno": {"function": "open", "call": 0},
    "disk": {"disk_write": 0, "disk_mode": "torn"},
    "net": {"net_op": 0, "net_mode": "delay"},
    "bitflip": {"flip_access": 0, "flip_bit": 1},
}


def fresh_env() -> Env:
    fs = SimFilesystem()
    stack = CallStack()
    libc = SimLibc(fs, stack)
    return Env(fs, libc, stack, Coverage(), random.Random(0))


def world_state(env: Env) -> tuple:
    """The three world-hook installation points, as one snapshot."""
    return (env.fs.disk_fault, env.libc.net_fault, env.libc.heap.bitflip)


class TestRegistry:
    def test_builtins_registered_in_rank_order(self):
        assert ALL_MODELS == ("errno", "disk", "net", "bitflip")

    def test_unknown_model_rejected(self):
        with pytest.raises(InjectionError, match="no fault model"):
            model_by_name("cosmic-rays")

    def test_spec_canonicalization_is_order_free(self):
        assert canonical_spec("disk+errno") == "errno+disk"
        assert canonical_spec("bitflip+net+errno") == "errno+net+bitflip"

    def test_duplicate_and_empty_specs_rejected(self):
        with pytest.raises(InjectionError, match="duplicate"):
            compose_models("errno+errno")
        with pytest.raises(InjectionError, match="empty"):
            compose_models("")


@pytest.mark.parametrize("name", ALL_MODELS)
class TestAxisContract:
    def test_axes_match_space_and_proposals(self, name, coreutils):
        model = model_by_name(name)
        axes = model.axes(coreutils)
        space = model_space(coreutils, [name])
        assert space.axis_names() == ("test",) + tuple(axes)
        # every proposal carries exactly the declared attributes and
        # compiles without complaint.
        strategy = FitnessGuidedSearch()
        strategy.bind(space, random.Random(5))
        for fault in strategy.propose_batch(10):
            attrs = dict(fault.attributes)
            assert set(attrs) == {"test"} | set(axes)
            model.compile(attrs)  # must not raise

    def test_firing_scenario_produces_machinery(self, name, coreutils):
        model = model_by_name(name)
        faults, hooks = model.compile(dict(FIRING_ATTRS[name]))
        assert faults or hooks

    def test_noop_point_is_explicit(self, name, coreutils):
        model = model_by_name(name)
        assert model.compile(dict(NOOP_ATTRS[name])) == ((), ())

    def test_missing_own_axis_is_an_error(self, name, coreutils):
        model = model_by_name(name)
        with pytest.raises(InjectionError):
            model.compile({})


@pytest.mark.parametrize("name", [n for n in ALL_MODELS if n != "errno"])
class TestArmDisarm:
    def test_arm_installs_and_disarm_restores(self, name):
        model = model_by_name(name)
        _faults, hooks = model.compile(dict(FIRING_ATTRS[name]))
        assert hooks
        env = fresh_env()
        assert world_state(env) == (None, None, None)
        for hook in hooks:
            hook.arm(env)
        assert any(state is not None for state in world_state(env))
        for hook in hooks:
            hook.disarm(env)
        assert world_state(env) == (None, None, None)

    def test_hooks_are_reusable_across_runs(self, name):
        # Plans are cached and replayed; per-run state must live on the
        # world, not the hook.
        model = model_by_name(name)
        _faults, hooks = model.compile(dict(FIRING_ATTRS[name]))
        for _ in range(2):
            env = fresh_env()
            for hook in hooks:
                hook.arm(env)
            for hook in hooks:
                hook.disarm(env)
            assert world_state(env) == (None, None, None)


class TestComposition:
    def test_injector_merges_all_models(self):
        injector = ModelInjector("errno+disk+net+bitflip")
        attrs = {"test": 1}
        for name in ALL_MODELS:
            attrs.update(FIRING_ATTRS[name])
        plan = injector.plan_for(attrs)
        assert isinstance(plan, ScenarioPlan)
        assert len(plan.faults) == 1  # errno contributes the atomic fault
        assert len(plan.hooks) == 3  # one world hook per world model

    def test_composition_order_is_canonical(self):
        a = ModelInjector("disk+errno")
        b = ModelInjector("errno+disk")
        assert a.spec == b.spec == "errno+disk"
        attrs = {"test": 1, **FIRING_ATTRS["errno"], **FIRING_ATTRS["disk"]}
        assert a.plan_for(attrs) == b.plan_for(attrs)

    def test_duplicate_axis_rejected(self, coreutils):
        class Impostor(type(model_by_name("disk"))):
            name = "impostor"
            rank = 99

        with pytest.raises(InjectionError, match="more than one model"):
            model_space(coreutils, [model_by_name("disk"), Impostor()])

    def test_model_injector_factory_matches_constructor(self):
        assert model_injector("net+disk").name == ModelInjector("disk+net").name


def scenario_for(name: str) -> dict[str, object]:
    return {"test": 3, **FIRING_ATTRS[name]}


def payload_of(frame: bytes) -> bytes:
    """Strip the 4-byte length prefix ``_framed_binary`` prepends."""
    return frame[4:]


@pytest.mark.parametrize("name", ALL_MODELS)
class TestWireRoundTrip:
    def test_json_v1_round_trip(self, name):
        from repro.cluster.wire import request_from_wire, request_to_wire

        request = TestRequest(
            request_id=7, subspace="", scenario=scenario_for(name)
        )
        assert request_from_wire(request_to_wire(request)) == request

    def test_binary_v2_work_round_trip(self, name):
        requests = [
            TestRequest(request_id=i, subspace="", scenario=scenario_for(name))
            for i in range(3)
        ]
        frame = encode_work_frame(requests)
        decoded = decode_binary_frame(payload_of(frame))
        assert decoded["type"] == "work"
        assert decoded["requests"] == requests

    def test_binary_report_round_trip(self, name):
        report = TestReport(
            request_id=9,
            manager="node0",
            failed=True,
            crash_kind=None,
            exit_code=1,
            coverage=frozenset({"frame.replkv_put", "replkv.put.committed"}),
            injection_stack=("replkv_put",),
            injected=True,
            steps=120,
            invariant_violations=(f"{name}: acknowledged write lost",),
        )
        decoded = decode_binary_frame(
            payload_of(encode_report_frame([report], slots=2))
        )
        assert decoded["type"] == "report_batch"
        assert decoded["slots"] == 2
        assert decoded["reports"] == [report]


def run_campaign(target, spec: str, space: FaultSpace, seed: int = 42,
                 iterations: int = 40):
    session = ExplorationSession(
        runner=TargetRunner(target, model_injector(spec)),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(iterations),
        rng=seed,
    )
    return list(session.run())


def tiny_space(target, spec: str) -> FaultSpace:
    space = model_space(target, compose_models(spec))
    return space.restrict_axis("test", range(1, min(9, len(target.suite))))


@pytest.mark.parametrize("name", ALL_MODELS)
class TestCampaignDeterminism:
    def test_digest_stable_across_runs(self, name, coreutils):
        space = tiny_space(coreutils, name)
        first = run_campaign(coreutils, name, space)
        second = run_campaign(coreutils, name, space)
        assert history_digest(first) == history_digest(second)

    def test_checkpoint_round_trip(self, name, coreutils, tmp_path):
        space = tiny_space(coreutils, name)
        executed = run_campaign(coreutils, name, space, iterations=12)
        checkpoint = build_checkpoint(
            executed, random.Random(1), space, batch_size=1,
            meta={"fault_model": name},
        )
        path = save_checkpoint(tmp_path / "model.ckpt", checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.meta["fault_model"] == name
        assert loaded.digest() == history_digest(executed)
        restored = loaded.restore_executed()
        assert [test.fault for test in restored] == [
            test.fault for test in executed
        ]

    def test_batched_equals_serial(self, name, coreutils):
        space = tiny_space(coreutils, name)
        serial = serial_reference_loop(
            TargetRunner(coreutils, model_injector(name)),
            space,
            standard_impact(),
            FitnessGuidedSearch(),
            IterationBudget(30),
            random.Random(42),
        )
        session = ExplorationSession(
            runner=TargetRunner(coreutils, model_injector(name)),
            space=space,
            metric=standard_impact(),
            strategy=FitnessGuidedSearch(),
            target=IterationBudget(30),
            rng=42,
            batch_size=1,
        )
        assert history_digest(list(session.run())) == history_digest(
            list(serial)
        )


class TestErrnoDifferentialGate:
    """The keystone: errno-behind-the-plugin-interface is byte-identical
    to the historical direct injector on every bundled target."""

    @pytest.mark.parametrize(
        "target_name", ["coreutils", "minidb", "httpd", "docstore"]
    )
    def test_model_errno_digest_matches_libfi(self, target_name):
        target = target_by_name(target_name)
        space = FaultSpace.product(
            test=range(1, min(30, len(target.suite) + 1)),
            function=target.libc_functions(),
            call=range(0, 3),
        )

        def digest(injector) -> str:
            session = ExplorationSession(
                runner=TargetRunner(target, injector),
                space=space,
                metric=standard_impact(),
                strategy=FitnessGuidedSearch(),
                target=IterationBudget(60),
                rng=42,
            )
            return history_digest(list(session.run()))

        assert digest(LibFaultInjector()) == digest(model_injector("errno"))

    def test_default_space_unchanged_for_errno(self, coreutils):
        legacy = FaultSpace.product(
            test=range(1, len(coreutils.suite) + 1),
            function=coreutils.libc_functions(),
            call=range(0, 3),
        )
        modeled = model_space(coreutils, "errno")
        assert modeled.axis_names() == legacy.axis_names()
        assert modeled.size() == legacy.size()
