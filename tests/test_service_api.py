"""CampaignService + HTTP API: end-to-end multi-tenant behaviour."""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.request

import pytest

from repro.errors import ReportError
from repro.service.server import (
    CampaignService,
    ServiceClient,
    TenantConfig,
    serve,
)
from repro.service.store import ResultStore

COREUTILS_40_SEED1 = (
    "89d67e178ca102eb7184c79893c5d62a2c7a77dee3016a46e72c4f5c1ab5c78b"
)


@pytest.fixture
def service(tmp_path):
    store = ResultStore(tmp_path / "afex.db")
    svc = CampaignService(
        store,
        tenants=[
            TenantConfig("alice", priority=10, max_concurrent=2),
            TenantConfig("bob", priority=1, max_concurrent=1),
        ],
        workers=2,
        checkpoint_every=10,
    )
    yield svc
    svc.shutdown()


@pytest.fixture
def live(service):
    """The service behind a real HTTP endpoint, in a thread."""
    listen: dict = {}
    ready = threading.Event()

    def on_listen(host, port):
        listen.update(host=host, port=port)
        ready.set()

    thread = threading.Thread(
        target=lambda: asyncio.run(
            serve(service, "127.0.0.1", 0, on_listen=on_listen)
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(10)
    client = ServiceClient(f"{listen['host']}:{listen['port']}")
    yield client, service
    try:
        client.shutdown()
    except ReportError:
        pass
    thread.join(timeout=15)


class TestHttpApi:
    def test_ping(self, live):
        client, _ = live
        assert client.ping()["ok"] is True

    def test_submit_runs_to_digest_parity(self, live):
        client, _ = live
        job = client.submit(
            "alice", {"target": "coreutils", "iterations": 40, "seed": 1}
        )
        assert job["state"] == "queued"
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        # The service gate: a served campaign is the same campaign as a
        # direct `afex run` with the same spec.
        assert done["digest"] == COREUTILS_40_SEED1
        document = done["document"]
        assert document["version"] == 1
        assert document["digest"] == COREUTILS_40_SEED1
        assert document["campaign"]["tenant"] == "alice"
        assert document["dedup"]["total"] == 40
        assert document["first_result_s"] > 0

    def test_two_tenants_concurrently(self, live):
        client, _ = live
        a = client.submit(
            "alice", {"target": "coreutils", "iterations": 40, "seed": 1}
        )
        b = client.submit(
            "bob",
            {"target": "minidb", "iterations": 60, "seed": 1,
             "fabric": "threads", "workers": 2, "batch_size": 4},
        )
        done_a = client.wait(a["id"], timeout=120)
        done_b = client.wait(b["id"], timeout=120)
        assert done_a["state"] == done_b["state"] == "done"
        assert done_a["digest"] != done_b["digest"]
        jobs = client.jobs()
        assert {j["tenant"] for j in jobs} == {"alice", "bob"}

    def test_results_and_stats_endpoints(self, live):
        client, _ = live
        job = client.submit(
            "alice", {"target": "coreutils", "iterations": 30, "seed": 2}
        )
        client.wait(job["id"], timeout=120)
        rows = client.results(campaign=job["id"], limit=1000)
        assert len(rows) == 30
        assert [row["seq"] for row in rows] == list(range(30))
        failed = client.results(campaign=job["id"], failed="1", limit=1000)
        assert all(row["failed"] for row in failed)
        stats = client.stats()
        assert stats["store"]["done"] == 1
        assert stats["queue"]["tenants"]["alice"]["priority"] == 10

    def test_warm_engine_reuse_across_submissions(self, live):
        client, service = live
        spec = {"target": "coreutils", "iterations": 30, "seed": 3}
        first = client.wait(
            client.submit("alice", spec)["id"], timeout=120
        )
        second = client.wait(
            client.submit("alice", spec)["id"], timeout=120
        )
        assert first["digest"] == second["digest"]
        assert service.engines_reused >= 1
        # Identical campaigns dedup to zero new stored rows.
        assert second["document"]["dedup"]["new"] == 0

    def test_bad_submissions_are_400(self, live):
        client, _ = live
        with pytest.raises(ReportError, match="400"):
            client.submit("alice", {"target": "nope"})
        with pytest.raises(ReportError, match="400"):
            client.submit("alice", {"iterations": 10})
        with pytest.raises(ReportError, match="400"):
            client.submit("", {"target": "coreutils"})
        with pytest.raises(ReportError, match="400"):
            client.submit(
                "alice", {"target": "coreutils", "bogus_knob": 1}
            )

    def test_unknown_routes_are_404(self, live):
        client, _ = live
        with pytest.raises(ReportError, match="404"):
            client.job("no-such-job")
        with pytest.raises(ReportError, match="404"):
            client._request("GET", "/v2/other")

    def test_metrics_exposition(self, live):
        client, _ = live
        job = client.submit(
            "alice", {"target": "coreutils", "iterations": 10, "seed": 0}
        )
        client.wait(job["id"], timeout=120)
        text = urllib.request.urlopen(
            f"{client.endpoint}/v1/metrics", timeout=10
        ).read().decode()
        assert "service_jobs_submitted" in text.replace(".", "_")
        assert "service_store_campaigns" in text.replace(".", "_")

    def test_failed_job_reports_error(self, live):
        client, service = live
        # Corrupt a queued job's stored spec to force a worker failure.
        job = service.store.create_job(
            "job-bad", "alice", {"target": "coreutils", "bogus": True}
        )
        service.queue.push(job.id, "alice")
        service._wake.set()
        done = client.wait("job-bad", timeout=60)
        assert done["state"] == "failed"
        assert "bad spec" in done["error"]


class TestDurability:
    def test_restart_requeues_and_resumes(self, tmp_path):
        """A killed service forgets nothing: jobs queued or mid-flight
        requeue on restart and finish with the uninterrupted digest."""
        store = ResultStore(tmp_path / "afex.db")
        job = store.create_job(
            "job-1", "alice",
            {"target": "coreutils", "iterations": 40, "seed": 1},
            checkpoint=str(tmp_path / "job-1.ckpt"),
        )
        store.mark_running("job-1")  # "the process died right here"
        service = CampaignService(store, workers=1)
        assert service.queue.queued_count() == 1
        entry = service.queue.pop()
        service._run_job(entry)
        done = store.job("job-1")
        assert done.state == "done"
        assert done.digest == COREUTILS_40_SEED1
        service.shutdown()

    def test_resume_from_server_checkpoint(self, tmp_path):
        """A job killed mid-campaign resumes from its checkpoint and
        still lands on the uninterrupted digest."""
        from repro.service.spec import CampaignSpec

        spec = CampaignSpec(target="coreutils", iterations=40, seed=1)
        checkpoint = tmp_path / "job-1.ckpt"
        # Simulate the killed first attempt: a partial campaign that
        # wrote server-style checkpoints.
        engine = spec.build_engine()
        engine.explore(
            spec.build_space(engine.target), spec.build_strategy(),
            iterations=20, seed=1,
            checkpoint_path=checkpoint, checkpoint_every=10,
        )
        engine.close()
        assert checkpoint.exists()
        store = ResultStore(tmp_path / "afex.db")
        store.create_job(
            "job-1", "alice", spec.as_dict(), checkpoint=str(checkpoint)
        )
        store.mark_running("job-1")
        service = CampaignService(store, workers=1)
        entry = service.queue.pop()
        service._run_job(entry)
        done = store.job("job-1")
        assert done.state == "done"
        assert done.digest == COREUTILS_40_SEED1
        assert not checkpoint.exists()  # consumed on completion
        service.shutdown()


class TestScheduling:
    def test_priority_order_in_execution(self, tmp_path):
        """With one worker, a later gold job runs before earlier
        bronze jobs."""
        store = ResultStore(tmp_path / "afex.db")
        service = CampaignService(
            store,
            tenants=[
                TenantConfig("gold", priority=10, max_concurrent=1),
                TenantConfig("bronze", priority=0, max_concurrent=1),
            ],
            workers=1,
        )
        spec = {"target": "coreutils", "iterations": 5, "seed": 0}
        b1 = service.submit("bronze", spec)
        b2 = service.submit("bronze", spec)
        g1 = service.submit("gold", spec)
        order = []
        while (entry := service.queue.pop()) is not None:
            order.append(entry.job_id)
            service._run_job(entry)
            service.queue.finish(entry.job_id)
        assert order[0] == g1.id
        assert order.index(b1.id) < order.index(b2.id)
        service.shutdown()
