"""Tests for the streaming quality pipeline (§5 online + §7.4 live loop).

The load-bearing guarantees:

* the incremental partition is *identical* to the batch pass over the
  same inputs in the same order (property-tested);
* turning ``online_quality`` on without opting the strategy into the
  novelty signal leaves exploration trajectories byte-identical;
* the cluster state persisted in checkpoints survives a kill-and-resume
  round trip, and a drifted partition is detected, not silently kept.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.checkpoint import history_digest, load_checkpoint
from repro.core.impact import standard_impact
from repro.core.runner import TargetRunner
from repro.core.search import FitnessGuidedSearch, GeneticSearch, RandomSearch
from repro.core.session import ExplorationSession
from repro.core.targets import IterationBudget
from repro.errors import CheckpointError
from repro.quality.clustering import cluster_stacks, cluster_stacks_reference
from repro.quality.online import OnlineClusters, stack_digest


def small_space(target, max_call=1):
    from repro.core.faultspace import FaultSpace

    return FaultSpace.product(
        test=range(1, len(target.suite) + 1),
        function=target.libc_functions(),
        call=range(0, max_call + 1),
    )


class TestOnlineClustersEngine:
    def test_none_stack_is_a_singleton(self):
        engine = OnlineClusters()
        update = engine.add(None)
        assert update.kind == "none"
        assert update.novelty == 1.0
        assert engine.cluster_count == 1

    def test_first_stack_opens_a_cluster(self):
        engine = OnlineClusters()
        update = engine.add(("main", "f"))
        assert update.kind == "new"
        assert update.novelty == 1.0
        assert engine.cluster_count == 1

    def test_exact_repeat_scores_zero_novelty(self):
        engine = OnlineClusters()
        engine.add(("main", "f"))
        update = engine.add(("main", "f"))
        assert update.kind == "exact"
        assert update.novelty == 0.0
        assert engine.cluster_count == 1

    def test_near_stack_joins_with_discounted_novelty(self):
        engine = OnlineClusters(max_distance=1)
        engine.add(("main", "f", "g"))
        update = engine.add(("main", "f", "h"))
        assert update.kind == "joined"
        assert update.novelty == pytest.approx(1 / 3)
        assert engine.cluster_count == 1

    def test_bridging_stack_merges_clusters(self):
        engine = OnlineClusters(max_distance=1)
        engine.add(("m", "a", "x"))
        engine.add(("m", "b", "y"))  # distance 2: separate clusters
        assert engine.cluster_count == 2
        update = engine.add(("m", "a", "y"))  # within 1 of both
        assert update.kind == "bridged"
        assert update.merges == 1
        assert engine.cluster_count == 1

    def test_similarity_threshold_makes_distant_joins_fully_novel(self):
        # similarity 1/3 < 0.5 threshold -> no discount despite joining.
        engine = OnlineClusters(max_distance=2, similarity_threshold=0.5)
        engine.add(("a", "b", "c"))
        update = engine.add(("a", "x", "y"))
        assert update.kind == "joined"
        assert update.novelty == 1.0

    def test_digest_fast_path_skips_distances(self):
        engine = OnlineClusters()
        stack = ("main", "f")
        engine.add(stack, digest=stack_digest(stack))
        engine.add(stack, digest=stack_digest(stack))
        stats = engine.stats()
        assert stats["exact_matches"] == 1
        assert stats["comparisons"] == 0

    def test_bound_zero_only_merges_identical(self):
        engine = OnlineClusters(max_distance=0)
        engine.add(("a", "b"))
        engine.add(("a", "c"))
        engine.add(("a", "b"))
        assert engine.cluster_count == 2

    def test_stats_counts(self):
        engine = OnlineClusters(max_distance=1)
        for stack in [("a", "b"), ("a", "b"), ("a", "c"), None]:
            engine.add(stack)
        stats = engine.stats()
        assert stats["items"] == 4
        assert stats["distinct_stacks"] == 2
        assert stats["clusters"] == 2  # {ab, ac} merged + the None item
        assert stats["exact_matches"] == 1
        assert stats["novelty_ratio"] == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineClusters(max_distance=-1)
        with pytest.raises(ValueError):
            OnlineClusters(similarity_threshold=1.5)

    def test_delta_tracks_round_movement(self):
        engine = OnlineClusters()
        engine.add(("a",))
        first = engine.delta(1, None)
        assert first.items == 1 and first.new_clusters == 1
        before = engine.stats()
        engine.add(("a",))
        engine.add(("z", "z", "z"))
        second = engine.delta(2, before)
        assert second.items == 2
        assert second.new_clusters == 1
        assert second.clusters == 2

    def test_metrics_bound_engine_reports_series(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        engine = OnlineClusters(max_distance=1)
        engine.bind_metrics(metrics)
        for stack in [("a", "b"), ("a", "b"), ("a", "c"), ("q", "r", "s", "t")]:
            engine.add(stack)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["quality.exact_matches"] == 1
        assert snapshot["gauges"]["quality.clusters"] == engine.cluster_count
        assert "quality.novelty" in snapshot["histograms"]


# A vocabulary with collisions (few frames) so near-misses, exact dups,
# and bridges all appear in small hypothesis examples.
_stack_strategy = st.one_of(
    st.none(),
    st.lists(st.sampled_from("abcd"), max_size=6).map(tuple),
)


class TestPartitionIdentity:
    @given(st.lists(_stack_strategy, max_size=18),
           st.integers(min_value=0, max_value=3))
    def test_online_matches_batch_reference(self, stacks, max_distance):
        engine = OnlineClusters(max_distance=max_distance)
        for stack in stacks:
            engine.add(stack)
        online = engine.partition()
        batch = cluster_stacks_reference(stacks, max_distance=max_distance)
        assert online.assignment == batch.assignment
        assert online.clusters == batch.clusters

    @given(st.lists(_stack_strategy, max_size=14))
    def test_wrapper_is_the_engine(self, stacks):
        wrapped = cluster_stacks(stacks, max_distance=1)
        reference = cluster_stacks_reference(stacks, max_distance=1)
        assert wrapped.assignment == reference.assignment

    @given(st.lists(_stack_strategy, min_size=2, max_size=12),
           st.randoms(use_true_random=False))
    def test_any_arrival_order_yields_the_batch_partition(self, stacks, rnd):
        """Feeding the same stacks in any order matches the batch pass
        run over that order — the engine has no order-sensitive state
        beyond what the batch numbering itself encodes."""
        shuffled = list(stacks)
        rnd.shuffle(shuffled)
        engine = OnlineClusters(max_distance=1)
        for stack in shuffled:
            engine.add(stack)
        batch = cluster_stacks_reference(shuffled, max_distance=1)
        assert engine.partition().assignment == batch.assignment


class TestSessionIntegration:
    def _run(self, target, *, online, iterations=40, seed=7, strategy=None):
        session = ExplorationSession(
            runner=TargetRunner(target),
            space=small_space(target),
            metric=standard_impact(),
            strategy=strategy or FitnessGuidedSearch(),
            target=IterationBudget(iterations),
            rng=seed,
            online_quality=online,
        )
        results = session.run()
        return session, results

    def test_online_quality_off_by_default_is_byte_identical(self, coreutils):
        """The differential guarantee: engine on (novelty unconsumed)
        and engine off produce byte-identical exploration histories."""
        _, off = self._run(coreutils, online=False)
        _, on = self._run(coreutils, online=True)
        assert history_digest(list(off)) == history_digest(list(on))

    def test_genetic_strategy_also_unaffected(self, coreutils):
        _, off = self._run(coreutils, online=False, strategy=GeneticSearch())
        _, on = self._run(coreutils, online=True, strategy=GeneticSearch())
        assert history_digest(list(off)) == history_digest(list(on))

    def test_session_partition_matches_batch_over_history(self, coreutils):
        session, results = self._run(coreutils, online=True)
        stacks = [
            tuple(t.result.injection_stack)
            if t.result.injection_stack else None
            for t in results
        ]
        batch = cluster_stacks_reference(stacks, max_distance=1)
        assert session.quality.partition().assignment == batch.assignment
        assert len(session.quality) == len(results)

    def test_use_novelty_changes_the_trajectory(self, coreutils):
        strategy = FitnessGuidedSearch(use_novelty=True)
        _, on = self._run(coreutils, online=True, strategy=strategy,
                          iterations=60)
        _, off = self._run(coreutils, online=False, iterations=60)
        # Not a guarantee in general, but on this space the discounting
        # provably reorders the frontier; a silent no-op would regress.
        assert history_digest(list(on)) != history_digest(list(off))

    def test_quality_deltas_cover_every_round(self, coreutils):
        session, results = self._run(coreutils, online=True, iterations=20)
        assert session.quality_deltas
        assert sum(d.items for d in session.quality_deltas) == len(results)
        final = session.quality_deltas[-1]
        assert final.clusters == session.quality.cluster_count


class TestCheckpointedQuality:
    def _session(self, target, *, iterations, seed=11, path=None, every=0,
                 resume=None):
        return ExplorationSession(
            runner=TargetRunner(target),
            space=small_space(target),
            metric=standard_impact(),
            strategy=FitnessGuidedSearch(),
            target=IterationBudget(iterations),
            rng=seed,
            checkpoint_path=path,
            checkpoint_every=every,
            resume_from=resume,
            online_quality=True,
        )

    def test_cluster_state_lands_in_checkpoint_meta(self, coreutils, tmp_path):
        path = tmp_path / "ck.json"
        session = self._session(coreutils, iterations=25, path=path, every=10)
        session.run()
        checkpoint = load_checkpoint(path)
        persisted = checkpoint.meta["quality"]
        assert persisted["items"] == 25
        assert persisted["digest"] == session.quality.state_digest()

    def test_resume_replays_and_verifies_cluster_state(
        self, coreutils, tmp_path
    ):
        path = tmp_path / "ck.json"
        self._session(coreutils, iterations=25, path=path, every=10).run()
        checkpoint = load_checkpoint(path)
        resumed = self._session(
            coreutils, iterations=40, resume=checkpoint,
        )
        results = resumed.run()
        assert len(results) == 40
        # The resumed engine covers the full history, not just the tail.
        assert len(resumed.quality) == 40

    def test_tampered_cluster_digest_fails_the_resume(
        self, coreutils, tmp_path
    ):
        path = tmp_path / "ck.json"
        self._session(coreutils, iterations=20, path=path, every=10).run()
        checkpoint = load_checkpoint(path)
        checkpoint.meta["quality"]["digest"] = "0" * 64
        with pytest.raises(CheckpointError, match="drifted"):
            self._session(coreutils, iterations=30, resume=checkpoint).run()

    def test_unreadable_state_version_fails_the_resume(
        self, coreutils, tmp_path
    ):
        path = tmp_path / "ck.json"
        self._session(coreutils, iterations=20, path=path, every=10).run()
        checkpoint = load_checkpoint(path)
        checkpoint.meta["quality"]["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            self._session(coreutils, iterations=30, resume=checkpoint).run()

    def test_checkpoint_digest_unchanged_by_online_quality(
        self, coreutils, tmp_path
    ):
        """Digest safety: the cluster payload rides in ``meta``, which
        the history digest does not cover."""
        plain, quality = tmp_path / "a.json", tmp_path / "b.json"
        ExplorationSession(
            runner=TargetRunner(coreutils),
            space=small_space(coreutils),
            metric=standard_impact(),
            strategy=RandomSearch(),
            target=IterationBudget(20),
            rng=5,
            checkpoint_path=plain,
            checkpoint_every=10,
        ).run()
        self._session(coreutils, iterations=20, seed=5, path=quality,
                      every=10).run()
        # RandomSearch vs FitnessGuidedSearch propose differently, so
        # compare each against itself run with quality off:
        a = load_checkpoint(plain)
        resumed = ExplorationSession(
            runner=TargetRunner(coreutils),
            space=small_space(coreutils),
            metric=standard_impact(),
            strategy=RandomSearch(),
            target=IterationBudget(20),
            rng=5,
            resume_from=a,
            online_quality=True,  # engine on while resuming a plain run
        )
        results = resumed.run()
        assert history_digest(list(results)) == a.digest()


class TestFabricIntegration:
    def test_virtual_fabric_partition_matches_batch(self, coreutils):
        from repro.cluster import ClusterExplorer, NodeManager, VirtualCluster

        managers = [NodeManager(f"n{i}", coreutils) for i in range(3)]
        explorer = ClusterExplorer(
            VirtualCluster(managers),
            small_space(coreutils),
            standard_impact(),
            FitnessGuidedSearch(),
            IterationBudget(24),
            rng=2,
            batch_size=3,
            online_quality=True,
        )
        results = explorer.run()
        stacks = [
            tuple(t.result.injection_stack)
            if t.result.injection_stack else None
            for t in results
        ]
        batch = cluster_stacks_reference(stacks, max_distance=1)
        assert explorer.quality.partition().assignment == batch.assignment
        assert explorer.quality_deltas

    def test_campaign_job_surfaces_quality_stats(self, coreutils):
        from repro.campaign import Campaign, CampaignJob

        job = CampaignJob(
            "certify", coreutils, small_space(coreutils), iterations=20,
            online_quality=True,
        )
        outcomes = Campaign([job]).run(report_top_n=3)
        stats = outcomes[0].quality_stats
        assert stats is not None and stats["items"] == 20
        assert "online quality" in outcomes[0].report.render()
        rendered = Campaign.scorecard(outcomes).render()
        assert "non-red%" in rendered

    def test_live_feedback_flag_opts_the_strategy_in(self, coreutils):
        from repro.campaign import CampaignJob

        job = CampaignJob(
            "live", coreutils, small_space(coreutils), iterations=15,
            live_feedback=True,
        )
        _, _, strategy = job.execute()
        assert strategy.use_novelty is True
        assert job.quality_stats is not None  # live feedback implies online
