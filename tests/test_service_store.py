"""The SQLite result store: durability, round-trips, cross-campaign dedup."""

from __future__ import annotations

import json
import sqlite3

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.service.store import ResultStore, scenario_key_digest


@pytest.fixture(scope="module")
def explored(coreutils):
    """One real exploration shared by the round-trip tests."""
    return ExplorationSession(
        TargetRunner(coreutils),
        FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        ),
        standard_impact(),
        FitnessGuidedSearch(),
        IterationBudget(60),
        rng=1,
    ).run()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "afex.db")


class TestJobLifecycle:
    def test_create_and_fetch(self, store):
        job = store.create_job(
            "j1", "alice", {"target": "coreutils"}, priority=7, label="x"
        )
        assert job.state == "queued"
        assert job.priority == 7
        fetched = store.job("j1")
        assert fetched.spec == {"target": "coreutils"}
        assert fetched.label == "x"
        assert store.job("missing") is None

    def test_state_transitions(self, store):
        store.create_job("j1", "alice", {"target": "coreutils"})
        store.mark_running("j1")
        assert store.job("j1").state == "running"
        store.mark_done(
            "j1", digest="d" * 64, summary={"tests": 1},
            document={"version": 1},
        )
        done = store.job("j1")
        assert done.state == "done"
        assert done.digest == "d" * 64
        assert done.summary == {"tests": 1}
        assert done.document == {"version": 1}
        assert done.finished_s is not None

    def test_mark_failed(self, store):
        store.create_job("j1", "alice", {"target": "coreutils"})
        store.mark_failed("j1", "boom")
        job = store.job("j1")
        assert job.state == "failed"
        assert job.error == "boom"

    def test_requeue_incomplete_flips_non_terminal(self, store):
        store.create_job("j1", "a", {"target": "coreutils"})
        store.create_job("j2", "a", {"target": "coreutils"})
        store.create_job("j3", "a", {"target": "coreutils"})
        store.mark_running("j1")
        store.mark_done(
            "j3", digest="d" * 64, summary={}, document={}
        )
        requeued = store.requeue_incomplete()
        assert sorted(j.id for j in requeued) == ["j1", "j2"]
        assert store.job("j1").state == "queued"
        assert store.job("j3").state == "done"

    def test_jobs_filters(self, store):
        store.create_job("j1", "alice", {"target": "coreutils"})
        store.create_job("j2", "bob", {"target": "minidb"})
        store.mark_running("j2")
        assert [j.id for j in store.jobs(tenant="alice")] == ["j1"]
        assert [j.id for j in store.jobs(state="running")] == ["j2"]
        assert len(store.jobs()) == 2

    def test_submission_order_is_seq_order(self, store):
        for i in range(5):
            store.create_job(f"j{i}", "a", {"target": "coreutils"})
        seqs = [j.seq for j in store.jobs()]
        assert seqs == sorted(seqs)


class TestResultArchive:
    def test_round_trip_preserves_outcomes(self, store, explored):
        store.create_job("j1", "a", {"target": "coreutils"})
        stats = store.record_campaign(
            "j1", explored, target_id="coreutils/8.1/errno",
            fault_model="errno",
        )
        assert stats["total"] == len(explored)
        assert stats["new"] + stats["duplicates"] == stats["total"]
        rows = store.results(campaign="j1", limit=10_000)
        assert len(rows) == len(explored)
        for row, test in zip(rows, explored):
            assert row["seq"] == test.index
            assert row["failed"] == test.failed
            assert row["crashed"] == test.crashed
            assert row["impact"] == pytest.approx(test.impact)
            restored = store.load_result(row["digest"])
            assert restored.test_id == test.result.test_id
            assert restored.exit_code == test.result.exit_code
            assert restored.crash_kind == test.result.crash_kind
            assert restored.coverage == test.result.coverage

    def test_dedup_across_campaigns(self, store, explored):
        store.create_job("j1", "a", {"target": "coreutils"})
        store.create_job("j2", "b", {"target": "coreutils"})
        first = store.record_campaign(
            "j1", explored, target_id="coreutils/8.1/errno",
            fault_model="errno",
        )
        second = store.record_campaign(
            "j2", explored, target_id="coreutils/8.1/errno",
            fault_model="errno",
        )
        # The second campaign's identical executions add zero rows...
        assert second["new"] == 0
        assert second["duplicates"] == second["total"]
        counters = store.counters()
        assert counters["unique_results"] == first["new"]
        assert counters["recorded_executions"] == 2 * len(explored)
        assert counters["deduplicated"] == (
            counters["recorded_executions"] - counters["unique_results"]
        )
        # ...but both campaigns can still be rendered independently.
        assert len(store.results(campaign="j2", limit=10_000)) == len(explored)
        # First-writer attribution is stable.
        for row in store.results(campaign="j2", limit=10_000):
            assert row["first_campaign"] == "j1"

    def test_different_fault_model_is_a_different_identity(
        self, store, explored
    ):
        store.create_job("j1", "a", {"target": "coreutils"})
        store.create_job("j2", "a", {"target": "coreutils"})
        store.record_campaign(
            "j1", explored, target_id="coreutils/8.1/errno",
            fault_model="errno",
        )
        other = store.record_campaign(
            "j2", explored, target_id="coreutils/8.1/errno+disk",
            fault_model="errno+disk",
        )
        assert other["duplicates"] == 0

    def test_result_filters(self, store, explored):
        store.create_job("j1", "a", {"target": "coreutils"})
        store.record_campaign(
            "j1", explored, target_id="coreutils/8.1/errno",
            fault_model="errno",
        )
        failed = store.results(failed=True, limit=10_000)
        assert len(failed) == explored.failed_count()
        assert all(row["failed"] for row in failed)
        assert store.results(target="coreutils", limit=10_000)
        assert not store.results(target="httpd", limit=10_000)

    def test_clusters_cover_all_failures(self, store, explored):
        store.create_job("j1", "a", {"target": "coreutils"})
        store.record_campaign(
            "j1", explored, target_id="coreutils/8.1/errno",
            fault_model="errno", cluster_distance=1,
        )
        clusters = store.clusters("j1")
        assert sum(c["size"] for c in clusters) == explored.failed_count()
        assert len(clusters) == explored.cluster(
            of=lambda t: t.failed, max_distance=1
        ).cluster_count
        digests = {
            row["digest"]
            for row in store.results(campaign="j1", limit=10_000)
        }
        for cluster in clusters:
            assert cluster["representative_digest"] in digests

    def test_survives_reopen(self, tmp_path, explored):
        path = tmp_path / "afex.db"
        store = ResultStore(path)
        store.create_job("j1", "a", {"target": "coreutils"})
        store.record_campaign(
            "j1", explored, target_id="coreutils/8.1/errno",
            fault_model="errno",
        )
        store.mark_done(
            "j1", digest="d" * 64, summary={"tests": len(explored)},
            document={"version": 1},
        )
        reopened = ResultStore(path)
        assert reopened.job("j1").state == "done"
        assert reopened.counters()["unique_results"] > 0
        assert len(reopened.results(campaign="j1", limit=10_000)) == len(
            explored
        )

    def test_bind_metrics_exports_gauges(self, store):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        store.bind_metrics(registry)
        store.create_job("j1", "a", {"target": "coreutils"})
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["service.store.campaigns"] == 1
        assert snapshot["gauges"]["service.store.queued"] == 1


class TestScenarioDigest:
    def test_matches_cache_key_identity(self):
        a = scenario_key_digest(
            "coreutils/8.1/errno", "", (("test", 3), ("function", "read"))
        )
        b = scenario_key_digest(
            "coreutils/8.1/errno", "", (("test", 3), ("function", "read"))
        )
        c = scenario_key_digest(
            "coreutils/8.1/errno", "", (("test", 4), ("function", "read"))
        )
        assert a == b != c
        assert len(a) == 64

    @given(
        target=st.sampled_from(["a/1/errno", "b/2/errno"]),
        test=st.integers(min_value=1, max_value=50),
        call=st.integers(min_value=0, max_value=3),
        function=st.sampled_from(["read", "write", "malloc"]),
    )
    def test_digest_is_injective_on_attributes(
        self, target, test, call, function
    ):
        base = scenario_key_digest(
            target, "", (("test", test), ("function", function),
                         ("call", call))
        )
        bumped = scenario_key_digest(
            target, "", (("test", test + 1), ("function", function),
                         ("call", call))
        )
        assert base != bumped


@given(
    states=st.lists(
        st.sampled_from(["running", "done", "failed"]),
        min_size=1, max_size=8,
    )
)
def test_requeue_property(tmp_path_factory, states):
    """After requeue, exactly the non-terminal jobs are queued."""
    store = ResultStore(
        tmp_path_factory.mktemp("prop") / "afex.db"
    )
    for i, state in enumerate(states):
        job_id = f"j{i}"
        store.create_job(job_id, "t", {"target": "coreutils"})
        if state in ("running",):
            store.mark_running(job_id)
        elif state == "done":
            store.mark_done(job_id, digest="d" * 64, summary={},
                            document={})
        elif state == "failed":
            store.mark_failed(job_id, "x")
    requeued = {j.id for j in store.requeue_incomplete()}
    expected = {
        f"j{i}" for i, state in enumerate(states) if state == "running"
    }
    assert requeued == expected
    counters = store.counters()
    assert counters["queued"] == len(expected)
    assert counters["running"] == 0


def test_concurrent_writers_do_not_corrupt(tmp_path):
    """Two threads hammering the same store stay consistent (WAL)."""
    import threading

    store = ResultStore(tmp_path / "afex.db")

    def writer(prefix: str) -> None:
        for i in range(25):
            job_id = f"{prefix}{i}"
            store.create_job(job_id, prefix, {"target": "coreutils"})
            store.mark_running(job_id)
            store.mark_done(job_id, digest="d" * 64, summary={},
                            document={})

    threads = [
        threading.Thread(target=writer, args=(p,)) for p in ("a", "b")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    counters = store.counters()
    assert counters["campaigns"] == 50
    assert counters["done"] == 50
    # The database itself is intact.
    conn = sqlite3.connect(store.path)
    assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
    conn.close()


def test_attributes_stored_as_canonical_json(store, coreutils):
    """Attribute vectors land as JSON, not Python reprs."""
    results = ExplorationSession(
        TargetRunner(coreutils),
        FaultSpace.product(test=range(1, 5),
                           function=coreutils.libc_functions()[:3],
                           call=[0]),
        standard_impact(),
        FitnessGuidedSearch(),
        IterationBudget(5),
        rng=0,
    ).run()
    store.create_job("j1", "a", {"target": "coreutils"})
    store.record_campaign(
        "j1", results, target_id="coreutils/8.1/errno",
        fault_model="errno",
    )
    for row in store.results(campaign="j1"):
        names = [name for name, _ in row["attributes"]]
        assert "test" in names and "function" in names
        json.dumps(row["attributes"])  # round-trips as pure JSON


class TestMonotonicDurations:
    """Run durations come from the monotonic clock, not wall time
    (satellite bugfix: an NTP step mid-campaign used to corrupt them)."""

    def _clocked_store(self, tmp_path):
        wall = {"now": 1_000_000.0}
        mono = {"now": 50.0}
        store = ResultStore(
            tmp_path / "clocked.db",
            clock=lambda: wall["now"],
            monotonic=lambda: mono["now"],
        )
        return store, wall, mono

    def test_duration_survives_wall_clock_step(self, tmp_path):
        store, wall, mono = self._clocked_store(tmp_path)
        store.create_job("j1", "a", {"target": "coreutils"})
        store.mark_running("j1")
        # NTP yanks wall time back an hour mid-run; monotonic advances.
        wall["now"] -= 3600.0
        mono["now"] += 12.5
        store.mark_done("j1", digest="d" * 64, summary={}, document={})
        assert store.job_duration("j1") == pytest.approx(12.5)
        # Wall-clock columns keep the raw (stepped) stamps for display.
        job = store.job("j1")
        assert job.finished_s < job.started_s

    def test_counters_aggregate_monotonic_durations(self, tmp_path):
        store, wall, mono = self._clocked_store(tmp_path)
        for job_id, seconds in (("j1", 2.0), ("j2", 5.0)):
            store.create_job(job_id, "a", {"target": "coreutils"})
            store.mark_running(job_id)
            mono["now"] += seconds
            store.mark_failed(job_id, "boom")
        counters = store.counters()
        assert counters["timed_jobs"] == 2
        assert counters["run_seconds_total"] == pytest.approx(7.0)
        assert counters["run_seconds_max"] == pytest.approx(5.0)

    def test_jobs_finished_elsewhere_have_no_duration(self, tmp_path):
        store, _, _ = self._clocked_store(tmp_path)
        store.create_job("j1", "a", {"target": "coreutils"})
        assert store.job_duration("j1") is None
        # mark_done without mark_running (e.g. after a requeue by a
        # restarted process) must not fabricate a measurement.
        store.mark_done("j1", digest="d" * 64, summary={}, document={})
        assert store.job_duration("j1") is None
