"""Every shipped example must run end-to-end (they are documentation)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: (file, substrings its stdout must contain)
EXAMPLES = [
    ("quickstart.py", ("fitness-guided", "Top 5")),
    ("find_database_crashes.py", ("redundancy clusters", "replay")),
    ("domain_knowledge.py", ("knowledge level", "speedup")),
    ("distributed_exploration.py", ("4-node cluster", "speedup")),
    ("custom_target.py", ("derived fault-space", "data-loss bug")),
    ("performance_faults.py", ("performance-degrading", "baseline")),
    ("data_integrity.py", ("durability", "mv no-data-loss")),
]


def _run_example(name: str) -> str:
    """Import and run an example's main(), capturing its stdout."""
    import contextlib
    import io

    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            module.main()
        return buffer.getvalue()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name,needles", EXAMPLES,
                         ids=[e[0] for e in EXAMPLES])
def test_example_runs_and_reports(name, needles):
    output = _run_example(name)
    for needle in needles:
        assert needle in output, f"{name}: {needle!r} missing from output"
