"""Unit tests for MiniDB's subsystems, driven directly (not via the suite)."""

from __future__ import annotations

import random

import pytest

from repro.injection.plan import AtomicFault, InjectionPlan
from repro.sim.coverage import Coverage
from repro.sim.crashes import AbortCrash, SegmentationFault
from repro.sim.errnos import Errno
from repro.sim.filesystem import SimFilesystem
from repro.sim.libc import SimLibc
from repro.sim.process import Env
from repro.sim.stack import CallStack
from repro.sim.targets.minidb import BINLOG_PATH, ERRMSG_PATH, ERROR_CODES, MiniDb
from repro.sim.targets.minidb.net import serve_pings
from repro.sim.targets.minidb.storage import (
    create_index,
    delete_rows,
    index_lookup,
    insert_row,
    mi_create,
    mi_drop,
    select_rows,
    update_rows,
)
from repro.sim.targets.minidb.wal import Binlog


@pytest.fixture
def env() -> Env:
    fs = SimFilesystem()
    for d in ("/usr", "/usr/share", "/usr/share/minidb", "/var", "/var/minidb"):
        fs.mkdir(d)
    catalog = b"".join(
        f"error {name}".encode().ljust(32, b"\x00") for name in ERROR_CODES
    )
    fs.create_file(ERRMSG_PATH, catalog)
    stack = CallStack()
    libc = SimLibc(fs, stack)
    return Env(fs, libc, stack, Coverage(), random.Random(1))


@pytest.fixture
def db(env) -> MiniDb:
    database = MiniDb(env)
    assert database.boot()
    return database


def arm(env: Env, function: str, call: int, errno: Errno, retval: int = -1):
    """Install a plan relative to the CURRENT call counts."""
    already = env.libc.call_count(function)
    env.libc.set_plan(
        InjectionPlan((AtomicFault(function, already + call, errno, retval),))
    )


class TestBoot:
    def test_boot_loads_errmsg(self, env):
        db = MiniDb(env)
        assert db.boot()
        assert db.errmsg_ptr != 0

    def test_missing_errmsg_file_logged_not_fatal(self, env):
        env.fs.unlink(ERRMSG_PATH)
        db = MiniDb(env)
        assert db.boot()  # the bug: boot continues
        assert db.errmsg_ptr == 0
        assert any("cannot open" in line for line in env.stderr)

    def test_error_lookup_works_after_clean_boot(self, db):
        message = db.report_error("ER_NO_SUCH_TABLE")
        assert "ER_NO_SUCH_TABLE" in message
        assert db.statement_errors == ["ER_NO_SUCH_TABLE"]

    def test_error_lookup_crashes_after_failed_errmsg_read(self, env):
        arm(env, "read", 1, Errno.EIO)
        db = MiniDb(env)
        assert db.boot()
        with pytest.raises(SegmentationFault):
            db.report_error("ER_DUP_KEY")

    def test_unknown_error_code_uses_last_slot(self, db):
        message = db.report_error("ER_TOTALLY_NEW")
        assert message  # falls back, never crashes on unknown codes


class TestStorageOps:
    def test_create_insert_select(self, env, db):
        assert mi_create(env, db, "t", 2)
        assert insert_row(env, db, "t", ("a", "1"))
        assert insert_row(env, db, "t", ("b", "2"))
        rows = select_rows(env, db, "t")
        assert rows == [("a", "1"), ("b", "2")]

    def test_duplicate_create_reports_table_exists(self, env, db):
        assert mi_create(env, db, "t", 1)
        assert not mi_create(env, db, "t", 1)
        assert "ER_TABLE_EXISTS" in db.statement_errors

    def test_drop_removes_files(self, env, db):
        mi_create(env, db, "t", 1)
        assert mi_drop(env, db, "t")
        assert not env.fs.exists("/var/minidb/t.MYI")
        assert not env.fs.exists("/var/minidb/t.MYD")
        assert "t" not in db.tables

    def test_drop_missing_reports(self, env, db):
        assert not mi_drop(env, db, "ghost")
        assert "ER_NO_SUCH_TABLE" in db.statement_errors

    def test_filtered_select(self, env, db):
        mi_create(env, db, "t", 2)
        insert_row(env, db, "t", ("k", "one"))
        insert_row(env, db, "t", ("k", "two"))
        insert_row(env, db, "t", ("j", "three"))
        assert len(select_rows(env, db, "t", 0, "k")) == 2

    def test_update_rewrites_atomically(self, env, db):
        mi_create(env, db, "t", 2)
        for i in range(4):
            insert_row(env, db, "t", ("old", str(i)))
        assert update_rows(env, db, "t", 0, "old", "new") == 4
        assert len(select_rows(env, db, "t", 0, "new")) == 4
        # no temp file left behind
        assert not env.fs.exists("/var/minidb/t.MYD.TMD")

    def test_delete_removes_matching(self, env, db):
        mi_create(env, db, "t", 2)
        insert_row(env, db, "t", ("x", "1"))
        insert_row(env, db, "t", ("y", "2"))
        assert delete_rows(env, db, "t", 0, "x") == 1
        assert select_rows(env, db, "t") == [("y", "2")]

    def test_index_roundtrip(self, env, db):
        mi_create(env, db, "t", 2)
        for i in range(5):
            insert_row(env, db, "t", (f"k{i % 2}", str(i)))
        assert create_index(env, db, "t", 0)
        assert index_lookup(env, db, "t", 0, "k0") == 3
        assert index_lookup(env, db, "t", 0, "k1") == 2

    def test_lookup_without_index_errors(self, env, db):
        mi_create(env, db, "t", 1)
        assert index_lookup(env, db, "t", 0, "x") == -1
        assert "ER_BAD_STATEMENT" in db.statement_errors


class TestStorageRecovery:
    def test_create_open_failure_keeps_lock_consistent(self, env, db):
        arm(env, "open", 1, Errno.EACCES)
        assert not mi_create(env, db, "t", 1)
        assert not db.thr_lock.locked  # recovery released it exactly once
        # and a subsequent create works fine:
        env.libc.set_plan(InjectionPlan.none())
        assert mi_create(env, db, "t", 1)

    def test_create_write_failure_unlinks_partial_index(self, env, db):
        arm(env, "write", 1, Errno.ENOSPC)
        assert not mi_create(env, db, "t", 1)
        assert not env.fs.exists("/var/minidb/t.MYI")

    def test_double_unlock_on_failed_final_close(self, env, db):
        arm(env, "close", 1, Errno.EIO)
        with pytest.raises(AbortCrash) as excinfo:
            mi_create(env, db, "t", 1)
        assert "double unlock" in str(excinfo.value)

    def test_insert_write_failure_no_partial_row(self, env, db):
        mi_create(env, db, "t", 2)
        insert_row(env, db, "t", ("keep", "1"))
        arm(env, "write", 1, Errno.ENOSPC)
        arm2 = AtomicFault("write", env.libc.call_count("write") + 1,
                           Errno.ENOSPC, -1, persistent=True)
        env.libc.set_plan(InjectionPlan((arm2,)))
        assert not insert_row(env, db, "t", ("lost", "2"))
        env.libc.set_plan(InjectionPlan.none())
        assert select_rows(env, db, "t") == [("keep", "1")]

    def test_update_rename_failure_preserves_old_rows(self, env, db):
        mi_create(env, db, "t", 2)
        insert_row(env, db, "t", ("old", "1"))
        arm(env, "rename", 1, Errno.EACCES)
        assert update_rows(env, db, "t", 0, "old", "new") == -1
        env.libc.set_plan(InjectionPlan.none())
        assert select_rows(env, db, "t", 0, "old")  # data intact


class TestBinlog:
    def test_append_and_rotate(self, env, db):
        binlog = Binlog(env, db)
        assert binlog.append("txn-1")
        assert binlog.append("txn-2")
        assert binlog.rotate()
        assert binlog.append("txn-3")
        archived = env.fs.read_file(f"{BINLOG_PATH}.1").decode()
        assert "txn-1" in archived and "txn-2" in archived
        current = env.fs.read_file(BINLOG_PATH).decode()
        assert "txn-3" in current and "txn-1" not in current

    def test_write_failure_aborts_server(self, env, db):
        binlog = Binlog(env, db)
        binlog.append("ok")
        arm(env, "fputs", 1, Errno.ENOSPC)
        with pytest.raises(AbortCrash) as excinfo:
            binlog.append("doomed")
        assert "ABORT_SERVER" in str(excinfo.value)

    def test_rotate_rename_failure_keeps_old_log(self, env, db):
        binlog = Binlog(env, db)
        binlog.append("precious")
        arm(env, "rename", 1, Errno.EACCES)
        assert not binlog.rotate()
        assert b"precious" in env.fs.read_file(BINLOG_PATH)

    def test_nondurable_append_skips_flush(self, env, db):
        binlog = Binlog(env, db)
        before = env.libc.call_count("fflush")
        assert binlog.append("fast", durable=False)
        assert env.libc.call_count("fflush") == before


class TestNet:
    def test_serve_pings_happy_path(self, env, db):
        for i in range(3):
            env.libc.net_inbox.append(f"p{i}".encode())
        assert serve_pings(env, db, 3) == 3
        assert len(env.libc.net_outbox) == 3
        assert env.libc.net_outbox[0].startswith(b"OK ")

    def test_recv_failure_counts_as_unserved(self, env, db):
        env.libc.net_inbox.append(b"p")
        arm(env, "recv", 1, Errno.ECONNRESET)
        served = serve_pings(env, db, 1)
        assert served == 0
        assert "ER_NET_ERROR" in db.statement_errors

    def test_flaky_retry_depends_on_run_rng(self, env, db):
        """With flaky=True a reset recv may be retried; over many
        simulated runs both outcomes occur."""
        outcomes = set()
        for trial in range(12):
            fs = SimFilesystem()
            for d in ("/usr", "/usr/share", "/usr/share/minidb",
                      "/var", "/var/minidb"):
                fs.mkdir(d)
            fs.create_file(ERRMSG_PATH, b"\x00" * (32 * len(ERROR_CODES)))
            stack = CallStack()
            libc = SimLibc(fs, stack)
            env2 = Env(fs, libc, stack, Coverage(), random.Random(trial))
            db2 = MiniDb(env2)
            db2.boot()
            env2.libc.net_inbox.append(b"p")
            already = libc.call_count("recv")
            libc.set_plan(InjectionPlan((
                AtomicFault("recv", already + 1, Errno.ECONNRESET, -1),
            )))
            outcomes.add(serve_pings(env2, db2, 1, flaky=True))
        assert outcomes == {0, 1}

    def test_socket_failure_reports_net_error(self, env, db):
        arm(env, "socket", 1, Errno.EMFILE)
        assert serve_pings(env, db, 1) == 0
        assert "ER_NET_ERROR" in db.statement_errors


class TestConnectionPool:
    def test_pool_respects_requested_size(self, db):
        assert db.size_connection_pool(requested=7) == 7

    def test_pool_capped_by_rlimit(self, env, db):
        env.libc.setrlimit("NOFILE", 3)
        assert db.size_connection_pool(requested=10) == 3
