"""The tracer: span nesting, sinks, cross-process payloads, assembly.

Span ids are deterministic (a counter per tracer, request-derived ids on
workers), the clock is injectable, and events are plain dicts — so every
structural property here is exact, not statistical.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    JsonLinesSink,
    RingBufferSink,
    Tracer,
    assemble,
    read_jsonl,
    worker_spans,
)


def tick_clock():
    now = [0.0]

    def clock() -> float:
        now[0] += 1.0
        return now[0]

    return clock


class TestSpanLifecycle:
    def test_nesting_follows_the_thread_local_stack(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring], clock=tick_clock())
        with tracer.span("round"):
            with tracer.span("propose"):
                pass
            with tracer.span("dispatch"):
                with tracer.span("execute"):
                    pass
        events = {e["name"]: e for e in ring.events}
        assert events["round"]["parent"] is None
        assert events["propose"]["parent"] == events["round"]["span"]
        assert events["dispatch"]["parent"] == events["round"]["span"]
        assert events["execute"]["parent"] == events["dispatch"]["span"]

    def test_span_ids_count_up_deterministically(self):
        tracer = Tracer(sinks=[RingBufferSink()])
        assert [tracer.span("a").span_id for _ in range(3)] == \
            ["s0", "s1", "s2"]

    def test_explicit_parent_overrides_the_stack(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with tracer.span("outer"):
            with tracer.span("adopted", parent="w7"):
                pass
        adopted = [e for e in ring.events if e["name"] == "adopted"][0]
        assert adopted["parent"] == "w7"

    def test_timestamps_nest_and_schema_version_is_stamped(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring], clock=tick_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = ring.events  # inner closes (and is emitted) first
        assert outer["start"] < inner["start"] <= inner["end"] < outer["end"]
        assert all(e["v"] == TRACE_SCHEMA_VERSION for e in ring.events)

    def test_exception_is_recorded_and_span_still_emitted(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert ring.events[0]["attrs"]["error"] == "RuntimeError"

    def test_set_attaches_attributes_mid_span(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with tracer.span("verdict", index=3) as span:
            span.set(impact=2.0)
        assert ring.events[0]["attrs"] == {"index": 3, "impact": 2.0}


class TestSinks:
    def test_ring_buffer_bounds_memory_but_counts_everything(self):
        ring = RingBufferSink(capacity=3)
        tracer = Tracer(sinks=[ring])
        for index in range(10):
            with tracer.span(f"e{index}"):
                pass
        assert ring.emitted == 10
        assert [e["name"] for e in ring.events] == ["e7", "e8", "e9"]

    def test_ring_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonLinesSink(path)], clock=tick_clock())
        with tracer.span("round", round=1):
            with tracer.span("propose"):
                pass
        tracer.close()
        events = read_jsonl(path)
        assert [e["name"] for e in events] == ["propose", "round"]
        assert events[1]["attrs"] == {"round": 1}
        assert all(e["v"] == TRACE_SCHEMA_VERSION for e in events)

    def test_every_sink_receives_every_event(self, tmp_path):
        ring = RingBufferSink()
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sinks=[ring, JsonLinesSink(path)])
        with tracer.span("a"):
            pass
        tracer.close()
        assert ring.events == read_jsonl(path)


class TestWorkerSpans:
    def test_execute_span_id_derived_from_request(self):
        (execute,) = worker_spans("t0", "s5", 17, "node2", 1.0, 2.0)
        assert execute["span"] == "w17"
        assert execute["parent"] == "s5"
        assert execute["name"] == "execute"
        assert execute["attrs"]["manager"] == "node2"

    def test_inject_is_a_point_event_child_of_execute(self):
        execute, inject = worker_spans(
            "t0", "s5", 17, "node2", 1.0, 2.0,
            injected_function="read", injected_errno="EIO",
        )
        assert inject["span"] == "w17i"
        assert inject["parent"] == "w17"
        assert inject["start"] == inject["end"]
        assert inject["attrs"]["function"] == "read"
        assert inject["attrs"]["errno"] == "EIO"


class TestAssemble:
    def test_rebuilds_the_tree_with_ordered_children(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring], clock=tick_clock())
        with tracer.span("round"):
            with tracer.span("propose"):
                pass
            with tracer.span("dispatch"):
                pass
        traces = assemble(ring.events)
        (root,) = traces["t0"]["roots"]
        assert root["event"]["name"] == "round"
        assert [c["event"]["name"] for c in root["children"]] == \
            ["propose", "dispatch"]

    def test_orphans_become_roots(self):
        # A truncated ring buffer may keep a child whose parent is gone.
        events = [{"v": 1, "trace": "t0", "span": "s9", "parent": "sGone",
                   "name": "late", "start": 1.0, "end": 2.0}]
        traces = assemble(events)
        assert [n["event"]["name"] for n in traces["t0"]["roots"]] == ["late"]

    def test_foreign_worker_events_nest_by_parent_id(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring], clock=tick_clock())
        dispatch = tracer.span("dispatch")
        with dispatch:
            # Worker clocks are not comparable with the explorer's;
            # nesting must come from the parent id alone.
            for event in worker_spans("t0", dispatch.span_id, 3, "n0",
                                      1e9, 1e9 + 1):
                tracer.emit(event)
        traces = assemble(ring.events)
        (root,) = traces["t0"]["roots"]
        assert [c["event"]["span"] for c in root["children"]] == ["w3"]


class TestConcurrency:
    def test_threads_keep_independent_span_stacks(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        barrier = threading.Barrier(4)
        errors: list[str] = []

        def worker(name: str) -> None:
            barrier.wait()
            for index in range(25):
                with tracer.span(f"{name}-outer", i=index) as outer:
                    with tracer.span(f"{name}-inner") as inner:
                        if inner.parent_id != outer.span_id:
                            errors.append(f"{name}@{index}")

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert ring.emitted == 4 * 25 * 2
        # Every span id is unique despite concurrent allocation.
        ids = [e["span"] for e in ring.events]
        assert len(ids) == len(set(ids))
