"""Tests for fault-injection-oriented assertions (invariants).

§7 "Metrics": "we expect developers to write fault injection-oriented
assertions, such as 'under no circumstances should a file transfer be
only partially completed when the system stops,' in which case one can
count the number of failed assertions."  These tests exercise the
post-mortem invariant hook and the two shipped invariant suites:
DocStore's snapshot-durability contract and mv's no-data-loss contract.
"""

from __future__ import annotations


from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    InvariantImpact,
    IterationBudget,
    TargetRunner,
)
from repro.core.fault import Fault
from repro.injection.libfi import LibFaultInjector, MultiLibFaultInjector
from repro.sim.process import Env, run_test
from repro.sim.testsuite import Target
from repro.sim.testsuite import TestCase as SimTestCase
from repro.sim.testsuite import TestSuite as SimTestSuite


def second_snapshot_write_call(target) -> int:
    """The call number of the last write in a persist test (the 2nd
    snapshot's payload write)."""
    return run_test(target, target.suite[36]).call_counts["write"]


class TestInvariantMachinery:
    def test_default_target_has_no_invariants(self, httpd):
        result = run_test(httpd, httpd.suite[1])
        assert result.invariant_violations == ()
        assert not result.violated

    def test_invariants_run_even_after_crash(self):
        class CrashingTarget(Target):
            name = "crashy"
            version = "0"

            def build_suite(self):
                def body(env: Env) -> None:
                    env.fs.create_file("/precious", b"gold")
                    env.fs.unlink("/precious")  # destroy the data...
                    env.libc.heap.load(0, 0, 1)  # ...then segfault

                return SimTestSuite([
                    SimTestCase(id=1, name="t", group="g", body=body)
                ])

            def invariants(self, env, test):
                if not env.fs.exists("/precious"):
                    return ["precious data gone"]
                return []

        result = run_test(CrashingTarget(), CrashingTarget().suite[1])
        assert result.crash_kind == "segfault"
        assert result.invariant_violations == ("precious data gone",)

    def test_raising_invariant_checker_reported_not_fatal(self):
        class BadCheckerTarget(Target):
            name = "badcheck"
            version = "0"

            def build_suite(self):
                return SimTestSuite([
                    SimTestCase(id=1, name="t", group="g",
                                body=lambda env: None)
                ])

            def invariants(self, env, test):
                raise RuntimeError("checker bug")

        result = run_test(BadCheckerTarget(), BadCheckerTarget().suite[1])
        assert result.violated
        assert "checker raised" in result.invariant_violations[0]

    def test_invariant_impact_metric(self):
        from tests.test_core_components import make_result

        clean = make_result()
        metric = InvariantImpact(points=30.0)
        assert metric.score(clean) == 0.0
        torn = type(clean)(**{
            **clean.__dict__, "invariant_violations": ("lost", "torn"),
        })
        assert metric.score(torn) == 60.0

    def test_invariant_sensor(self):
        from repro.cluster.sensors import InvariantSensor
        from tests.test_core_components import make_result

        result = make_result()
        torn = type(result)(**{
            **result.__dict__, "invariant_violations": ("x",),
        })
        assert InvariantSensor().measure(torn) == {
            "invariant.violations": 1.0,
        }


class TestDocStoreDurabilityContract:
    def test_v08_failed_second_snapshot_loses_acked_data(self, docstore_old):
        call = second_snapshot_write_call(docstore_old)
        plan = LibFaultInjector().plan_for(
            {"function": "write", "call": call, "errno": "ENOSPC"}
        )
        result = run_test(docstore_old, docstore_old.suite[36], plan)
        assert result.failed
        assert result.violated
        assert "destroyed" in result.invariant_violations[0]

    def test_v20_atomic_snapshot_upholds_contract(self, docstore_new):
        call = second_snapshot_write_call(docstore_new)
        plan = LibFaultInjector().plan_for(
            {"function": "write", "call": call, "errno": "ENOSPC"}
        )
        result = run_test(docstore_new, docstore_new.suite[36], plan)
        assert result.failed        # the statement errors...
        assert not result.violated  # ...but no acknowledged data is lost

    def test_v20_never_violates_across_persist_sweep(self, docstore_new):
        """Atomic snapshots: no single fault can lose acknowledged data."""
        injector = LibFaultInjector()
        for test_id in range(36, 51):  # the persist group
            for function in ("write", "open", "close", "rename", "fsync",
                             "unlink"):
                for call in range(1, 8):
                    plan = injector.plan_for(
                        {"function": function, "call": call}
                    )
                    result = run_test(docstore_new,
                                      docstore_new.suite[test_id], plan)
                    assert not result.violated, (
                        test_id, function, call, result.invariant_violations,
                    )

    def test_v08_violations_found_by_invariant_guided_search(self, docstore_old):
        space = FaultSpace.product(
            test=range(36, 51),
            function=["open", "write", "close"],
            call=range(1, 8),
        )
        session = ExplorationSession(
            runner=TargetRunner(docstore_old),
            space=space,
            metric=InvariantImpact(),
            strategy=FitnessGuidedSearch(initial_batch=10),
            target=IterationBudget(100),
            rng=1,
        )
        results = session.run()
        violations = [t for t in results if t.result.violated]
        assert violations
        assert all(t.impact >= 30.0 for t in violations)


class TestMvDataLossContract:
    def test_no_single_fault_loses_mv_data(self, coreutils):
        """Exhaustive sweep: mv's recovery never loses source data under
        any single injectable fault — with ONE exception the sweep itself
        discovered (see the next test), exactly the way AFEX surfaces
        recovery bugs."""
        injector = LibFaultInjector()
        for test_id in (21, 22, 23, 24, 25, 27, 28, 29):
            for function in coreutils.libc_functions():
                for call in (1, 2):
                    if test_id == 27 and function == "stat":
                        continue  # the discovered mv -b TOCTOU (below)
                    plan = injector.plan_for(
                        {"function": function, "call": call}
                    )
                    result = run_test(coreutils, coreutils.suite[test_id],
                                      plan)
                    assert not result.violated, (
                        test_id, function, call,
                        result.invariant_violations,
                    )

    def test_discovered_mv_backup_stat_toctou(self, coreutils):
        """A genuine finding by the invariant sweep: ``mv -b`` decides
        whether to back up the destination with a ``stat`` check.  If
        that stat fails (injected, or a real transient error), mv
        concludes no destination exists, skips the backup, and the
        subsequent rename silently clobbers it — acknowledged data is
        destroyed and mv exits 0.  Real coreutils ``mv -b`` has the same
        check-then-act window; this is the class of bug §7's
        fault-injection-oriented assertions exist to expose."""
        plan = LibFaultInjector().plan_for(
            {"function": "stat", "call": 2}
        )
        result = run_test(coreutils, coreutils.suite[27], plan)
        # mv itself printed no diagnostic and believed it succeeded; only
        # the test script's own assertion (and the invariant) notice.
        assert not any("mv:" in line for line in result.stderr)
        assert result.violated
        assert "data lost" in result.invariant_violations[0]

    def test_no_double_fault_loses_mv_data(self, coreutils):
        """Even rename-EXDEV + a failure inside the copy fallback never
        loses data: abort_copy removes the partial dest but keeps src."""
        runner = TargetRunner(coreutils, injector=MultiLibFaultInjector())
        for second in ("open", "read", "write", "close", "unlink"):
            for call in (1, 2):
                fault = Fault.of(
                    test=29,
                    function_a="rename", call_a=1, errno_a="EXDEV",
                    function_b=second, call_b=call,
                )
                result = runner(fault)
                assert not result.violated, (second, call)

    def test_invariant_catches_a_hypothetically_buggy_mv(self, coreutils):
        """Sanity: the checker isn't vacuous — destroy the data and the
        invariant fires."""
        test = coreutils.suite[21]

        def sabotage(env: Env) -> None:
            test.body(env)
            env.fs.unlink("b")  # simulate a data-losing bug post-move

        bad = SimTestCase(id=21, name=test.name, group=test.group,
                          body=sabotage)
        # run through the target's machinery manually:
        result = run_test(_Sabotaged(coreutils, bad), bad)
        assert result.violated


class _Sabotaged(Target):
    """Wraps coreutils with one replaced test body (for checker sanity)."""

    name = "coreutils"
    version = "8.1-sabotaged"

    def __init__(self, base, test):
        super().__init__()
        self._base = base
        self._test = test

    def build_suite(self):
        return self._base.suite

    def setup(self, env, test):
        self._base.setup(env, test)

    def invariants(self, env, test):
        return self._base.invariants(env, test)
