"""Cross-cutting property-based tests (hypothesis).

These encode the framework's global invariants over *randomly shaped*
fault spaces — the properties every strategy and every space must
uphold regardless of geometry:

* no strategy ever proposes a fault outside the space;
* no strategy ever proposes the same fault twice;
* every strategy eventually exhausts a finite space, exactly once each;
* result sets survive JSON round-trips losslessly;
* the DSL's writer/parser pair is lossless for arbitrary product spaces.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.dsl import format_fault_space, parse_fault_space
from repro.core.faultspace import FaultSpace
from repro.core.search import (
    ExhaustiveSearch,
    FitnessGuidedSearch,
    GeneticSearch,
    RandomSearch,
)
from repro.injection.plan import InjectionPlan
from repro.sim.process import RunResult


def _blank_result() -> RunResult:
    return RunResult(
        test_id=1, test_name="", plan=InjectionPlan.none(), exit_code=0,
        crash_kind=None, crash_message=None, crash_stack=None,
        injection_stack=None, injected=True, coverage=frozenset(), steps=1,
    )


#: generator of small random product spaces (1-3 axes, each 2-6 values).
spaces = st.builds(
    lambda sizes: FaultSpace.product(
        **{f"axis{i}": range(n) for i, n in enumerate(sizes)}
    ),
    st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=3),
)

strategy_factories = st.sampled_from([
    lambda: FitnessGuidedSearch(initial_batch=5),
    lambda: FitnessGuidedSearch(initial_batch=5, adaptive_sigma=True),
    RandomSearch,
    ExhaustiveSearch,
    lambda: GeneticSearch(population_size=6, elite=2),
])


class TestStrategyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(spaces, strategy_factories, st.integers(min_value=0, max_value=99))
    def test_proposals_are_unique_and_in_space(self, space, factory, seed):
        strategy = factory()
        strategy.bind(space, random.Random(seed))
        seen = set()
        blank = _blank_result()
        for _ in range(space.size() + 10):
            fault = strategy.propose()
            if fault is None:
                break
            assert space.contains(fault), f"{fault} outside the space"
            assert fault not in seen, f"{fault} proposed twice"
            seen.add(fault)
            strategy.observe(fault, float(seed % 3), blank)

    @settings(max_examples=25, deadline=None)
    @given(spaces, strategy_factories, st.integers(min_value=0, max_value=99))
    def test_finite_space_fully_exhausted(self, space, factory, seed):
        strategy = factory()
        strategy.bind(space, random.Random(seed))
        blank = _blank_result()
        seen = set()
        # Generous budget: every strategy must terminate with full coverage.
        for _ in range(space.size() * 4 + 50):
            fault = strategy.propose()
            if fault is None:
                break
            seen.add(fault)
            strategy.observe(fault, 1.0, blank)
        assert len(seen) == space.size()

    @settings(max_examples=25, deadline=None)
    @given(spaces, st.integers(min_value=0, max_value=99))
    def test_random_search_deterministic_per_seed(self, space, seed):
        def trace(s):
            strategy = RandomSearch()
            strategy.bind(space, random.Random(s))
            out = []
            for _ in range(min(space.size(), 10)):
                fault = strategy.propose()
                if fault is None:
                    break
                out.append(fault)
            return out

        assert trace(seed) == trace(seed)


class TestDslRoundtripProperty:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["alpha", "beta", "gamma"]),
            st.integers(min_value=1, max_value=12),
        ),
        min_size=1, max_size=3,
        unique_by=lambda t: t[0],
    ))
    def test_product_space_roundtrip(self, axes):
        space = FaultSpace.product(
            **{name: range(size) for name, size in axes}
        )
        again = parse_fault_space(format_fault_space(space))
        assert again.size() == space.size()
        assert set(f.values for f in again.enumerate()) == \
               set(f.values for f in space.enumerate())


class TestPersistenceProperty:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=0, max_value=9))
    def test_json_roundtrip_any_exploration_prefix(self, iterations, seed):
        from repro.core import (
            ExplorationSession,
            IterationBudget,
            TargetRunner,
            standard_impact,
        )
        from repro.core.results import ResultSet
        from repro.sim.targets.coreutils import CoreutilsTarget

        target = CoreutilsTarget()
        space = FaultSpace.product(
            test=range(1, 30), function=target.libc_functions(),
            call=[0, 1, 2],
        )
        results = ExplorationSession(
            TargetRunner(target), space, standard_impact(),
            RandomSearch(), IterationBudget(iterations), rng=seed,
        ).run()
        restored = ResultSet.from_json(results.to_json())
        assert [t.fault for t in restored] == [t.fault for t in results]
        assert [t.impact for t in restored] == [t.impact for t in results]
