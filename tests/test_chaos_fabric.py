"""Chaos tests for the fault-tolerant fabric layer.

The headline property (ISSUE acceptance): an exploration whose fabric
kills, hangs, corrupts, or drops a sizeable fraction of dispatches must
find exactly the same faults as a fault-free run — byte-identical
result history — with every retry accounted for in the FabricHealth
record.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import (
    ChaosCluster,
    ClusterExplorer,
    FabricHealth,
    FaultTolerantFabric,
    HeartbeatMonitor,
    LocalCluster,
    NodeManager,
    RetryPolicy,
)
from repro.cluster import TestReport as ClusterTestReport
from repro.cluster import TestRequest as ClusterTestRequest
from repro.cluster.chaos import ChaosError
from repro.core import FaultSpace, FitnessGuidedSearch, IterationBudget, standard_impact
from repro.core.checkpoint import history_digest
from repro.errors import ClusterError
from repro.sim.targets.coreutils import CoreutilsTarget


def coreutils_space(target) -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 30), function=target.libc_functions(), call=[0, 1, 2],
    )


def make_cluster(nodes: int = 3) -> LocalCluster:
    return LocalCluster([
        NodeManager(f"n{i}", CoreutilsTarget()) for i in range(nodes)
    ])


def explore(fabric, iterations: int = 60, seed: int = 7):
    target = CoreutilsTarget()
    return ClusterExplorer(
        fabric,
        coreutils_space(target),
        standard_impact(),
        FitnessGuidedSearch(),
        IterationBudget(iterations),
        rng=seed,
        batch_size=3,
    ).run()


def request(request_id: int) -> ClusterTestRequest:
    return ClusterTestRequest(
        request_id=request_id, subspace="",
        scenario={"test": 1 + request_id % 28, "function": "malloc", "call": 1},
    )


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3, jitter=0.0)
        delays = [policy.delay_for(n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_adds_bounded_noise(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        rng = random.Random(1)
        for _ in range(50):
            delay = policy.delay_for(1, rng)
            assert 0.1 <= delay <= 0.1 * 1.5

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"jitter": -0.1},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ClusterError):
            RetryPolicy(**kwargs)


class TestFabricHealth:
    def test_every_retry_is_attributed(self):
        health = FabricHealth()
        health.record_retry("timeout", 2)
        health.record_retry("error")
        health.record_retry("missing", 3)
        health.record_retry("corrupt")
        assert health.retries == 7
        assert health.accounted()

    def test_unknown_cause_rejected(self):
        with pytest.raises(ClusterError):
            FabricHealth().record_retry("gremlins")

    def test_merge_sums_counters(self):
        a = FabricHealth(requests=4, completed=3)
        a.record_retry("timeout")
        b = FabricHealth(requests=2, completed=2)
        b.record_retry("error", 2)
        a.merge(b)
        assert a.requests == 6 and a.completed == 5
        assert a.retries == 3 and a.accounted()


class TestHeartbeatMonitor:
    def test_liveness_tracks_an_injected_clock(self):
        now = [0.0]
        monitor = HeartbeatMonitor(liveness_timeout=5.0, clock=lambda: now[0])
        monitor.beat("n0")
        now[0] = 3.0
        monitor.beat("n1")
        assert monitor.alive() == ("n0", "n1")
        now[0] = 6.0
        assert monitor.missing() == ("n0",)
        assert monitor.alive() == ("n1",)

    def test_reports_count_as_beats(self):
        fabric = FaultTolerantFabric(make_cluster(2))
        fabric.run_batch([request(0), request(1)])
        assert fabric.monitor.beats >= 2
        assert fabric.poll_heartbeats() == 2


class TestChaosAcceptance:
    """The ISSUE's acceptance test: 20% chaos, same faults found."""

    RATES = {"kill_rate": 0.10, "corrupt_rate": 0.05, "drop_rate": 0.05}

    def test_chaotic_run_matches_fault_free_run(self):
        baseline = explore(make_cluster())
        chaos = ChaosCluster(make_cluster(), rng=13, **self.RATES)
        fabric = FaultTolerantFabric(
            chaos,
            policy=RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        chaotic = explore(fabric)

        assert chaos.sabotages > 0, "chaos never fired; rates too low"
        # Same high-impact faults: byte-identical history, not just
        # overlapping top-N.
        assert history_digest(list(chaotic)) == history_digest(list(baseline))
        # ... and the health record accounts for every retry.
        health = fabric.health
        assert health.accounted()
        assert health.retries > 0
        assert health.completed == len(chaotic)

    def test_hang_is_recovered_via_deadline(self):
        # Real sleeps here: a hang only looks hung if it genuinely
        # outlives the dispatch deadline.
        chaos = ChaosCluster(
            make_cluster(), hang_rate=0.15, rng=3, hang_seconds=0.4,
        )
        fabric = FaultTolerantFabric(
            chaos,
            policy=RetryPolicy(base_delay=0.0, jitter=0.0),
            dispatch_deadline=0.15,
        )
        results = explore(fabric, iterations=30)
        assert chaos.hangs > 0
        assert len(results) >= 30
        health = fabric.health
        assert health.timeouts == chaos.hangs
        assert health.retried_after_timeout > 0
        assert health.accounted()
        assert history_digest(list(results)) == history_digest(
            list(explore(make_cluster(), iterations=30))
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_property_style_random_chaos_always_converges(self, seed):
        """Any sabotage mix under the sum-rate cap converges, because
        each request is sabotaged at most once and the policy allows
        max_attempts - 1 = 2 retries."""
        rng = random.Random(seed)
        rates = [rng.uniform(0, 0.12) for _ in range(3)]
        chaos = ChaosCluster(
            make_cluster(), kill_rate=rates[0], corrupt_rate=rates[1],
            drop_rate=rates[2], rng=seed,
        )
        fabric = FaultTolerantFabric(
            chaos, policy=RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        results = explore(fabric, iterations=24, seed=seed)
        assert len(results) >= 24
        assert fabric.health.accounted()
        assert fabric.health.retries >= chaos.sabotages


class TestFaultTolerantFabricUnit:
    def test_reports_stay_in_request_order_under_chaos(self):
        chaos = ChaosCluster(make_cluster(), kill_rate=0.3, rng=5)
        fabric = FaultTolerantFabric(
            chaos, policy=RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        requests = [request(i) for i in range(9)]
        reports = fabric.run_batch(requests)
        assert [r.request_id for r in reports] == list(range(9))
        assert all(isinstance(r, ClusterTestReport) for r in reports)

    def test_backoff_schedule_is_observable(self):
        naps: list[float] = []

        class AlwaysDies:
            def __len__(self):
                return 1

            def run_batch(self, batch):
                raise RuntimeError("boom")

        fabric = FaultTolerantFabric(
            AlwaysDies(),
            policy=RetryPolicy(max_attempts=3, base_delay=0.05,
                               multiplier=2.0, max_delay=10.0, jitter=0.0),
            sleep=naps.append,
        )
        with pytest.raises(ClusterError, match="still failing after 3"):
            fabric.run_batch([request(0)])
        assert naps == [0.05, 0.1]  # no sleep after the final attempt
        assert fabric.health.worker_deaths == 3
        assert fabric.health.retried_after_error == 2
        assert fabric.health.accounted()

    def test_corrupt_reports_are_discarded_and_retried(self):
        chaos = ChaosCluster(make_cluster(1), corrupt_rate=1.0, rng=0)
        fabric = FaultTolerantFabric(
            chaos, policy=RetryPolicy(base_delay=0.0, jitter=0.0),
        )
        reports = fabric.run_batch([request(0)])
        assert reports[0].request_id == 0
        assert isinstance(reports[0], ClusterTestReport)
        assert fabric.health.corrupt_reports == 1
        assert fabric.health.retried_corrupt == 1
        assert fabric.health.accounted()

    def test_gives_up_with_health_in_the_error(self):
        chaos = ChaosCluster(make_cluster(), kill_rate=1.0, rng=0)
        # Each request is only killed once, so the run *would* converge;
        # a 1-attempt policy must still fail fast.
        fabric = FaultTolerantFabric(chaos, policy=RetryPolicy(max_attempts=1))
        with pytest.raises(ClusterError, match="fabric health"):
            fabric.run_batch([request(0)])

    def test_empty_batch_is_a_noop(self):
        fabric = FaultTolerantFabric(make_cluster(1))
        assert fabric.run_batch([]) == []
        assert fabric.health.dispatches == 0


class TestChaosCluster:
    def test_sabotage_fires_at_most_once_per_request(self):
        chaos = ChaosCluster(make_cluster(1), kill_rate=1.0, rng=0)
        with pytest.raises(ChaosError):
            chaos.run_batch([request(0)])
        # Second dispatch of the same request goes through untouched.
        reports = chaos.run_batch([request(0)])
        assert len(reports) == 1 and reports[0].request_id == 0
        assert chaos.kills == 1

    def test_rates_validated(self):
        with pytest.raises(ClusterError):
            ChaosCluster(make_cluster(1), kill_rate=1.5)
        with pytest.raises(ClusterError):
            ChaosCluster(make_cluster(1), kill_rate=0.6, hang_rate=0.6)

    def test_drop_loses_exactly_the_victim(self):
        chaos = ChaosCluster(make_cluster(1), drop_rate=1.0, rng=0)
        reports = chaos.run_batch([request(0), request(1)])
        # Both were first-time dispatches, both dropped.
        assert reports == [] and chaos.drops == 2
        reports = chaos.run_batch([request(0), request(1)])
        assert [r.request_id for r in reports] == [0, 1]
