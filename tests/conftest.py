"""Shared fixtures: targets are built once per session (suite generation
for MiniDB creates 1,147 closures; no need to repeat it per test)."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.sim.targets.coreutils import CoreutilsTarget

# Property-based tests run under a fixed deterministic profile: no
# random example selection run to run (derandomize), no per-example
# deadline (simulator executions vary with machine load), bounded
# example counts so CI time stays predictable.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.load_profile("ci")
from repro.sim.targets.docstore import DocStoreTarget
from repro.sim.targets.httpd import HttpdTarget
from repro.sim.targets.minidb import MiniDbTarget


@pytest.fixture(scope="session")
def coreutils() -> CoreutilsTarget:
    return CoreutilsTarget()


@pytest.fixture(scope="session")
def httpd() -> HttpdTarget:
    return HttpdTarget()


@pytest.fixture(scope="session")
def minidb() -> MiniDbTarget:
    return MiniDbTarget()


@pytest.fixture(scope="session")
def replkv():
    from repro.sim.targets.replkv import ReplKvTarget

    return ReplKvTarget()


@pytest.fixture(scope="session")
def docstore_old() -> DocStoreTarget:
    return DocStoreTarget(version="0.8")


@pytest.fixture(scope="session")
def docstore_new() -> DocStoreTarget:
    return DocStoreTarget(version="2.0")
