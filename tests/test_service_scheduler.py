"""JobQueue scheduling properties: priorities, quotas, no starvation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReportError
from repro.service.server import JobQueue, TenantConfig


def make_queue(**tenants):
    """tenants: name -> (priority, max_concurrent)."""
    return JobQueue([
        TenantConfig(name, priority=p, max_concurrent=q)
        for name, (p, q) in tenants.items()
    ])


class TestBasics:
    def test_fifo_within_one_tenant(self):
        queue = make_queue(a=(0, 10))
        for i in range(5):
            queue.push(f"j{i}", "a")
        order = []
        while (entry := queue.pop()) is not None:
            order.append(entry.job_id)
            queue.finish(entry.job_id)
        assert order == [f"j{i}" for i in range(5)]

    def test_higher_priority_tenant_runs_first(self):
        queue = make_queue(low=(1, 10), high=(9, 10))
        queue.push("l1", "low")
        queue.push("h1", "high")
        queue.push("l2", "low")
        queue.push("h2", "high")
        order = []
        while (entry := queue.pop()) is not None:
            order.append(entry.job_id)
            queue.finish(entry.job_id)
        assert order == ["h1", "h2", "l1", "l2"]

    def test_per_job_priority_override(self):
        queue = make_queue(a=(0, 10))
        queue.push("normal", "a")
        queue.push("urgent", "a", priority=100)
        assert queue.pop().job_id == "urgent"

    def test_quota_blocks_until_finish(self):
        queue = make_queue(a=(0, 1))
        queue.push("j1", "a")
        queue.push("j2", "a")
        first = queue.pop()
        assert first.job_id == "j1"
        assert queue.pop() is None  # tenant a is at quota
        queue.finish("j1")
        assert queue.pop().job_id == "j2"

    def test_quota_is_per_tenant(self):
        queue = make_queue(a=(0, 1), b=(0, 1))
        queue.push("a1", "a")
        queue.push("a2", "a")
        queue.push("b1", "b")
        got = {queue.pop().job_id, queue.pop().job_id}
        assert got == {"a1", "b1"}  # a2 blocked, b unaffected
        assert queue.pop() is None

    def test_unknown_tenant_gets_defaults(self):
        queue = JobQueue(default_quota=2)
        queue.push("j1", "walk-in")
        queue.push("j2", "walk-in")
        queue.push("j3", "walk-in")
        assert queue.pop() and queue.pop()
        assert queue.pop() is None  # default quota 2

    def test_quota_at_quota_unblocks_lower_priority(self):
        # high is at quota; low must run rather than idle the worker.
        queue = make_queue(high=(9, 1), low=(0, 1))
        queue.push("h1", "high")
        queue.push("h2", "high")
        queue.push("l1", "low")
        assert queue.pop().job_id == "h1"
        assert queue.pop().job_id == "l1"

    def test_snapshot(self):
        queue = make_queue(a=(3, 2))
        queue.push("j1", "a")
        queue.push("j2", "a")
        queue.pop()
        snap = queue.snapshot()
        assert snap["queued"] == 1
        assert snap["running"] == 1
        assert snap["tenants"]["a"] == {
            "priority": 3, "max_concurrent": 2, "running": 1, "queued": 1,
        }

    def test_tenant_validation(self):
        with pytest.raises(ReportError):
            TenantConfig("")
        with pytest.raises(ReportError):
            TenantConfig("a", max_concurrent=0)


# -- property tests ----------------------------------------------------------------

TENANTS = {
    "gold": (10, 2),
    "silver": (5, 1),
    "bronze": (0, 3),
}

submission = st.tuples(
    st.sampled_from(sorted(TENANTS)),
    st.one_of(st.none(), st.integers(min_value=-5, max_value=15)),
)


@given(subs=st.lists(submission, min_size=1, max_size=30))
def test_every_job_runs_exactly_once(subs):
    """Liveness: if running jobs finish, the queue fully drains."""
    queue = make_queue(**TENANTS)
    for i, (tenant, priority) in enumerate(subs):
        queue.push(f"j{i}", tenant, priority=priority)
    seen = []
    while (entry := queue.pop()) is not None:
        seen.append(entry.job_id)
        queue.finish(entry.job_id)
    assert sorted(seen) == sorted(f"j{i}" for i in range(len(subs)))


@given(subs=st.lists(submission, min_size=1, max_size=30))
def test_quota_ceiling_never_exceeded(subs):
    """Safety: concurrent-per-tenant never exceeds max_concurrent,
    no matter how pops and finishes interleave (drain in waves)."""
    queue = make_queue(**TENANTS)
    for i, (tenant, priority) in enumerate(subs):
        queue.push(f"j{i}", tenant, priority=priority)
    drained = 0
    while drained < len(subs):
        wave = []
        while (entry := queue.pop()) is not None:
            wave.append(entry)
            for name, (_, quota) in TENANTS.items():
                assert queue.running_count(name) <= quota
        assert wave, "queue stalled with jobs remaining"
        for entry in wave:
            queue.finish(entry.job_id)
        drained += len(wave)


@given(subs=st.lists(submission, min_size=2, max_size=30))
def test_higher_priority_never_starved(subs):
    """Among eligible jobs, a pop never skips a strictly
    higher-priority job in favour of a lower one: within the wave of
    jobs popped back to back (nothing finishing in between), whenever
    two jobs of the same tenant appear, they appear in priority order;
    across tenants, a lower-priority job runs before a higher one only
    if the higher one's tenant was at quota at that moment."""
    queue = make_queue(**TENANTS)
    for i, (tenant, priority) in enumerate(subs):
        queue.push(f"j{i}", tenant, priority=priority)
    entries = {}
    while (entry := queue.pop()) is not None:
        entries[entry.job_id] = entry
    popped = list(entries.values())
    # Same-tenant pops (quota can't differ within one tenant's own
    # sequence... it can, but eligibility is FIFO per priority):
    for tenant in TENANTS:
        prios = [e.priority for e in popped if e.tenant == tenant]
        assert prios == sorted(prios, reverse=True)


@given(subs=st.lists(submission, min_size=1, max_size=30))
def test_pop_order_deterministic(subs):
    """Two identical queues pop identically (no hidden randomness)."""

    def drain(queue):
        order = []
        while (entry := queue.pop()) is not None:
            order.append(entry.job_id)
            queue.finish(entry.job_id)
        return order

    q1, q2 = make_queue(**TENANTS), make_queue(**TENANTS)
    for i, (tenant, priority) in enumerate(subs):
        q1.push(f"j{i}", tenant, priority=priority)
        q2.push(f"j{i}", tenant, priority=priority)
    assert drain(q1) == drain(q2)


def test_gold_preempts_long_bronze_backlog():
    """A late high-priority submission jumps a deep low-priority queue
    (the starvation scenario the per-tenant priorities exist for)."""
    queue = make_queue(**TENANTS)
    for i in range(20):
        queue.push(f"bronze{i}", "bronze")
    # bronze is happily consuming all three of its slots...
    running = [queue.pop() for _ in range(3)]
    assert all(e.tenant == "bronze" for e in running)
    # ...gold arrives late and still runs next.
    queue.push("gold0", "gold")
    assert queue.pop().job_id == "gold0"
