"""Model-based (stateful hypothesis) testing of the simulated filesystem.

The entire reproduction stands on `SimFilesystem` behaving like a real
tree of files.  This state machine mirrors every operation against a
trivially correct in-memory model (plain dicts) and checks full
equivalence after each step — including the error cases, where both
sides must refuse for the same reason.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim.errnos import Errno
from repro.sim.filesystem import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    FsError,
    SimFilesystem,
)

NAMES = st.sampled_from(["a", "b", "c", "dd", "ee"])
PAYLOADS = st.binary(max_size=24)


class FilesystemModel(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.fs = SimFilesystem()
        # Inode-accurate model: paths map to inode ids; content lives on
        # the inode, so hard-link aliasing behaves like the real thing.
        self.model_paths: dict[str, int] = {}
        self.model_inodes: dict[int, bytes] = {}
        self.model_dirs: set[str] = {"/"}
        self._next_inode = 0

    # -- model helpers ---------------------------------------------------

    @property
    def model_files(self) -> dict[str, bytes]:
        return {p: self.model_inodes[i] for p, i in self.model_paths.items()}

    def _model_create(self, path: str, data: bytes) -> None:
        inode = self.model_paths.get(path)
        if inode is None:
            inode = self._next_inode
            self._next_inode += 1
            self.model_paths[path] = inode
        self.model_inodes[inode] = data

    def _model_set(self, path: str, data: bytes) -> None:
        self.model_inodes[self.model_paths[path]] = data

    def _model_append(self, path: str, data: bytes) -> None:
        self.model_inodes[self.model_paths[path]] += data

    # -- helpers ------------------------------------------------------------

    def _paths_under(self, name: str) -> str:
        return f"/{name}"

    # -- rules ----------------------------------------------------------------

    @rule(name=NAMES, data=PAYLOADS)
    def create_file(self, name, data):
        path = self._paths_under(name)
        if path in self.model_dirs:
            with pytest.raises(FsError):
                self.fs.create_file(path, data)
            return
        self.fs.create_file(path, data)
        # create_file installs a brand-new file object (breaks any link)
        if path in self.model_paths:
            del self.model_paths[path]
        self._model_create(path, data)

    @rule(name=NAMES)
    def mkdir(self, name):
        path = self._paths_under(name)
        if path in self.model_dirs or path in self.model_files:
            with pytest.raises(FsError) as excinfo:
                self.fs.mkdir(path)
            assert excinfo.value.errno is Errno.EEXIST
            return
        self.fs.mkdir(path)
        self.model_dirs.add(path)

    @rule(name=NAMES, data=PAYLOADS)
    def overwrite_via_fd(self, name, data):
        path = self._paths_under(name)
        if path in self.model_dirs:
            with pytest.raises(FsError):
                self.fs.open(path, O_WRONLY | O_CREAT | O_TRUNC)
            return
        fd = self.fs.open(path, O_WRONLY | O_CREAT | O_TRUNC)
        self.fs.write(fd, data)
        self.fs.close(fd)
        if path in self.model_paths:
            self._model_set(path, data)   # through the shared inode
        else:
            self._model_create(path, data)

    @rule(name=NAMES, data=PAYLOADS)
    def append_via_fd(self, name, data):
        path = self._paths_under(name)
        if path not in self.model_files:
            return
        fd = self.fs.open(path, O_WRONLY | O_APPEND)
        self.fs.write(fd, data)
        self.fs.close(fd)
        self._model_append(path, data)

    @rule(name=NAMES)
    def read_whole_file(self, name):
        path = self._paths_under(name)
        if path in self.model_files:
            fd = self.fs.open(path, O_RDONLY)
            out = b""
            while True:
                chunk = self.fs.read(fd, 7)
                if not chunk:
                    break
                out += chunk
            self.fs.close(fd)
            assert out == self.model_files[path]
        elif path not in self.model_dirs:
            with pytest.raises(FsError) as excinfo:
                self.fs.open(path, O_RDONLY)
            assert excinfo.value.errno is Errno.ENOENT

    @rule(old=NAMES, new=NAMES)
    def rename_file(self, old, new):
        old_path, new_path = self._paths_under(old), self._paths_under(new)
        if old_path not in self.model_files or old_path == new_path \
                or new_path in self.model_dirs:
            return
        self.fs.rename(old_path, new_path)
        self.model_paths[new_path] = self.model_paths.pop(old_path)

    @rule(name=NAMES)
    def unlink(self, name):
        path = self._paths_under(name)
        if path in self.model_files:
            self.fs.unlink(path)
            del self.model_paths[path]
        elif path in self.model_dirs:
            with pytest.raises(FsError) as excinfo:
                self.fs.unlink(path)
            assert excinfo.value.errno is Errno.EISDIR
        else:
            with pytest.raises(FsError) as excinfo:
                self.fs.unlink(path)
            assert excinfo.value.errno is Errno.ENOENT

    @rule(existing=NAMES, link=NAMES)
    def hard_link(self, existing, link):
        src, dst = self._paths_under(existing), self._paths_under(link)
        if src not in self.model_files:
            return
        if dst in self.model_files or dst in self.model_dirs:
            with pytest.raises(FsError):
                self.fs.link(src, dst)
            return
        self.fs.link(src, dst)
        self.model_paths[dst] = self.model_paths[src]  # shared inode

    @rule(existing=NAMES, link=NAMES, data=PAYLOADS)
    def write_through_link_visible_everywhere(self, existing, link, data):
        """Hard links share content: a write through one name must be
        visible through the other (model approximation: we re-sync both
        names from the filesystem, then compare)."""
        src, dst = self._paths_under(existing), self._paths_under(link)
        if src not in self.model_files or dst in self.model_files \
                or dst in self.model_dirs:
            return
        self.fs.link(src, dst)
        self.model_paths[dst] = self.model_paths[src]
        fd = self.fs.open(src, O_WRONLY | O_TRUNC)
        self.fs.write(fd, data)
        self.fs.close(fd)
        assert self.fs.read_file(dst) == data
        self._model_set(src, data)

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def files_match_model(self):
        for path, expected in self.model_files.items():
            assert self.fs.read_file(path) == expected

    @invariant()
    def root_listing_matches_model(self):
        expected = sorted(
            {p[1:].split("/", 1)[0]
             for p in (set(self.model_files) | self.model_dirs) if p != "/"}
        )
        assert self.fs.listdir("/") == expected

    @invariant()
    def no_fd_leaks_between_rules(self):
        assert self.fs.open_fd_count == 0


FilesystemModel.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestFilesystemModel = FilesystemModel.TestCase
