"""One-command crash replay: provenance capture, crash ids, divergence.

The contract under test (ISSUE 10's tentpole):

* provenance capture is strictly opt-in — runs without it produce
  byte-identical payloads (and therefore campaign digests) to a build
  that never had the feature;
* a crash id resolved against any artifact that recorded it — SQLite
  store, checkpoint, report document — deterministically re-executes to
  the recorded outcome with zero divergence, and the replay explains
  the failure at call level ("fault at write call #1 on ...");
* provenance rows survive every serialization boundary: result cache
  payloads, ``ResultSet`` JSON, and both wire codecs;
* generated §6.3 replay scripts reproduce the stored outcome when
  actually executed.
"""

from __future__ import annotations

import importlib.util
import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.fault import Fault
from repro.core.results import ExecutedTest, ResultSet
from repro.core.runner import TargetRunner, injection_identity
from repro.core.cache import result_from_payload, result_to_payload
from repro.core.checkpoint import build_checkpoint, save_checkpoint
from repro.errors import ReplayError
from repro.injection.models import ModelInjector, model_injector, model_space
from repro.replay import (
    ReplaySource,
    crash_id_of,
    explain,
    format_outcome,
    replay,
    replay_source,
    resolve_crash_id,
    result_digest,
)
from repro.service.documents import campaign_document
from repro.service.store import ResultStore
from repro.sim.libc import ProvenanceRecord
from repro.sim.process import run_test

REPO = Path(__file__).resolve().parent.parent

#: the planted WAL-truncation bug (Bug A): restart-000 under a silent
#: corrupt write of the first WAL append loses acknowledged data.
DISK_FAULT = Fault(
    "replkv", (("test", 56), ("disk_write", 1), ("disk_mode", "corrupt"))
)
#: a plain atomic-fault scenario that fails: first write errno fault.
ERRNO_FAULT = Fault("replkv", (("test", 56), ("function", "write"), ("call", 1)))


@pytest.fixture(scope="module")
def disk_executed(replkv):
    """The planted-bug execution, recorded provenance-off (the
    exploration path) — exactly what campaigns archive."""
    runner = TargetRunner(replkv, model_injector("disk"))
    result = runner(DISK_FAULT)
    assert result.failed and result.violated
    return ExecutedTest(0, DISK_FAULT, result, 5.0, 5.0)


@pytest.fixture(scope="module")
def errno_executed(replkv):
    runner = TargetRunner(replkv, model_injector("errno"))
    result = runner(ERRNO_FAULT)
    assert result.failed
    return ExecutedTest(1, ERRNO_FAULT, result, 3.0, 3.0)


def _crash_id(replkv, fault: Fault, fault_model: str) -> str:
    return crash_id_of(
        replkv.name, replkv.version, fault_model, fault.subspace,
        fault.attributes,
    )


def _seeded_store(tmp_path, replkv, executed, fault_model: str) -> ResultStore:
    store = ResultStore(tmp_path / "afex.db")
    store.create_job("j1", "tester", {"target": replkv.name})
    store.record_campaign(
        "j1", ResultSet([executed]),
        target_id=f"{replkv.name}/{replkv.version}/{fault_model}",
        fault_model=fault_model,
    )
    return store


# -- provenance capture -------------------------------------------------------


class TestProvenanceCapture:
    def test_off_by_default(self, replkv):
        result = run_test(replkv, replkv.suite[1])
        assert result.provenance == ()

    def test_records_every_call_when_enabled(self, replkv):
        result = run_test(replkv, replkv.suite[1], provenance=True)
        assert result.provenance
        assert len(result.provenance) == result.steps
        seqs = [record.seq for record in result.provenance]
        assert seqs == sorted(seqs)
        for record in result.provenance:
            assert isinstance(record, ProvenanceRecord)
            assert record.call_number >= 1

    def test_atomic_fault_is_marked_injected(self, replkv):
        plan = ModelInjector("errno").plan_for(dict(ERRNO_FAULT.attributes))
        result = run_test(replkv, replkv.suite[56], plan, provenance=True)
        fired = [r for r in result.provenance if r.injected]
        assert fired, "the errno fault fired but no record is marked"
        assert fired[0].function == "write"
        assert fired[0].call_number == 1

    def test_disk_hook_is_marked_injected(self, replkv):
        """World hooks fire inside the FS layer; the write that the
        armed disk state transformed must still be attributed."""
        plan = ModelInjector("disk").plan_for(dict(DISK_FAULT.attributes))
        result = run_test(replkv, replkv.suite[56], plan, provenance=True)
        fired = [r for r in result.provenance if r.injected]
        assert fired
        assert fired[0].function == "write"
        assert fired[0].resource and "wal" in fired[0].resource

    def test_explain_names_call_and_resource(self, replkv):
        plan = ModelInjector("disk").plan_for(dict(DISK_FAULT.attributes))
        result = run_test(replkv, replkv.suite[56], plan, provenance=True)
        text = explain(result)
        assert text.startswith("fault at write call #1 on ")
        assert "propagated to" in text

    def test_clean_run_explanation(self, replkv):
        result = run_test(replkv, replkv.suite[1], provenance=True)
        assert explain(result).startswith("no injection fired")


# -- digest neutrality and serialization round trips --------------------------


class TestDigestNeutrality:
    """Provenance-off payloads are byte-identical to pre-feature ones."""

    def test_payload_has_no_provenance_key_when_off(self, replkv):
        result = run_test(replkv, replkv.suite[1])
        assert "provenance" not in result_to_payload(result)

    def test_payload_identical_modulo_provenance(self, replkv):
        plan = ModelInjector("disk").plan_for(dict(DISK_FAULT.attributes))
        off = result_to_payload(run_test(replkv, replkv.suite[56], plan))
        on = result_to_payload(
            run_test(replkv, replkv.suite[56], plan, provenance=True)
        )
        assert on.pop("provenance")
        assert on == off

    def test_result_set_json_omits_empty_provenance(self, disk_executed):
        data = json.loads(ResultSet([disk_executed]).to_json())
        assert "provenance" not in data["tests"][0]["result"]

    def test_cache_payload_round_trip(self, replkv):
        plan = ModelInjector("disk").plan_for(dict(DISK_FAULT.attributes))
        result = run_test(replkv, replkv.suite[56], plan, provenance=True)
        back = result_from_payload(result_to_payload(result))
        assert back.provenance == result.provenance
        assert all(
            isinstance(r, ProvenanceRecord) for r in back.provenance
        )

    def test_result_set_json_round_trip(self, replkv):
        plan = ModelInjector("disk").plan_for(dict(DISK_FAULT.attributes))
        result = run_test(replkv, replkv.suite[56], plan, provenance=True)
        executed = ExecutedTest(0, DISK_FAULT, result, 1.0, 1.0)
        back = ResultSet.from_json(ResultSet([executed]).to_json())
        assert back[0].result.provenance == result.provenance

    def test_wire_json_round_trip(self):
        from repro.cluster.wire import report_from_wire, report_to_wire

        report = _report_with_provenance()
        back = report_from_wire(report_to_wire(report))
        assert back.provenance == report.provenance

    def test_wire_binary_round_trip(self):
        from repro.cluster.wire import (
            decode_binary_frame,
            encode_report_frame,
        )

        report = _report_with_provenance()
        frame = encode_report_frame([report])
        message = decode_binary_frame(frame[4:])
        assert message["reports"][0].provenance == report.provenance

    def test_wire_binary_no_provenance_no_flag(self):
        from repro.cluster.wire import (
            decode_binary_frame,
            encode_report_frame,
        )

        report = _report_with_provenance(provenance=())
        frame = encode_report_frame([report])
        decoded = decode_binary_frame(frame[4:])["reports"][0]
        assert decoded.provenance == ()


_PROVENANCE_ROWS = (
    (1, "open", 1, "path", "/wal.log", False),
    (2, "write", 1, "fd", "/wal.log", True),
    (3, "close", 1, "fd", None, False),
)


def _report_with_provenance(provenance=_PROVENANCE_ROWS):
    from repro.cluster.messages import TestReport

    return TestReport(
        request_id=7,
        manager="m0",
        failed=True,
        crash_kind=None,
        exit_code=1,
        coverage=frozenset({"a", "b"}),
        injection_stack=("main", "write"),
        injected=True,
        steps=12,
        provenance=provenance,
    )


# -- injection_identity world-hook fallback (satellite bugfix) ---------------


class TestInjectionIdentityFallback:
    def test_hooks_only_plan_falls_back_to_hook_label(self, replkv):
        """A fired injection whose function has no matching atomic
        fault must be labelled with the world hook's identity, not
        ``none`` (the metric-series mislabelling bug)."""
        from dataclasses import replace

        plan = ModelInjector("disk").plan_for(dict(DISK_FAULT.attributes))
        assert not plan.faults and plan.hooks
        result = run_test(replkv, replkv.suite[56], plan)
        # hooks fire in the FS layer, so the run itself records no
        # injection stack; model one arriving over the wire (a worker
        # that attributed the hook) to pin the fallback.
        result = replace(
            result, injected=True, injection_stack=("leader_put", "write")
        )
        function, label = injection_identity(result)
        assert function == "write"
        assert label == "disk:corrupt"

    def test_atomic_fault_still_wins(self, replkv):
        plan = ModelInjector("errno").plan_for(dict(ERRNO_FAULT.attributes))
        result = run_test(replkv, replkv.suite[56], plan)
        function, label = injection_identity(result)
        assert function == "write"
        assert label and label != "disk:corrupt"  # the errno name


# -- crash-id resolution ------------------------------------------------------


class TestCrashIdResolution:
    def test_store_resolution_full_and_prefix(
        self, tmp_path, replkv, disk_executed
    ):
        store = _seeded_store(tmp_path, replkv, disk_executed, "disk")
        crash_id = _crash_id(replkv, DISK_FAULT, "disk")
        source = resolve_crash_id(crash_id, store=store)
        assert source.source == "store"
        assert source.fault_model == "disk"
        assert source.attributes == DISK_FAULT.attributes
        short = resolve_crash_id(crash_id[:10], store=store)
        assert short.crash_id == crash_id

    def test_checkpoint_resolution_both_meta_shapes(
        self, tmp_path, replkv, disk_executed
    ):
        space = model_space(replkv, "disk")
        crash_id = _crash_id(replkv, DISK_FAULT, "disk")
        for name, meta in (
            ("cli.ckpt", {"target": "replkv", "fault_model": "disk",
                          "seed": 1}),
            ("svc.ckpt", {"job": "j1", "tenant": "t",
                          "spec": {"target": "replkv",
                                   "fault_model": "disk"}}),
        ):
            path = tmp_path / name
            save_checkpoint(path, build_checkpoint(
                [disk_executed], random.Random(0), space, 25, meta=meta
            ))
            source = resolve_crash_id(crash_id, checkpoint=path)
            assert source.source == "checkpoint"
            assert source.recorded_payload is not None

    def test_report_document_resolution(self, tmp_path, replkv, disk_executed):
        document = campaign_document(
            ResultSet([disk_executed]),
            campaign={"target": "replkv", "fault_model": "disk"},
            elapsed_seconds=1.0,
        )
        crash_id = _crash_id(replkv, DISK_FAULT, "disk")
        assert document["top"][0]["crash_id"] == crash_id
        path = tmp_path / "report.json"
        path.write_text(json.dumps(document))
        source = resolve_crash_id(crash_id[:12], report=path)
        assert source.source == "report"
        assert source.recorded_outcome["failed"] is True

    def test_not_found_lists_tried_artifacts(
        self, tmp_path, replkv, disk_executed
    ):
        store = _seeded_store(tmp_path, replkv, disk_executed, "disk")
        with pytest.raises(ReplayError, match="not found"):
            resolve_crash_id("f" * 64, store=store)

    def test_rejects_non_hex_and_artifactless_lookups(self):
        with pytest.raises(ReplayError, match="hex"):
            resolve_crash_id("not-a-digest")
        with pytest.raises(ReplayError, match="no artifact"):
            resolve_crash_id("abcd")

    def test_ambiguous_prefix_is_an_error(self, tmp_path, replkv, disk_executed):
        """17 distinct scenarios guarantee two ids share a first hex
        char (pigeonhole); that one-char prefix must not resolve."""
        faults = [
            Fault("replkv", (("test", 56), ("disk_write", w),
                             ("disk_mode", m)))
            for w in range(1, 7) for m in ("torn", "corrupt")
        ] + [
            Fault("replkv", (("test", t), ("disk_write", 1),
                             ("disk_mode", "torn")))
            for t in range(1, 6)
        ]
        executed = [
            ExecutedTest(i, fault, disk_executed.result, 1.0, 1.0)
            for i, fault in enumerate(faults)
        ]
        store = ResultStore(tmp_path / "many.db")
        store.create_job("j1", "t", {})
        store.record_campaign(
            "j1", ResultSet(executed),
            target_id=f"replkv/{replkv.version}/disk", fault_model="disk",
        )
        ids = [_crash_id(replkv, fault, "disk") for fault in faults]
        first_chars = [i[0] for i in ids]
        shared = next(c for c in first_chars if first_chars.count(c) > 1)
        with pytest.raises(ReplayError, match="ambiguous"):
            resolve_crash_id(shared, store=store)


# -- replay: zero divergence from every artifact ------------------------------


class TestReplayZeroDivergence:
    def test_from_store(self, tmp_path, replkv, disk_executed):
        store = _seeded_store(tmp_path, replkv, disk_executed, "disk")
        outcome = replay(_crash_id(replkv, DISK_FAULT, "disk"), store=store)
        assert outcome.matches, outcome.divergences
        assert outcome.explanation.startswith("fault at write call #1")
        assert "REPRODUCED" in format_outcome(outcome)

    def test_from_checkpoint(self, tmp_path, replkv, disk_executed):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, build_checkpoint(
            [disk_executed], random.Random(0), model_space(replkv, "disk"),
            25, meta={"target": "replkv", "fault_model": "disk"},
        ))
        outcome = replay(_crash_id(replkv, DISK_FAULT, "disk"), checkpoint=path)
        assert outcome.matches, outcome.divergences

    def test_from_report_document(self, tmp_path, replkv, disk_executed):
        document = campaign_document(
            ResultSet([disk_executed]),
            campaign={"target": "replkv", "fault_model": "disk"},
            elapsed_seconds=1.0,
        )
        path = tmp_path / "r.json"
        path.write_text(json.dumps(document))
        outcome = replay(
            _crash_id(replkv, DISK_FAULT, "disk"), report=path
        )
        assert outcome.matches, outcome.divergences

    def test_all_sources_agree_on_result_digest(
        self, tmp_path, replkv, disk_executed
    ):
        crash_id = _crash_id(replkv, DISK_FAULT, "disk")
        store = _seeded_store(tmp_path, replkv, disk_executed, "disk")
        ckpt = tmp_path / "c.ckpt"
        save_checkpoint(ckpt, build_checkpoint(
            [disk_executed], random.Random(0), model_space(replkv, "disk"),
            25, meta={"target": "replkv", "fault_model": "disk"},
        ))
        digests = {
            result_digest(replay(crash_id, store=store).result),
            result_digest(replay(crash_id, checkpoint=ckpt).result),
        }
        assert len(digests) == 1

    def test_divergence_when_record_was_doctored(
        self, tmp_path, replkv, disk_executed
    ):
        """A record that disagrees with the deterministic re-execution
        must surface as named field divergences, not a silent pass."""
        from dataclasses import replace

        doctored = replace(disk_executed.result, exit_code=42)
        store = _seeded_store(
            tmp_path, replkv,
            ExecutedTest(0, DISK_FAULT, doctored, 5.0, 5.0), "disk",
        )
        digest = store.resolve_digest("")[0]
        outcome = replay(digest, store=store)
        assert not outcome.matches
        assert any(key == "exit_code" for key, _, _ in outcome.divergences)
        assert "DIVERGED" in format_outcome(outcome)

    def test_version_mismatch_refuses_to_compare(self, replkv):
        source = ReplaySource(
            crash_id="ab" * 32, target_name="replkv",
            target_version="0.0-stale", fault_model="disk",
            subspace="replkv", attributes=DISK_FAULT.attributes,
            source="store",
        )
        with pytest.raises(ReplayError, match="not comparable"):
            replay_source(source)

    def test_service_replay_route(self, tmp_path, replkv, disk_executed):
        from repro.service.server import CampaignService

        store = _seeded_store(tmp_path, replkv, disk_executed, "disk")
        service = CampaignService(store, workers=1, spawn_nodes=False)
        try:
            payload = service.replay_result(
                _crash_id(replkv, DISK_FAULT, "disk")[:16]
            )
        finally:
            service.shutdown()
        assert payload["matches"] is True
        assert payload["source"] == "store"
        assert payload["result_digest"] == result_digest(
            replay_source(resolve_crash_id(
                _crash_id(replkv, DISK_FAULT, "disk"), store=store
            ))
        )


# -- generated replay scripts (§6.3) -----------------------------------------


class TestReplayScriptEndToEnd:
    def test_script_without_crash_id_is_unchanged(self, errno_executed):
        script = ResultSet([errno_executed]).replay_script(
            errno_executed, "replkv"
        )
        assert "Crash id" not in script
        assert "afex replay" not in script

    def test_script_embeds_crash_id(self, replkv, errno_executed):
        crash_id = _crash_id(replkv, ERRNO_FAULT, "errno")
        script = ResultSet([errno_executed]).replay_script(
            errno_executed, "replkv", crash_id=crash_id
        )
        assert f"Crash id:  {crash_id}" in script
        assert f"afex replay {crash_id}" in script

    def test_executed_script_reproduces_stored_digest(
        self, tmp_path, replkv, errno_executed
    ):
        """The satellite gate: run one generated script end-to-end and
        compare the reproduced result digest with the stored one."""
        crash_id = _crash_id(replkv, ERRNO_FAULT, "errno")
        script = ResultSet([errno_executed]).replay_script(
            errno_executed, "replkv", crash_id=crash_id
        )
        path = tmp_path / "replay_00001.py"
        path.write_text(script)

        # as a subprocess, the way §6.3 hands scripts to developers...
        proc = subprocess.run(
            [sys.executable, str(path)], capture_output=True, text=True,
            timeout=120,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == errno_executed.result.summary()

        # ...and imported, to compare full result payloads bit-for-bit.
        spec = importlib.util.spec_from_file_location("replay_00001", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        reproduced = module.replay()
        assert result_digest(reproduced) == result_digest(
            errno_executed.result
        )
