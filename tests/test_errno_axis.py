"""The third degree of freedom: *what* fault to inject (the errno axis).

§1: "There exist three degrees of freedom: what fault to inject (e.g.,
read() call fails with EINTR), where to inject it, and when to do so."
Most experiments fix the errno at each function's representative failure
mode; these tests exercise errno as a first-class fault-space axis and
verify that real behavioural structure exists along it — the same
injection point reacts differently to different error codes (EINTR is
retried, EIO is fatal), which is exactly the similarity structure §3's
Gaussian mutation exploits when profile ordering groups related errnos.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
)
from repro.core.fault import Fault
from repro.injection.profiles import fault_profile
from repro.sim.errnos import Errno


class TestErrnoAxisBehaviour:
    def test_read_eintr_vs_eio_differ_at_same_point(self, minidb):
        """Same (test, function, call), different errno, different world."""
        runner = TargetRunner(minidb)
        select_test = 551  # first select-group test
        eintr = runner(Fault.of(test=select_test, function="read", call=2,
                                errno="EINTR"))
        eio = runner(Fault.of(test=select_test, function="read", call=2,
                              errno="EIO"))
        assert not eintr.failed  # retried
        assert eio.failed        # statement error

    def test_write_enospc_vs_eintr_on_coreutils(self, coreutils):
        runner = TargetRunner(coreutils)
        # Two-fault set-up not needed: insert uses write retry in minidb;
        # for mv the write only happens under EXDEV.  Use ln's stdout via
        # fputs?  fputs has no EINTR; use minidb-free check on profiles
        # instead: the profile orders both errnos for write.
        profile = fault_profile("write")
        errnos = profile.errnos()
        assert Errno.ENOSPC in errnos and Errno.EINTR in errnos

    def test_errno_axis_exploration(self, minidb):
        """An errno axis is just another fault-space dimension."""
        space = FaultSpace.product(
            test=range(551, 601),        # select-group tests
            function=["read"],
            call=range(1, 6),
            errno=["EINTR", "EIO", "EAGAIN"],
        )
        session = ExplorationSession(
            runner=TargetRunner(minidb),
            space=space,
            metric=standard_impact(),
            strategy=FitnessGuidedSearch(initial_batch=10),
            target=IterationBudget(120),
            rng=3,
        )
        results = session.run()
        failed_errnos = {
            t.fault.value("errno") for t in results.failed_tests()
        }
        passed_errnos = {
            t.fault.value("errno")
            for t in results if not t.failed and t.result.injected
        }
        # EIO/EAGAIN failures exist; EINTR injections are absorbed.
        assert "EIO" in failed_errnos
        assert "EINTR" in passed_errnos
        assert "EINTR" not in failed_errnos

    def test_guided_search_learns_the_errno_structure(self, minidb):
        """With 2/3 of the errno axis harmless, guidance concentrates on
        the harmful third faster than random does."""
        space = FaultSpace.product(
            test=range(551, 601),
            function=["read"],
            call=range(1, 6),
            errno=["EINTR", "EAGAIN", "EIO"],
        )

        def failed_count(strategy, seed):
            return ExplorationSession(
                runner=TargetRunner(minidb),
                space=space,
                metric=standard_impact(),
                strategy=strategy,
                target=IterationBudget(150),
                rng=seed,
            ).run().failed_count()

        guided = sum(
            failed_count(FitnessGuidedSearch(initial_batch=12), s)
            for s in (1, 2, 3)
        )
        rand = sum(failed_count(RandomSearch(), s) for s in (1, 2, 3))
        assert guided > rand

    def test_profile_rejects_out_of_profile_errno(self, minidb):
        from repro.errors import InjectionError

        runner = TargetRunner(minidb)
        with pytest.raises(InjectionError):
            runner(Fault.of(test=1, function="read", call=1, errno="EISDIR"))


class TestCliTrace:
    def test_trace_command_lists_calls(self, capsys):
        from repro.cli import main

        assert main(["trace", "--target", "coreutils", "--test", "12"]) == 0
        out = capsys.readouterr().out
        assert "link()" in out and "malloc()" in out

    def test_trace_with_stacks(self, capsys):
        from repro.cli import main

        assert main(["trace", "--target", "coreutils", "--test", "12",
                     "--stacks"]) == 0
        out = capsys.readouterr().out
        assert "ln_main > do_link" in out
