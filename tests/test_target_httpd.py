"""Tests for MiniHttpd — including the Fig. 7 strdup bug."""

from __future__ import annotations


from repro.injection.libfi import LibFaultInjector
from repro.sim.process import run_test
from repro.sim.targets.httpd import HTTPD_FUNCTIONS, KNOWN_MODULES


def inject(target, test_id, function, call, errno=None):
    attrs = {"function": function, "call": call}
    if errno is not None:
        attrs["errno"] = errno
    plan = LibFaultInjector().plan_for(attrs)
    return run_test(target, target.suite[test_id], plan)


class TestSuiteShape:
    def test_58_tests(self, httpd):
        assert len(httpd.suite) == 58

    def test_space_size_matches_paper(self, httpd):
        # 58 x 19 x 10 = 11,020 (§7.1)
        assert len(httpd.suite) * len(HTTPD_FUNCTIONS) * 10 == 11020

    def test_groups(self, httpd):
        assert set(httpd.suite.groups) == {
            "config", "modules", "static", "logging", "protocol", "session",
        }


class TestBaseline:
    def test_all_tests_pass_without_injection(self, httpd):
        for test in httpd.suite:
            result = run_test(httpd, test)
            assert not result.failed, f"{test.name}: {result.summary()}"


class TestStrdupBug:
    """Paper Fig. 7: unchecked strdup in module short-name registration."""

    def test_module_registration_strdup_segfaults(self, httpd):
        # Test 1 parses 4 directives (4 checked strdups) then registers 5
        # modules (unchecked): strdup #5 is the first registration.
        result = inject(httpd, 1, "strdup", 5)
        assert result.crash_kind == "segfault"
        assert "ap_add_module" in result.crash_stack

    def test_config_value_strdup_is_checked(self, httpd):
        # strdup #1 happens in the config parser, which checks for NULL
        # and skips the directive: never a crash, and for test 1 (whose
        # expectations match the defaults) not even a failure.
        result = inject(httpd, 1, "strdup", 1)
        assert not result.crashed
        # A test that depends on the skipped directive does fail: test 2
        # (boot-alt-port) loses its Listen override... which is benign;
        # boot-deep-docroot (9) loses DocumentRoot and serves nothing.
        result = inject(httpd, 9, "strdup", 2)
        assert result.failed and not result.crashed

    def test_crash_band_matches_module_count(self, httpd):
        """Tests loading more modules expose more crashing strdup calls."""
        # modules-01 (test 11) registers 1 module after 4 config strdups.
        assert inject(httpd, 11, "strdup", 5).crashed
        assert not inject(httpd, 11, "strdup", 6).injected  # call never made
        # modules-16 (test 20) registers 16 modules: calls 5..10 all crash.
        for call in (5, 7, 10):
            assert inject(httpd, 20, "strdup", call).crashed

    def test_crash_happens_before_any_logging(self, httpd):
        result = inject(httpd, 1, "strdup", 5)
        # The server never got to open its log: no diagnostic anywhere —
        # the "crashes with no information on why" the paper highlights.
        assert not result.stderr
        assert not result.stdout


class TestGracefulRecovery:
    def test_oom_in_request_buffer_is_graceful_shutdown(self, httpd):
        # The checked-malloc path: log + 500 + clean exit(1).  The first
        # malloc in the run is the request-buffer malloc.
        result = inject(httpd, 1, "malloc", 1)
        assert result.failed and not result.crashed
        assert result.exit_code == 1

    def test_config_open_failure_falls_back_to_defaults(self, httpd):
        # Real httpd has compiled-in defaults; test 1 uses exactly the
        # default layout, so losing the config file is survivable.
        result = inject(httpd, 1, "fopen", 1)
        assert not result.failed
        assert any("using defaults" in line for line in result.stderr)

    def test_config_open_failure_fails_nondefault_tests(self, httpd):
        # boot-alt-port (test 2) depends on a non-default directive:
        # the same fault now fails the test — test-dependent structure.
        result = inject(httpd, 9, "fopen", 1)  # boot-deep-docroot
        assert result.failed and not result.crashed

    def test_socket_failure_fails_boot(self, httpd):
        result = inject(httpd, 1, "socket", 1)
        assert result.failed and not result.crashed

    def test_unknown_module_expected_boot_failure(self, httpd):
        # boot-unknown-module (test 5) expects boot to fail...
        result = run_test(httpd, httpd.suite[5])
        assert not result.failed
        # ...but a truncated config (injected fgets error) hides the bad
        # module, the boot *succeeds*, and the expected-failure test
        # fails — an injection flipping a negative test is real signal.
        result = inject(httpd, 5, "fgets", 1)
        assert result.failed and not result.crashed

    def test_read_failure_on_content_is_500_not_crash(self, httpd):
        result = inject(httpd, 1, "read", 1, errno="EIO")
        assert result.failed and not result.crashed

    def test_read_eintr_is_retried(self, httpd):
        result = inject(httpd, 1, "read", 1, errno="EINTR")
        assert not result.failed
        assert "httpd.request.read_retry" in result.coverage

    def test_accept_eintr_is_retried(self, httpd):
        result = inject(httpd, 1, "accept", 1, errno="EINTR")
        assert not result.failed
        assert "httpd.accept.eintr_retry" in result.coverage

    def test_log_write_failure_tolerated(self, httpd):
        result = inject(httpd, 1, "fputs", 1)
        assert not result.failed
        assert "httpd.log.write_failed" in result.coverage


class TestWorkloadShape:
    def test_session_tests_serve_many_requests(self, httpd):
        result = run_test(httpd, httpd.suite[58])  # session-24-requests
        assert result.call_counts["recv"] == 24
        assert result.call_counts["accept"] == 24

    def test_known_modules_cover_requested_counts(self):
        assert len(KNOWN_MODULES) == 16
