"""Tests for the content-addressed result cache (core/cache.py)."""

from __future__ import annotations

import pytest

from repro.core.cache import ResultCache
from repro.core.fault import Fault
from repro.core.runner import TargetRunner


def run_fault(coreutils, cache, test=1, function="malloc", call=1, trial=0):
    runner = TargetRunner(coreutils, cache=cache)
    return runner(Fault.of(test=test, function=function, call=call),
                  trial=trial)


class TestHitMiss:
    def test_first_execution_misses_then_hits(self, coreutils):
        cache = ResultCache()
        first = run_fault(coreutils, cache)
        assert cache.stats() == {"entries": 1, "hits": 0, "misses": 1,
                                 "evictions": 0}
        second = run_fault(coreutils, cache)
        assert cache.hits == 1
        assert second is first  # memoized object, not a re-execution

    def test_distinct_faults_do_not_collide(self, coreutils):
        cache = ResultCache()
        run_fault(coreutils, cache, function="malloc")
        run_fault(coreutils, cache, function="stat")
        assert len(cache) == 2 and cache.hits == 0

    def test_trial_is_part_of_the_identity(self, coreutils):
        cache = ResultCache()
        run_fault(coreutils, cache, trial=0)
        run_fault(coreutils, cache, trial=1)
        assert len(cache) == 2 and cache.hits == 0

    def test_step_budget_is_part_of_the_identity(self, coreutils):
        cache = ResultCache()
        TargetRunner(coreutils, cache=cache, step_budget=50_000)(
            Fault.of(test=1, function="malloc", call=1))
        TargetRunner(coreutils, cache=cache, step_budget=100)(
            Fault.of(test=1, function="malloc", call=1))
        assert len(cache) == 2 and cache.hits == 0

    def test_target_version_is_part_of_the_identity(self, docstore_old,
                                                    docstore_new):
        cache = ResultCache()
        fault = Fault.of(test=1, function="malloc", call=0)
        TargetRunner(docstore_old, cache=cache)(fault)
        TargetRunner(docstore_new, cache=cache)(fault)
        assert len(cache) == 2 and cache.hits == 0

    def test_cached_result_equals_fresh_execution(self, coreutils):
        cache = ResultCache()
        fault = Fault.of(test=12, function="link", call=1)
        cached = TargetRunner(coreutils, cache=cache)(fault)
        fresh = TargetRunner(coreutils)(fault)
        assert cached.summary() == fresh.summary()
        assert cached.coverage == fresh.coverage
        assert cached.steps == fresh.steps

    def test_hit_rate(self, coreutils):
        cache = ResultCache()
        run_fault(coreutils, cache)
        run_fault(coreutils, cache)
        run_fault(coreutils, cache)
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestEviction:
    def test_lru_eviction_beyond_capacity(self, coreutils):
        cache = ResultCache(capacity=2)
        run_fault(coreutils, cache, function="malloc")
        run_fault(coreutils, cache, function="stat")
        run_fault(coreutils, cache, function="open")  # evicts malloc
        assert len(cache) == 2 and cache.evictions == 1
        run_fault(coreutils, cache, function="malloc")  # miss: re-executes
        assert cache.misses == 4 and cache.hits == 0

    def test_get_refreshes_recency(self, coreutils):
        cache = ResultCache(capacity=2)
        run_fault(coreutils, cache, function="malloc")
        run_fault(coreutils, cache, function="stat")
        run_fault(coreutils, cache, function="malloc")  # hit, refresh
        run_fault(coreutils, cache, function="open")    # evicts stat
        run_fault(coreutils, cache, function="malloc")  # still cached
        assert cache.hits == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestPersistence:
    def test_roundtrip_preserves_results(self, coreutils, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache()
        original = run_fault(coreutils, cache, test=12, function="link")
        cache.save(path)

        warmed = ResultCache(path=path)
        assert len(warmed) == 1
        reloaded = run_fault(coreutils, warmed, test=12, function="link")
        assert warmed.hits == 1  # served from disk, not re-executed
        assert reloaded.summary() == original.summary()
        assert reloaded.coverage == original.coverage
        assert reloaded.plan.format() == original.plan.format()
        assert reloaded.call_counts == original.call_counts
        assert reloaded.invariant_violations == original.invariant_violations

    def test_range_valued_attributes_survive_roundtrip(self, coreutils,
                                                       tmp_path):
        # Tuple attribute values (range-trigger faults) must address the
        # same entry before and after JSON persistence.
        path = tmp_path / "cache.json"
        cache = ResultCache()
        fault = Fault.of(test=12, function="malloc", call=(1, 2))
        TargetRunner(coreutils, cache=cache)(fault)
        cache.save(path)
        warmed = ResultCache(path=path)
        TargetRunner(coreutils, cache=warmed)(fault)
        assert warmed.hits == 1

    def test_save_requires_a_path(self, coreutils):
        cache = ResultCache()
        run_fault(coreutils, cache)
        with pytest.raises(ValueError):
            cache.save()

    def test_default_path_loads_on_construction(self, coreutils, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        run_fault(coreutils, cache)
        cache.save()
        assert len(ResultCache(path=path)) == 1

    def test_save_creates_parent_directories(self, coreutils, tmp_path):
        path = tmp_path / "deep" / "nested" / "cache.json"
        cache = ResultCache()
        run_fault(coreutils, cache)
        cache.save(path)
        assert len(ResultCache(path=path)) == 1

    def test_corrupt_cache_file_starts_cold(self, coreutils, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("garbage{{")
        with pytest.warns(UserWarning, match="unreadable result cache"):
            cache = ResultCache(path=path)
        assert len(cache) == 0
        run_fault(coreutils, cache)  # still usable
        assert cache.misses == 1

    def test_clear(self, coreutils):
        cache = ResultCache()
        run_fault(coreutils, cache)
        cache.clear()
        assert len(cache) == 0


class TestAtomicSave:
    def test_save_replaces_not_truncates(self, coreutils, tmp_path,
                                         monkeypatch):
        """A crash mid-save must leave the previous file intact.

        The save path writes a temp file and renames it over the
        destination; if the rename (or anything before it) fails, the
        old contents must survive and the temp file must not leak.
        """
        import os

        path = tmp_path / "cache.json"
        cache = ResultCache()
        run_fault(coreutils, cache, function="malloc")
        cache.save(path)
        good = path.read_text()

        run_fault(coreutils, cache, function="stat")
        real_replace = os.replace

        def doomed_replace(src, dst):
            raise OSError("simulated crash at the rename")

        monkeypatch.setattr(os, "replace", doomed_replace)
        with pytest.raises(OSError, match="simulated crash"):
            cache.save(path)
        monkeypatch.setattr(os, "replace", real_replace)

        assert path.read_text() == good, "partial save clobbered the file"
        assert not list(tmp_path.glob("*.tmp")), "temp file leaked"
        assert len(ResultCache(path=path)) == 1  # the old, intact snapshot

    def test_no_temp_files_left_after_successful_save(self, coreutils,
                                                      tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache()
        run_fault(coreutils, cache)
        cache.save(path)
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_write_json_atomically_roundtrip(self, tmp_path):
        from repro.core.cache import write_json_atomically

        path = tmp_path / "payload.json"
        write_json_atomically(path, {"answer": 42})
        import json

        assert json.loads(path.read_text()) == {"answer": 42}
        write_json_atomically(path, {"answer": 43})
        assert json.loads(path.read_text()) == {"answer": 43}


class TestSessionIntegration:
    def test_second_identical_session_is_all_hits(self, coreutils):
        from repro.core import (
            ExplorationSession,
            FaultSpace,
            IterationBudget,
            RandomSearch,
            standard_impact,
        )

        space = FaultSpace.product(
            test=range(1, 30), function=coreutils.libc_functions(),
            call=[0, 1, 2],
        )
        cache = ResultCache()

        def explore():
            return ExplorationSession(
                TargetRunner(coreutils, cache=cache), space,
                standard_impact(), RandomSearch(), IterationBudget(40),
                rng=5,
            ).run()

        first = explore()
        assert cache.misses == 40 and cache.hits == 0
        second = explore()
        assert cache.hits == 40  # every re-executed fault was memoized
        assert second.to_json() == first.to_json()


class TestConcurrency:
    """The race the concurrent fabrics surfaced: every public read and
    write must hold the cache lock, so counters torn mid-update can
    never escape (hit_rate > 1.0, stats() disagreeing with itself,
    len() counted mid-eviction)."""

    def test_threads_hammering_a_tiny_cache_stay_consistent(self):
        import threading

        cache = ResultCache(capacity=8)  # tiny: constant eviction churn
        errors: list[str] = []
        start = threading.Barrier(8)

        def worker(seed: int) -> None:
            start.wait()
            for i in range(300):
                key = f"k{(seed * 300 + i) % 40}"
                if cache.get(key) is None:
                    cache.put(key, object())
                # Reads racing writers must always be self-consistent.
                stats = cache.stats()
                if set(stats) != {"entries", "hits", "misses", "evictions"}:
                    errors.append(f"stats keys: {stats}")
                if not 0 <= stats["entries"] <= cache.capacity:
                    errors.append(f"entries out of range: {stats}")
                if any(v < 0 for v in stats.values()):
                    errors.append(f"negative counter: {stats}")
                rate = cache.hit_rate
                if not 0.0 <= rate <= 1.0:
                    errors.append(f"torn hit_rate: {rate}")
                if not 0 <= len(cache) <= cache.capacity:
                    errors.append(f"len out of range: {len(cache)}")
                _ = key in cache
                if i % 100 == 50 and seed == 0:
                    cache.clear()

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors[:5]
        # After quiescence the counters must balance exactly.
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 300
        assert len(cache) == stats["entries"]

    def test_stats_snapshot_is_internally_consistent_under_eviction(self):
        import threading

        cache = ResultCache(capacity=4)
        stop = threading.Event()
        errors: list[str] = []

        def churn() -> None:
            i = 0
            while not stop.is_set():
                cache.put(f"c{i % 64}", object())
                i += 1

        def observe() -> None:
            while not stop.is_set():
                stats = cache.stats()
                # entries can never exceed capacity, even observed
                # mid-eviction, because the snapshot holds the lock.
                if stats["entries"] > cache.capacity:
                    errors.append(f"saw over-capacity snapshot: {stats}")

        writers = [threading.Thread(target=churn) for _ in range(4)]
        readers = [threading.Thread(target=observe) for _ in range(2)]
        for t in writers + readers:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in writers + readers:
            t.join(timeout=10)
        assert not errors, errors[:5]
