"""Property tests for the binary wire protocol v2 (cluster/wire.py).

Three layers of assurance for the batched data plane:

* hypothesis round-trips: every encodable :class:`TestRequest` /
  :class:`TestReport` — including tuple/frozenset scenario values and
  heavy string repetition (the interning path) — decodes back to an
  equal message;
* a version-negotiation matrix covering every (manager, node) pairing
  the handshake can see, v1 legacy peers included;
* hostile-frame fuzzing: arbitrary and surgically corrupted binary
  payloads must surface as :class:`WireError`, never as any other
  exception (the manager treats WireError as a poisoned peer; anything
  else would crash its serve thread).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, strategies as st

from repro.cluster.messages import TestReport, TestRequest
from repro.cluster.wire import (
    BINARY_MAGIC,
    MAX_BATCH_ITEMS,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    WireError,
    decode_binary_frame,
    encode_report_frame,
    encode_work_frame,
    negotiate_version,
    report_from_wire,
    report_to_wire,
)


def payload_of(frame: bytes) -> bytes:
    """Strip the 4-byte length prefix off an encoded frame."""
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    return frame[4:]


# -- strategies ---------------------------------------------------------------

# Scenario values mirror what FaultSpace axes actually produce: atoms,
# plus the tuple/frozenset shapes the JSON codec canonicalizes.  Floats
# are finite (NaN breaks equality, and no axis generates it).
_atoms = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)
_values = st.recursive(
    _atoms,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3).map(tuple),
        st.frozensets(
            st.one_of(
                st.integers(min_value=-100, max_value=100),
                st.text(max_size=8),
            ),
            max_size=3,
        ),
    ),
    max_leaves=8,
)

_requests = st.builds(
    TestRequest,
    request_id=st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    subspace=st.text(max_size=20),
    scenario=st.dictionaries(st.text(max_size=10), _values, max_size=5),
    trace_id=st.none() | st.text(max_size=12),
    parent_span=st.none() | st.text(max_size=12),
)

_reports = st.builds(
    TestReport,
    request_id=st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    manager=st.text(max_size=12),
    failed=st.booleans(),
    crash_kind=st.none() | st.sampled_from(
        ["segfault", "abort", "oom", "hang"]
    ),
    exit_code=st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    coverage=st.frozensets(st.text(max_size=10), max_size=6),
    injection_stack=st.none() | st.lists(
        st.text(max_size=10), max_size=4
    ).map(tuple),
    injected=st.booleans(),
    steps=st.integers(min_value=0, max_value=2 ** 40),
    measurements=st.dictionaries(
        st.text(max_size=10),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        max_size=4,
    ),
    cost=st.floats(
        min_value=0.0, allow_nan=False, allow_infinity=False, width=64
    ),
    invariant_violations=st.lists(st.text(max_size=12), max_size=3).map(tuple),
    spans=st.lists(
        st.dictionaries(st.text(max_size=8), _atoms, max_size=3),
        max_size=2,
    ).map(tuple),
    stack_digest=st.none() | st.text(max_size=16),
)


# -- round trips --------------------------------------------------------------

class TestWorkFrameRoundtrip:
    @given(st.lists(_requests, max_size=8))
    def test_any_batch_roundtrips(self, requests):
        message = decode_binary_frame(payload_of(encode_work_frame(requests)))
        assert message["type"] == "work"
        assert message["requests"] == requests

    def test_tuples_and_frozensets_survive_with_their_types(self):
        request = TestRequest(
            request_id=1, subspace="s",
            scenario={
                "path": ("a", ("b", "c")),
                "flags": frozenset({1, 2, 3}),
                "mixed": (frozenset({"x"}), 0),
            },
        )
        back = decode_binary_frame(
            payload_of(encode_work_frame([request]))
        )["requests"][0]
        assert back == request
        assert isinstance(back.scenario["path"], tuple)
        assert isinstance(back.scenario["flags"], frozenset)
        assert isinstance(back.scenario["mixed"][0], frozenset)

    def test_lists_and_sets_canonicalize_like_the_json_codec(self):
        # v1 JSON canonicalizes list->tuple and set->frozenset; the
        # binary codec must agree or digests diverge across versions.
        request = TestRequest(
            request_id=1, subspace="s",
            scenario={"path": ["a", "b"], "flags": {3, 1}},
        )
        back = decode_binary_frame(
            payload_of(encode_work_frame([request]))
        )["requests"][0]
        assert back.scenario["path"] == ("a", "b")
        assert back.scenario["flags"] == frozenset({1, 3})

    def test_interning_makes_repetition_cheap(self):
        # 64 requests share axis names and subspace: the frame must be
        # far below what repeating every string would cost.
        requests = [
            TestRequest(
                request_id=i, subspace="net",
                scenario={"test": i % 7, "function": "malloc", "call": 0},
            )
            for i in range(64)
        ]
        frame = encode_work_frame(requests)
        assert len(frame) / len(requests) < 20  # ~1 kB for 64 tests
        decoded = decode_binary_frame(payload_of(frame))
        assert decoded["requests"] == requests

    def test_batch_size_cap_is_enforced_both_ways(self):
        requests = [
            TestRequest(request_id=i, subspace="s", scenario={})
            for i in range(MAX_BATCH_ITEMS + 1)
        ]
        with pytest.raises(WireError):
            encode_work_frame(requests)

    def test_unencodable_value_is_a_wire_error(self):
        request = TestRequest(
            request_id=0, subspace="s", scenario={"bad": object()}
        )
        with pytest.raises(WireError):
            encode_work_frame([request])


class TestReportFrameRoundtrip:
    @given(st.lists(_reports, max_size=6), st.integers(0, 64))
    def test_any_batch_roundtrips(self, reports, slots):
        message = decode_binary_frame(
            payload_of(encode_report_frame(reports, slots=slots))
        )
        assert message["type"] == "report_batch"
        assert message["slots"] == slots
        assert message["reports"] == reports

    @given(_reports)
    def test_binary_report_equals_json_report(self, report):
        # The two codecs must be observationally identical: a campaign's
        # history digest cannot depend on which dialect carried it.
        over_json = report_from_wire(report_to_wire(report))
        over_binary = decode_binary_frame(
            payload_of(encode_report_frame([report]))
        )["reports"][0]
        assert over_binary == over_json

    def test_negative_slots_refused(self):
        with pytest.raises(WireError):
            encode_report_frame([], slots=-1)


# -- version negotiation ------------------------------------------------------

class TestNegotiation:
    @pytest.mark.parametrize(
        ("hello", "agreed"),
        [
            # A current node: agrees on v3 outright.
            ({"version": 3, "min_version": 1}, 3),
            ({"version": 3, "min_version": 3}, 3),
            # A v2 node from before the fleet frames: meets at v2.
            ({"version": 2, "min_version": 1}, 2),
            ({"version": 2, "min_version": 2}, 2),
            # A v1 legacy node (its hello predates min_version).
            ({"version": 1}, 1),
            ({"version": 1, "min_version": 1}, 1),
            # A future node that still speaks down to something we know.
            ({"version": 9, "min_version": 1}, 3),
            ({"version": 9, "min_version": 2}, 3),
            # A future node that refuses to speak anything we know.
            ({"version": 9, "min_version": 9}, None),
            ({"version": 9}, None),
            # Garbage hellos.
            ({}, None),
            ({"version": "2"}, None),
            ({"version": True}, None),
            ({"version": 2, "min_version": "x"}, None),
            ({"version": 0}, None),
            ({"version": 2, "min_version": 3}, None),  # inverted range
        ],
    )
    def test_matrix(self, hello, agreed):
        assert negotiate_version(hello) == agreed

    def test_constants_are_sane(self):
        assert MIN_PROTOCOL_VERSION == 1
        assert PROTOCOL_VERSION == 3


# -- hostile frames -----------------------------------------------------------

def expect_wire_error(payload: bytes) -> None:
    """Decoding must fail with WireError and nothing else."""
    try:
        decode_binary_frame(payload)
    except WireError:
        return
    except Exception as exc:  # pragma: no cover - the bug being hunted
        pytest.fail(
            f"decoder leaked {type(exc).__name__} for {payload[:40]!r}"
        )
    pytest.fail(f"decoder accepted hostile payload {payload[:40]!r}")


class TestHostileBinaryFrames:
    def test_empty_payload(self):
        expect_wire_error(b"")

    def test_magic_alone(self):
        expect_wire_error(bytes([BINARY_MAGIC]))

    def test_unknown_kind(self):
        expect_wire_error(bytes([BINARY_MAGIC, 0x7F]))

    def test_absurd_count_fails_before_allocating(self):
        # count = 2**35 requests; must die on the bounds check, not try
        # to build the list.
        hostile = bytes([BINARY_MAGIC, 0x01]) + b"\x80\x80\x80\x80\x80\x01"
        expect_wire_error(hostile)

    def test_unterminated_varint(self):
        hostile = bytes([BINARY_MAGIC, 0x01]) + b"\x80" * 80
        expect_wire_error(hostile)

    def test_dangling_string_backreference(self):
        good = payload_of(encode_work_frame([
            TestRequest(request_id=0, subspace="s", scenario={}),
        ]))
        # The subspace string is the frame's first interned entry; bump
        # its back-reference varint into the out-of-range zone.
        for index in range(len(good)):
            mutated = bytearray(good)
            mutated[index] = 0x7E  # a large one-byte varint
            try:
                decode_binary_frame(bytes(mutated))
            except WireError:
                pass  # every failure mode must look like this

    def test_trailing_bytes_after_payload(self):
        good = payload_of(encode_work_frame([]))
        expect_wire_error(good + b"\x00")

    def test_truncations_never_leak_other_exceptions(self):
        report = TestReport(
            request_id=3, manager="m", failed=True, crash_kind="segfault",
            exit_code=139, coverage=frozenset({"a", "b"}),
            injection_stack=("main", "read"), injected=True, steps=10,
            measurements={"steps": 10.0}, cost=0.01,
            invariant_violations=("inv",), spans=(),
            stack_digest="digest",
        )
        good = payload_of(encode_report_frame([report], slots=2))
        for cut in range(len(good)):
            expect_wire_error(good[:cut])

    def test_deflate_bomb_dies_on_the_envelope(self):
        import zlib

        from repro.cluster.wire import DEFLATE_MAGIC, MAX_FRAME_BYTES

        # A tiny stream claiming to inflate past the frame bound.
        claim = MAX_FRAME_BYTES + 1
        size = bytearray()
        n = claim
        while n > 0x7F:
            size.append((n & 0x7F) | 0x80)
            n >>= 7
        size.append(n)
        bomb = bytes([DEFLATE_MAGIC]) + bytes(size) + zlib.compress(
            b"\x00" * 1024
        )
        expect_wire_error(bomb)

    def test_deflated_size_lie_is_rejected(self):
        import zlib

        from repro.cluster.wire import DEFLATE_MAGIC

        inner = payload_of(encode_work_frame([
            TestRequest(request_id=i, subspace="net", scenario={"call": i})
            for i in range(40)
        ]))
        if inner[0] == DEFLATE_MAGIC:  # already enveloped: unwrap raw
            decoded = decode_binary_frame(inner)
            assert len(decoded["requests"]) == 40
        # Hand-build envelopes whose declared size is wrong.
        stream = zlib.compress(b"\xaf\x01\x00")  # a valid empty batch
        for lie in (0x00, 0x01, 0x7F):
            expect_wire_error(bytes([DEFLATE_MAGIC, lie]) + stream[:-1])

    def test_large_frames_travel_deflated_and_roundtrip(self):
        from repro.cluster.wire import DEFLATE_MAGIC

        requests = [
            TestRequest(
                request_id=i, subspace="net",
                scenario={"test": i % 7, "function": "malloc", "call": i},
            )
            for i in range(200)
        ]
        frame = payload_of(encode_work_frame(requests))
        assert frame[0] == DEFLATE_MAGIC  # big enough to deflate
        assert decode_binary_frame(frame)["requests"] == requests

    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_the_decoder(self, blob):
        try:
            decode_binary_frame(bytes([BINARY_MAGIC]) + blob)
        except WireError:
            pass

    @given(st.binary(max_size=200))
    def test_random_deflate_payloads_never_crash_the_decoder(self, blob):
        from repro.cluster.wire import DEFLATE_MAGIC

        try:
            decode_binary_frame(bytes([DEFLATE_MAGIC]) + blob)
        except WireError:
            pass

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 10_000))
    def test_single_byte_corruptions_never_crash_the_decoder(
        self, blob, seed
    ):
        good = payload_of(encode_work_frame([
            TestRequest(
                request_id=1, subspace="net",
                scenario={"test": 2, "function": "read", "call": 0},
                trace_id="t", parent_span="p",
            ),
        ]))
        mutated = bytearray(good)
        position = seed % len(mutated)
        mutated[position] = blob[seed % len(blob)]
        try:
            decoded = decode_binary_frame(bytes(mutated))
        except WireError:
            return
        # A corruption that still parses must at least be well-typed.
        assert decoded["type"] in ("work", "report_batch")
