"""Tests for the elastic-fleet machinery (protocol v3).

Work-stealing, graceful drain, mid-campaign join/sealing, and the
fleet-shared result cache — all over real localhost sockets, same as
tests/test_socket_fabric.py.  The load-bearing invariants:

* a steal never loses or duplicates a *report* (first-report-wins;
  ``stolen == victim skips + steal_duplicates``);
* a drain is not a death (``graceful_leaves`` up, ``worker_deaths``
  and ``requeued`` untouched);
* fleet dedup never moves the campaign history digest (differential
  test against a single-manager in-process fabric);
* a manager restart with a stolen chunk in flight re-executes nothing
  (shared node cache: ``misses == unique scenarios``).
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.cluster import (
    ClusterExplorer,
    ExplorerNode,
    FaultTolerantFabric,
    FleetResultCache,
    LocalCluster,
    NodeLatencyTracker,
    NodeManager,
    RetryPolicy,
    SocketFabric,
    scenario_digest,
)
from repro.core.cache import ResultCache
from repro.core.checkpoint import history_digest
from repro.core.faultspace import FaultSpace
from repro.core.impact import standard_impact
from repro.core.search import strategy_by_name
from repro.core.targets import IterationBudget
from repro.errors import ClusterError
from repro.sim.targets.minidb import MiniDbTarget

from tests.netutil import endpoint, free_port
from tests.test_socket_fabric import make_request

RETRY = RetryPolicy(max_attempts=200, base_delay=0.02, max_delay=0.2)


def unique_requests(count: int) -> list:
    """``count`` distinct (test, call) scenarios — no accidental dedup."""
    return [
        make_request(i, test=1 + (i % 3), function="read", call=i // 3)
        for i in range(count)
    ]


class SleepyNodeManager(NodeManager):
    """A manager that dawdles before each execution (a slow machine)."""

    def __init__(self, *args, delay: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.delay = delay

    def execute(self, request):
        if self.delay:
            time.sleep(self.delay)
        return super().execute(request)


class SleepyNode(ExplorerNode):
    """An explorer node whose executor is artificially slow."""

    def __init__(self, *args, delay: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.delay = delay

    def _node_manager(self) -> NodeManager:
        if self._manager is None:
            self._manager = SleepyNodeManager(
                self.name, self.target_factory(),
                step_budget=self.step_budget, cache=self.cache,
                delay=self.delay,
            )
        return self._manager


def run_fleet(net, nodes, fn):
    """Run ``fn()`` with every node serving, then tear the fleet down."""
    threads = [n.run_in_thread() for n in nodes]
    try:
        net.wait_for_nodes(count=len(nodes), timeout=15)
        return fn()
    finally:
        net.close()
        for node in nodes:
            node.stop()
        for thread in threads:
            thread.join(timeout=10)


class TestWorkStealing:
    def test_idle_node_steals_backlog_from_the_slow_one(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=2)
        fast = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="afast", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )
        slow = SleepyNode(
            (net.host, net.port), MiniDbTarget, name="slow", capacity=6,
            heartbeat_interval=0.1, reconnect_policy=RETRY, delay=0.08,
        )

        def campaign():
            reports = net.run_batch(unique_requests(8))
            assert [r.request_id for r in reports] == list(range(8))
            # Stealing moved work; nothing was requeued (that path is
            # for deaths) and every stolen id is accounted for: the
            # victim either skipped it or raced the revocation and
            # produced a duplicate report.
            assert net.stolen >= 2
            assert net.requeued == 0
            assert slow.stolen_skipped + net.steal_duplicates == net.stolen
            assert fast.executed + slow.executed == 8 + net.steal_duplicates
            stats = net.fleet_stats()
            assert stats["stolen"] == net.stolen
            assert stats["steal_duplicates"] == net.steal_duplicates

        run_fleet(net, [fast, slow], campaign)

    def test_latency_tracker_ranks_victims_and_forgets(self):
        tracker = NodeLatencyTracker(smoothing=0.5)
        assert tracker.per_test_seconds("n") is None
        assert tracker.estimate("n", backlog=3) == pytest.approx(3.0)
        tracker.observe("slow", tests=2, seconds=2.0)
        tracker.observe("fast", tests=10, seconds=0.1)
        assert tracker.per_test_seconds("slow") == pytest.approx(1.0)
        assert tracker.estimate("slow", 4) > tracker.estimate("fast", 4)
        # Unknown nodes borrow the fleet mean, not a wild guess.
        fleet_mean = tracker.estimate("stranger", 1)
        assert 0.01 < fleet_mean < 1.0
        tracker.forget("slow")
        assert tracker.per_test_seconds("slow") is None
        assert "fast" in tracker.stats()
        with pytest.raises(ClusterError):
            NodeLatencyTracker(smoothing=0.0)
        with pytest.raises(ClusterError):
            NodeLatencyTracker(smoothing=1.5)

    def test_ewma_updates_flow_from_absorbed_reports(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        node = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="n0", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )

        def campaign():
            net.run_batch(unique_requests(4))
            per_test = net.latency.per_test_seconds("n0")
            assert per_test is not None and per_test > 0
            stats = net.node_stats()[0]
            assert stats["per_test_seconds"] == pytest.approx(per_test)

        run_fleet(net, [node], campaign)


class TestGracefulDrain:
    def test_drain_after_budget_retires_the_node_without_a_death(
        self, minidb
    ):
        net = SocketFabric("127.0.0.1:0", expected_nodes=2)
        leaver = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="leaver", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY, drain_after=2,
        )
        stayer = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="stayer", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )
        threads = {n.name: n.run_in_thread() for n in (leaver, stayer)}
        try:
            net.wait_for_nodes(count=2, timeout=15)
            reports = net.run_batch(unique_requests(8))
            assert [r.request_id for r in reports] == list(range(8))
            threads["leaver"].join(timeout=10)
            assert not threads["leaver"].is_alive()  # run() returned
            assert leaver.executed >= 2
            assert net.graceful_leaves == 1
            assert net.health.graceful_exits == 1
            assert net.health.worker_deaths == 0
            assert net.requeued == 0
        finally:
            net.close()
            for node in (leaver, stayer):
                node.stop()
            for thread in threads.values():
                thread.join(timeout=10)

    def test_request_drain_while_idle_is_honored_via_heartbeat(
        self, minidb
    ):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        node = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="idler", capacity=2,
            heartbeat_interval=0.05, reconnect_policy=RETRY,
        )
        thread = node.run_in_thread()
        try:
            net.wait_for_nodes(timeout=15)
            node.request_drain()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert net.graceful_leaves == 1
            assert net.health.worker_deaths == 0
        finally:
            net.close()
            node.stop()
            thread.join(timeout=10)


class TestDynamicMembership:
    def test_mid_campaign_join_is_counted_and_carries_work(self, minidb):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        # The incumbent is slow, so the joiner visibly carries load.
        first = SleepyNode(
            (net.host, net.port), MiniDbTarget, name="first", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY, delay=0.05,
        )
        joiner = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="joiner", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )
        first_thread = first.run_in_thread()
        joiner_thread = None
        try:
            net.wait_for_nodes(count=1, timeout=15)
            net.run_batch(unique_requests(4))
            assert net.mid_campaign_joins == 0
            joiner_thread = joiner.run_in_thread()
            net.wait_for_nodes(count=2, timeout=15)
            assert net.mid_campaign_joins == 1
            reports = net.run_batch(
                [make_request(100 + i, test=1 + (i % 3), function="read",
                              call=i // 3) for i in range(8)]
            )
            assert len(reports) == 8
            assert joiner.executed > 0
            assert net.fleet_stats()["mid_campaign_joins"] == 1
        finally:
            net.close()
            for node in (first, joiner):
                node.stop()
            first_thread.join(timeout=10)
            if joiner_thread is not None:
                joiner_thread.join(timeout=10)

    def test_sealed_fleet_refuses_new_names_after_dispatch(self, minidb):
        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=1, allow_join=False
        )
        first = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="first", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )
        thread = first.run_in_thread()
        try:
            net.wait_for_nodes(count=1, timeout=15)
            net.run_batch(unique_requests(4))
            latecomer = ExplorerNode(
                (net.host, net.port), MiniDbTarget, name="latecomer",
                capacity=1,
                reconnect_policy=RetryPolicy(
                    max_attempts=2, base_delay=0.01, max_delay=0.02
                ),
                sleep=lambda _s: None,
            )
            with pytest.raises(ClusterError, match="sealed"):
                latecomer.run()
            assert net.mid_campaign_joins == 0
            # A *returning* name is a reconnect, never a join: the seal
            # must not lock a crashed node out of its own campaign.
            twin = ExplorerNode(
                (net.host, net.port), MiniDbTarget, name="first",
                capacity=2, heartbeat_interval=0.1,
                reconnect_policy=RETRY,
            )
            twin_thread = twin.run_in_thread()
            try:
                net.wait_for_nodes(count=1, timeout=15)
                reports = net.run_batch(
                    [make_request(200 + i) for i in range(4)]
                )
                assert len(reports) == 4
                assert net.mid_campaign_joins == 0
            finally:
                twin.stop()
                twin_thread.join(timeout=10)
        finally:
            net.close()
            first.stop()
            thread.join(timeout=10)


class TestFleetDedup:
    def test_duplicate_scenarios_are_answered_from_the_manager_cache(
        self, minidb
    ):
        cache = FleetResultCache()
        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=2, fleet_cache=cache
        )
        nodes = [
            ExplorerNode(
                (net.host, net.port), MiniDbTarget, name=f"n{i}",
                capacity=2, heartbeat_interval=0.1,
                reconnect_policy=RETRY,
            )
            for i in range(2)
        ]

        def campaign():
            # Round 1: ids 0..5 cover only three distinct scenarios,
            # but dedup needs a *completed* result, so all six execute.
            first = net.run_batch([make_request(i) for i in range(6)])
            # A steal may race its revocation and duplicate a single
            # execution; reports are still exactly-once.
            executed_before = sum(n.executed for n in nodes)
            assert executed_before == 6 + net.steal_duplicates
            assert net.fleet_dedup_hits == 0
            assert len(cache) == 3
            # Round 2: fresh ids, same scenarios — all served from the
            # fleet cache; the nodes never see them.
            second = net.run_batch(
                [make_request(100 + i) for i in range(6)]
            )
            assert [r.request_id for r in second] == \
                [100 + i for i in range(6)]
            assert net.fleet_dedup_hits == 6
            assert sum(n.executed for n in nodes) == executed_before
            by_scenario = {}
            for req, rep in zip([make_request(i) for i in range(6)], first):
                by_scenario.setdefault(
                    scenario_digest(req.subspace, req.scenario), rep
                )
            for req, rep in zip(
                [make_request(100 + i) for i in range(6)], second
            ):
                assert rep.cost == 0.0 and rep.spans == ()
                original = by_scenario[
                    scenario_digest(req.subspace, req.scenario)
                ]
                # ``manager`` names whichever node's report was cached
                # first — not digest material, like cost and spans.
                assert dataclasses.replace(
                    rep, request_id=0, manager=""
                ) == dataclasses.replace(
                    original, request_id=0, manager="", cost=0.0, spans=()
                )
            stats = net.fleet_stats()
            assert stats["fleet_dedup_hits"] == 6
            assert stats["dedup"]["entries"] == 3
            # Round 3 carries one fresh scenario, so a work frame goes
            # out — and the digest broadcast piggybacks on it.
            third = net.run_batch(
                [make_request(300, test=1, function="write", call=0)]
            )
            assert len(third) == 1
            assert set().union(*(n.known_digests for n in nodes))

        run_fleet(net, nodes, campaign)

    def test_campaign_digest_matches_single_manager_execution(
        self, minidb
    ):
        space = FaultSpace.product(
            test=range(1, len(minidb.suite) + 1),
            function=minidb.libc_functions(),
            call=range(0, 3),
        )

        def campaign(fabric):
            return ClusterExplorer(
                FaultTolerantFabric(fabric, policy=RetryPolicy()),
                space, standard_impact(), strategy_by_name("fitness"),
                IterationBudget(32), rng=7, batch_size=4,
            ).run()

        reference = history_digest(
            list(campaign(LocalCluster([NodeManager("solo", minidb)])))
        )
        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=2,
            fleet_cache=FleetResultCache(),
        )
        nodes = [
            ExplorerNode(
                (net.host, net.port), MiniDbTarget, name=f"n{i}",
                capacity=2, heartbeat_interval=0.1,
                reconnect_policy=RETRY,
            )
            for i in range(2)
        ]
        fleet_digest = run_fleet(
            net, nodes, lambda: history_digest(list(campaign(net)))
        )
        assert fleet_digest == reference

    def test_fleet_cache_records_synthesizes_and_evicts(self):
        from tests.test_socket_fabric import make_report

        cache = FleetResultCache(capacity=2)
        r0, r1, r2 = (make_request(i, test=i, function="read", call=0)
                      for i in range(3))
        assert cache.synthesize(r0) is None
        digest = cache.record(r0, make_report(0))
        assert digest == scenario_digest(r0.subspace, r0.scenario)
        assert cache.record(r0, make_report(0)) is None  # already known
        twin = make_request(9, test=0, function="read", call=0)
        synthesized = cache.synthesize(twin)
        assert synthesized is not None
        assert synthesized.request_id == 9
        assert synthesized.cost == 0.0 and synthesized.spans == ()
        cache.record(r1, make_report(1))
        cache.record(r2, make_report(2))  # capacity 2: r0 evicted
        assert cache.synthesize(r0) is None
        assert cache.stats()["evictions"] == 1
        cursor, digests = cache.digests_since(0)
        assert cursor == 3 and len(digests) == 3
        assert cache.digests_since(cursor) == (cursor, [])

    def test_scenario_digest_is_order_and_tuple_insensitive(self):
        a = scenario_digest("s", {"call": 0, "path": ("a", "b")})
        b = scenario_digest("s", {"path": ["a", "b"], "call": 0})
        assert a == b
        assert a != scenario_digest("s", {"call": 1, "path": ("a", "b")})
        assert a != scenario_digest("t", {"call": 0, "path": ("a", "b")})


class TestManagerRestartWithStolenChunk:
    def test_stolen_chunk_survives_a_manager_restart_without_rerun(
        self, minidb
    ):
        # The nastiest interleaving: a steal is in flight when the
        # manager dies.  Both nodes share one (thread-safe) result
        # cache, so the combined miss count is the number of *real*
        # executions across the whole saga: misses == unique scenarios
        # is the machine-checkable "nothing ran twice, nothing lost".
        shared = ResultCache()
        port = free_port()
        net1 = SocketFabric(endpoint(port), expected_nodes=2)
        fast = ExplorerNode(
            (net1.host, port), MiniDbTarget, name="afast", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY, cache=shared,
        )
        slow = SleepyNode(
            (net1.host, port), MiniDbTarget, name="slow", capacity=6,
            heartbeat_interval=0.1, reconnect_policy=RETRY, cache=shared,
            delay=0.1,
        )
        requests = unique_requests(8)
        threads = [n.run_in_thread() for n in (fast, slow)]
        outcome: dict[str, object] = {}

        def doomed_round():
            try:
                outcome["reports"] = net1.run_batch(requests)
            except ClusterError as exc:
                outcome["error"] = exc

        try:
            net1.wait_for_nodes(count=2, timeout=15)
            round_thread = threading.Thread(target=doomed_round,
                                            daemon=True)
            round_thread.start()
            deadline = time.monotonic() + 10
            while net1.stolen == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert net1.stolen >= 1  # the steal is now in flight
            net1.close(drain=False)  # manager crash, no shutdown frames
            round_thread.join(timeout=10)
            assert "error" in outcome  # the round died with the manager

            net2 = SocketFabric(endpoint(port), expected_nodes=2)
            try:
                net2.wait_for_nodes(count=2, timeout=15)
                reports = net2.run_batch(requests)
                assert [r.request_id for r in reports] == list(range(8))
                stats = shared.stats()
                # Every scenario executed exactly once fleet-wide: the
                # re-dispatch replayed finished work from the shared
                # cache instead of re-running it, and the stolen ids
                # were executed by exactly one of thief/victim.
                assert stats["misses"] == 8
                assert stats["hits"] >= 1  # the restart replayed work
            finally:
                net2.close()
        finally:
            net1.close()
            for node in (fast, slow):
                node.stop()
            for thread in threads:
                thread.join(timeout=10)


class TestFleetStatsSurface:
    def test_fleet_stats_reach_health_meta_through_the_wrappers(
        self, minidb
    ):
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        node = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="n0", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )

        def campaign():
            space = FaultSpace.product(
                test=range(1, 4), function=minidb.libc_functions(),
                call=range(0, 2),
            )
            explorer = ClusterExplorer(
                FaultTolerantFabric(net, policy=RetryPolicy()),
                space, standard_impact(), strategy_by_name("fitness"),
                IterationBudget(8), rng=3, batch_size=4,
            )
            explorer.run()
            stats = explorer.fleet_stats()
            assert stats is not None
            for key in ("stolen", "graceful_leaves", "mid_campaign_joins",
                        "fleet_dedup_hits", "requeued"):
                assert key in stats

        run_fleet(net, [node], campaign)

    def test_elastic_counters_are_exported_as_metrics(self, minidb):
        from repro.obs import MetricsRegistry

        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=1,
            fleet_cache=FleetResultCache(),
        )
        node = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="n0", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )

        def campaign():
            net.run_batch(unique_requests(4))
            registry = MetricsRegistry()
            net.bind_metrics(registry)
            gauges = registry.snapshot()["gauges"]
            for name in (
                "fabric.net.stolen", "fabric.net.steal_duplicates",
                "fabric.net.graceful_leaves",
                "fabric.net.mid_campaign_joins", "fabric.net.dedup_hits",
            ):
                assert name in gauges
            per_node = [
                value for name, value in gauges.items()
                if name.startswith("fabric.node.per_test_seconds")
            ]
            assert per_node and all(v > 0 for v in per_node)

        run_fleet(net, [node], campaign)


class TestZombieAssignments:
    """Regression: a steal race can complete a round while the thief is
    still executing a stolen id.  The id lingers in the thief's
    ``assigned`` dict with nobody waiting for it (a zombie); a later
    round reusing the same id — which the warm-rerun dedup path reaches
    within milliseconds — must neither trust the zombie as in-flight
    coverage (it would wait forever) nor absorb the zombie's late
    report for a different request."""

    def test_new_round_is_not_blocked_by_a_zombie_assignment(self):
        net = SocketFabric(
            "127.0.0.1:0", expected_nodes=2,
            fleet_cache=FleetResultCache(),
        )
        nodes = [
            ExplorerNode(
                (net.host, net.port), MiniDbTarget, name=f"n{i}",
                capacity=4, heartbeat_interval=0.1,
                reconnect_policy=RETRY,
            )
            for i in range(2)
        ]

        def campaign():
            requests = unique_requests(6)
            first = net.run_batch(requests)
            assert len(first) == 6
            # Plant the zombie the race would leave behind: the round
            # above completed, but one node's bookkeeping still holds a
            # request — as if its steal-duplicate report lost and its
            # own execution were still in flight.
            with net._cond:
                conn = next(iter(net._nodes.values()))
                conn.assigned[requests[0].request_id] = requests[0]
            done = threading.Event()
            rerun: list = []

            def second_round():
                rerun.extend(net.run_batch(requests))
                done.set()

            worker = threading.Thread(target=second_round, daemon=True)
            worker.start()
            # Every scenario is in the fleet cache, so the rerun must
            # come back instantly instead of waiting on the zombie.
            assert done.wait(timeout=20), "round hung on a zombie id"
            assert len(rerun) == 6
            assert [r.request_id for r in rerun] == [
                r.request_id for r in requests
            ]

        run_fleet(net, nodes, campaign)

    def test_zombie_report_for_a_reused_id_is_discarded(self, minidb):
        """A zombie's late report must not satisfy a *different*
        request that happens to reuse its id."""
        net = SocketFabric("127.0.0.1:0", expected_nodes=1)
        node = ExplorerNode(
            (net.host, net.port), MiniDbTarget, name="n0", capacity=2,
            heartbeat_interval=0.1, reconnect_policy=RETRY,
        )

        def campaign():
            old = make_request(0, test=1, function="read", call=0)
            new = dataclasses.replace(
                old, scenario={"test": 2, "function": "read", "call": 1}
            )
            [old_report] = net.run_batch([old])
            with net._cond:
                conn = next(iter(net._nodes.values()))
                # The node is still "executing" the old request for
                # id 0 while a new round redefines id 0.
                conn.assigned[0] = old
                net._pending[0] = new
                before = net.late_reports
                net._absorb_one_locked(conn, old_report)
                assert net.late_reports == before + 1
                assert 0 not in net._reports
                del net._pending[0]

        run_fleet(net, [node], campaign)
