"""Property-based contracts for the world-side fault models.

Hypothesis drives the mutation primitives and the windowed network
state through arbitrary inputs: torn writes never grow data (and a torn
WAL file never exceeds the intact one), the corruption and bit-flip
masks are involutions, every partition heals back to a connected
fabric, and composed campaigns digest identically no matter how the
spec spells the composition.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplorationSession,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
)
from repro.core.checkpoint import history_digest
from repro.injection.models import compose_models, model_injector, model_space
from repro.injection.models.bitflip import BitFlipState, flip_bit
from repro.injection.models.disk import (
    DiskFaultState,
    corrupt_bytes,
    torn_bytes,
)
from repro.injection.models.net import NetFaultState
from repro.sim.filesystem import O_CREAT, O_WRONLY, SimFilesystem


class TestTornWrites:
    @given(data=st.binary(max_size=200))
    def test_torn_prefix_never_longer_than_original(self, data):
        torn = torn_bytes(data)
        assert len(torn) <= len(data)
        assert data.startswith(torn)

    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=40), min_size=1,
                        max_size=6),
        write_number=st.integers(min_value=1, max_value=8),
    )
    def test_torn_file_never_exceeds_intact_length(self, chunks, write_number):
        def total_written(state) -> int:
            fs = SimFilesystem()
            fs.disk_fault = state
            fd = fs.open("/f", O_WRONLY | O_CREAT)
            claimed = sum(fs.write(fd, chunk) for chunk in chunks)
            fs.close(fd)
            # the syscall return values always claim full success.
            assert claimed == sum(len(chunk) for chunk in chunks)
            return len(fs.read_file("/f"))

        intact = total_written(None)
        torn = total_written(DiskFaultState(write_number, "torn"))
        assert torn <= intact

    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=40), min_size=1,
                        max_size=6),
        write_number=st.integers(min_value=1, max_value=8),
    )
    def test_corruption_preserves_length(self, chunks, write_number):
        fs = SimFilesystem()
        fs.disk_fault = DiskFaultState(write_number, "corrupt")
        fd = fs.open("/f", O_WRONLY | O_CREAT)
        for chunk in chunks:
            fs.write(fd, chunk)
        fs.close(fd)
        assert len(fs.read_file("/f")) == sum(len(chunk) for chunk in chunks)


class TestInvolutions:
    @given(data=st.binary(max_size=100))
    def test_corrupt_mask_is_involution(self, data):
        assert corrupt_bytes(corrupt_bytes(data)) == data
        assert len(corrupt_bytes(data)) == len(data)

    @given(data=st.binary(min_size=1, max_size=50),
           bit=st.integers(min_value=0, max_value=7))
    def test_flip_bit_is_involution(self, data, bit):
        buffer = bytearray(data)
        flip_bit(buffer, bit)
        assert bytes(buffer) != data  # one bit really changed
        flip_bit(buffer, bit)
        assert bytes(buffer) == data

    @given(access=st.integers(min_value=1, max_value=10),
           bit=st.integers(min_value=0, max_value=7),
           accesses=st.integers(min_value=1, max_value=20))
    def test_bitflip_fires_at_most_once(self, access, bit, accesses):
        state = BitFlipState(access, bit)
        original = bytes(range(1, 9))
        buffer = bytearray(original)
        for _ in range(accesses):
            state.on_access(buffer)
        if accesses >= access:
            assert state.fired
            expected = bytearray(original)
            flip_bit(expected, bit)
            assert buffer == expected
        else:
            assert not state.fired
            assert buffer == bytearray(original)


class TestPartitionsHeal:
    @given(op_number=st.integers(min_value=1, max_value=12),
           window=st.integers(min_value=1, max_value=5),
           mode=st.sampled_from(["partition", "delay", "reorder"]))
    def test_every_window_closes(self, op_number, window, mode):
        state = NetFaultState(op_number, mode, window=window)
        faulted = sum(
            1 for _ in range(op_number + window + 5)
            if state.on_op() is not None
        )
        assert faulted == window
        assert state.healed
        # once healed, the network stays connected forever.
        for _ in range(10):
            assert state.peek() is None
            assert state.on_op() is None

    @given(op_number=st.integers(min_value=1, max_value=12))
    def test_peek_is_side_effect_free(self, op_number):
        state = NetFaultState(op_number, "partition")
        before = state.ops
        state.peek()
        assert state.ops == before


class TestCompositionOrderInvariance:
    @settings(max_examples=3)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_spec_spelling_never_changes_the_campaign(self, seed, coreutils):
        def digest(spec: str) -> str:
            space = model_space(coreutils, compose_models(spec)).restrict_axis(
                "test", range(1, 8)
            )
            session = ExplorationSession(
                runner=TargetRunner(coreutils, model_injector(spec)),
                space=space,
                metric=standard_impact(),
                strategy=FitnessGuidedSearch(),
                target=IterationBudget(25),
                rng=seed,
            )
            return history_digest(list(session.run()))

        assert digest("errno+disk") == digest("disk+errno")
