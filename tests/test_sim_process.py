"""Tests for sim primitives: stack, sync, coverage, and the test runner."""

from __future__ import annotations

import pytest

from repro.injection.plan import InjectionPlan
from repro.sim.coverage import Coverage
from repro.sim.crashes import AbortCrash, HangDetected
from repro.sim.errnos import Errno
from repro.sim.process import Env, run_test
from repro.sim.stack import CallStack
from repro.sim.sync import Mutex
from repro.sim.testsuite import Target
from repro.sim.testsuite import TestCase as SimTestCase
from repro.sim.testsuite import TestSuite as SimTestSuite
from repro.errors import TargetError


class TestCallStack:
    def test_snapshot_includes_root(self):
        assert CallStack().snapshot() == ("main",)

    def test_frame_push_pop(self):
        stack = CallStack()
        with stack.frame("a"):
            with stack.frame("b"):
                assert stack.snapshot() == ("main", "a", "b")
        assert stack.snapshot() == ("main",)

    def test_frame_pops_on_exception(self):
        stack = CallStack()
        with pytest.raises(ValueError):
            with stack.frame("a"):
                raise ValueError("boom")
        assert stack.depth == 1

    def test_cannot_pop_root(self):
        with pytest.raises(IndexError):
            CallStack().pop()

    def test_top_and_depth(self):
        stack = CallStack()
        stack.push("x")
        assert stack.top == "x" and stack.depth == 2


class TestMutex:
    def test_lock_unlock(self):
        m = Mutex("m")
        m.lock()
        assert m.locked
        m.unlock()
        assert not m.locked

    def test_double_unlock_aborts(self):
        m = Mutex("m")
        m.lock()
        m.unlock()
        with pytest.raises(AbortCrash) as excinfo:
            m.unlock()
        assert "double unlock" in str(excinfo.value)

    def test_self_deadlock_is_hang(self):
        m = Mutex("m")
        m.lock()
        with pytest.raises(HangDetected):
            m.lock()

    def test_acquisition_count(self):
        m = Mutex("m")
        m.lock(); m.unlock(); m.lock()
        assert m.acquisitions == 2


class TestCoverage:
    def test_hit_and_blocks(self):
        cov = Coverage()
        cov.hit("a")
        cov.hit("a")
        cov.hit("b")
        assert cov.blocks == frozenset({"a", "b"})
        assert len(cov) == 2
        assert "a" in cov

    def test_percent(self):
        universe = frozenset({"a", "b", "c", "d"})
        assert Coverage.percent(frozenset({"a", "b"}), universe) == 50.0
        assert Coverage.percent(frozenset(), frozenset()) == 0.0

    def test_percent_ignores_blocks_outside_universe(self):
        assert Coverage.percent(frozenset({"x"}), frozenset({"a"})) == 0.0


# -- a tiny inline target for run_test semantics ---------------------------

class _TinyTarget(Target):
    name = "tiny"
    version = "0"

    def build_suite(self) -> TestSuite:
        def ok(env: Env) -> None:
            env.cov.hit("tiny.ok")
            env.print("fine")

        def graceful(env: Env) -> None:
            env.exit(3)

        def asserts(env: Env) -> None:
            env.check(False, "always fails")

        def segfaults(env: Env) -> None:
            with env.frame("boom"):
                env.libc.heap.load(0, 0, 1)

        def hangs(env: Env) -> None:
            while True:
                env.libc.getcwd()

        def uses_rng(env: Env) -> None:
            env.print(str(env.rng.random()))

        def fs_error_in_assertion(env: Env) -> None:
            env.fs.read_file("/never-created")

        bodies = [ok, graceful, asserts, segfaults, hangs, uses_rng,
                  fs_error_in_assertion]
        return SimTestSuite([
            SimTestCase(id=i, name=f"t{i}", group="tiny", body=b)
            for i, b in enumerate(bodies, start=1)
        ])


@pytest.fixture(scope="module")
def tiny() -> _TinyTarget:
    return _TinyTarget()


class TestRunTest:
    def test_pass(self, tiny):
        result = run_test(tiny, tiny.suite[1])
        assert not result.failed
        assert result.exit_code == 0
        assert result.stdout == ("fine",)
        assert "tiny.ok" in result.coverage
        assert result.summary() == "passed"

    def test_graceful_exit_code(self, tiny):
        result = run_test(tiny, tiny.suite[2])
        assert result.failed and result.exit_code == 3
        assert result.crash_kind is None

    def test_assertion_failure(self, tiny):
        result = run_test(tiny, tiny.suite[3])
        assert result.failed
        assert result.failure_message == "always fails"

    def test_segfault_captured(self, tiny):
        result = run_test(tiny, tiny.suite[4])
        assert result.crash_kind == "segfault"
        assert result.crashed
        assert result.exit_code == 139
        assert result.crash_stack == ("main", "boom")

    def test_hang_captured(self, tiny):
        result = run_test(tiny, tiny.suite[5], step_budget=50)
        assert result.crash_kind == "hang"
        assert result.hung and result.failed and not result.crashed

    def test_rng_deterministic_per_trial(self, tiny):
        a = run_test(tiny, tiny.suite[6], trial=0)
        b = run_test(tiny, tiny.suite[6], trial=0)
        c = run_test(tiny, tiny.suite[6], trial=1)
        assert a.stdout == b.stdout
        assert a.stdout != c.stdout

    def test_fs_error_in_assertion_is_test_failure(self, tiny):
        result = run_test(tiny, tiny.suite[7])
        assert result.failed and result.crash_kind is None
        assert "ENOENT" in (result.failure_message or "")

    def test_injection_stack_absent_when_nothing_fires(self, tiny):
        result = run_test(tiny, tiny.suite[1],
                          InjectionPlan.single("read", 5, Errno.EIO, -1))
        assert not result.injected
        assert result.injection_stack is None

    def test_call_counts_reported(self, tiny):
        result = run_test(tiny, tiny.suite[5], step_budget=50)
        assert result.call_counts.get("getcwd", 0) > 0

    def test_runs_are_hermetic(self, tiny):
        first = run_test(tiny, tiny.suite[1])
        second = run_test(tiny, tiny.suite[1])
        assert first.coverage == second.coverage
        assert first.steps == second.steps


class TestTestSuiteValidation:
    def test_ids_must_start_at_one(self):
        with pytest.raises(TargetError):
            SimTestSuite([SimTestCase(id=2, name="x", group="g", body=lambda e: None)])

    def test_ids_must_be_contiguous(self):
        with pytest.raises(TargetError):
            SimTestSuite([
                SimTestCase(id=1, name="a", group="g", body=lambda e: None),
                SimTestCase(id=3, name="b", group="g", body=lambda e: None),
            ])

    def test_empty_suite_rejected(self):
        with pytest.raises(TargetError):
            SimTestSuite([])

    def test_zero_id_rejected(self):
        with pytest.raises(TargetError):
            SimTestCase(id=0, name="x", group="g", body=lambda e: None)

    def test_lookup_unknown_id(self, tiny):
        with pytest.raises(TargetError):
            tiny.suite[99]

    def test_groups_in_order(self, tiny):
        assert tiny.suite.groups == ("tiny",)
        assert len(tiny.suite.in_group("tiny")) == len(tiny.suite)
