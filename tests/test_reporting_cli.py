"""Tests for reporting helpers and the afex CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.fault import Fault
from repro.core.results import ExecutedTest, ResultSet
from repro.injection.plan import InjectionPlan
from repro.reporting import (
    comparison_table,
    cumulative_counts,
    render_structure_map,
    structure_map,
)
from repro.sim.process import RunResult


def executed(index: int, failed: bool, impact: float = 0.0,
             coverage: frozenset = frozenset()) -> ExecutedTest:
    result = RunResult(
        test_id=1, test_name="t", plan=InjectionPlan.none(),
        exit_code=1 if failed else 0, crash_kind=None, crash_message=None,
        crash_stack=None, injection_stack=None, injected=True,
        coverage=coverage, steps=1,
    )
    return ExecutedTest(index, Fault.of(i=index), result, impact, impact)


class TestComparisonTable:
    def test_rows_and_columns(self):
        results = ResultSet([executed(0, True), executed(1, False)])
        table = comparison_table({"fitness": results, "random": results})
        text = table.render()
        assert "fitness" in text and "random" in text
        assert "# failed tests" in text

    def test_coverage_row_with_universe(self):
        covered = ResultSet([executed(0, False, coverage=frozenset({"a"}))])
        table = comparison_table(
            {"x": covered}, coverage_universe=frozenset({"a", "b"})
        )
        assert "coverage %" in table.render()
        assert "50.0" in table.render()


class TestCumulativeCounts:
    def test_monotone_and_correct(self):
        results = ResultSet([
            executed(0, True), executed(1, False), executed(2, True),
        ])
        series = cumulative_counts(results)
        assert series == [1, 1, 2]

    def test_custom_predicate(self):
        results = ResultSet([executed(0, False, impact=10.0),
                             executed(1, False, impact=0.0)])
        series = cumulative_counts(results, lambda t: t.impact > 5)
        assert series == [1, 1]

    def test_empty(self):
        assert cumulative_counts(ResultSet([])) == []


class TestStructureMap:
    def test_grid_shape(self, coreutils):
        functions = ["malloc", "opendir"]
        grid = structure_map(coreutils, functions, test_ids=[1, 2, 12])
        assert len(grid) == 3
        assert all(len(row) == 2 for row in grid)

    def test_render_contains_markers(self, coreutils):
        functions = ["malloc", "opendir"]
        grid = structure_map(coreutils, functions, test_ids=[2, 12])
        text = render_structure_map(grid, functions, [2, 12])
        assert "#" in text  # at least one failing injection
        assert "test" in text


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--target", "coreutils"])
        assert args.command == "run" and args.strategy == "fitness"

    def test_targets_command(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "coreutils" in out and "minidb" in out

    def test_run_command_prints_summary(self, capsys):
        code = main([
            "run", "--target", "coreutils", "--iterations", "20",
            "--seed", "1", "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "space size" in out and "1653" in out
        assert "top" in out

    def test_run_random_strategy(self, capsys):
        assert main([
            "run", "--target", "coreutils", "--strategy", "random",
            "--iterations", "10", "--seed", "2",
        ]) == 0

    def test_run_with_space_file(self, tmp_path, capsys):
        space_file = tmp_path / "space.fs"
        space_file.write_text(
            "test : [ 1 , 29 ]\nfunction : { malloc, stat }\n"
            "call : [ 0 , 2 ] ;\n"
        )
        assert main([
            "run", "--target", "coreutils", "--space", str(space_file),
            "--iterations", "15", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "174" in out  # 29*2*3 space size

    def test_run_online_quality_prints_live_rows(self, capsys):
        assert main([
            "run", "--target", "coreutils", "--iterations", "25",
            "--seed", "1", "--online-quality",
        ]) == 0
        out = capsys.readouterr().out
        assert "live clusters" in out
        assert "non-redundant" in out
        assert "distances computed/avoided" in out

    def test_run_online_quality_leaves_history_unchanged(self, capsys):
        args = ["run", "--target", "coreutils", "--iterations", "20",
                "--seed", "4"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--online-quality"]) == 0
        online = capsys.readouterr().out
        digest = [line for line in plain.splitlines()
                  if line.startswith("history digest:")]
        assert digest and digest[0] in online

    def test_feedback_with_online_quality_uses_live_novelty(self, capsys):
        assert main([
            "run", "--target", "coreutils", "--iterations", "20",
            "--seed", "2", "--feedback", "--online-quality",
            "--similarity-threshold", "0.4",
        ]) == 0
        out = capsys.readouterr().out
        assert "live clusters" in out

    def test_profile_command_emits_dsl(self, capsys):
        assert main(["profile", "--target", "coreutils",
                     "--max-call", "2"]) == 0
        out = capsys.readouterr().out
        from repro.core.dsl import parse_fault_space

        space = parse_fault_space(out)
        assert "test" in space.axis_names()

    def test_unknown_target_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--target", "nonsense"])
