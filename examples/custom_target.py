"""Bringing your own system under test (§6.4's 8-step integration).

AFEX is target-agnostic: you provide startup/test/cleanup scripts, the
callsite analyzer derives the fault space for you (in the paper's DSL),
and the explorer does the rest.  This example tests a tiny user-written
"settings store" service that persists key=value pairs — including a
subtle recovery bug the exploration finds: the save path truncates the
settings file *before* knowing the write will succeed, so a failed write
destroys the previous contents.

Run:  python examples/custom_target.py
"""

from repro.cluster import ScriptTarget, UserScripts
from repro.core import (
    ExplorationSession,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    parse_fault_space,
    standard_impact,
)
from repro.injection.callsite import profile_target
from repro.sim.filesystem import O_CREAT, O_TRUNC, O_WRONLY, O_RDONLY


# -- the user's system under test (written against the simulated libc) ----

def save_settings(env, pairs: dict) -> bool:
    """Persist settings.  BUG: truncate-then-write is not crash-safe."""
    libc = env.libc
    with env.frame("save_settings"):
        fd = libc.open("/app/settings", O_CREAT | O_WRONLY | O_TRUNC)
        if fd < 0:
            return False
        payload = "".join(f"{k}={v}\n" for k, v in pairs.items()).encode()
        if libc.write(fd, payload) < 0:
            libc.close(fd)   # the old file is already gone...
            return False
        return libc.close(fd) == 0


def load_settings(env) -> dict | None:
    libc = env.libc
    with env.frame("load_settings"):
        fd = libc.open("/app/settings", O_RDONLY)
        if fd < 0:
            return None
        raw = b""
        while True:
            chunk = libc.read(fd, 64)
            if chunk == -1:
                libc.close(fd)
                return None
            if not chunk:
                break
            raw += bytes(chunk)
        libc.close(fd)
        return dict(
            line.split("=", 1) for line in raw.decode().splitlines() if "=" in line
        )


# -- the three user scripts (§6.4 step 5) -----------------------------------

def startup(env) -> None:
    env.fs.mkdir("/app")
    env.fs.create_file("/app/settings", b"theme=dark\nlang=en\n")


def test_roundtrip(env) -> None:
    before = load_settings(env)
    env.check(before is not None, "initial load failed")
    before["volume"] = "11"
    env.check(save_settings(env, before), "save failed")
    after = load_settings(env)
    env.check(after == before, "settings lost or corrupted after save")


def main() -> None:
    target = ScriptTarget(
        [UserScripts(test_roundtrip, startup, name="settings-roundtrip")],
        name="settings-store",
    )

    # Step 2: derive the fault space mechanically (ltrace-style).
    profile = profile_target(target)
    description = profile.fault_space_description()
    print("derived fault-space description (paper Fig. 3 DSL):\n")
    print(description)
    space = parse_fault_space(description)
    print(f"=> {space.size()} explorable faults\n")

    # Steps 6-8: explore and analyze.
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(initial_batch=10),
        target=IterationBudget(min(60, space.size())),
        rng=2,
    )
    results = session.run()
    print(f"executed {len(results)} tests, {results.failed_count()} failed")
    for executed in results.top(3):
        if executed.failed:
            print(f"  impact={executed.impact:5.1f}  {executed.fault}")
            print(f"      -> {executed.result.summary()}")

    # The data-loss bug: a failed write after the truncate loses settings.
    data_loss = [
        t for t in results.failed_tests()
        if t.fault.value("function") == "write"
    ]
    if data_loss:
        print("\nfound the truncate-before-write data-loss bug:")
        print(f"  {data_loss[0].fault} -> "
              f"{data_loss[0].result.failure_message}")


if __name__ == "__main__":
    main()
