"""Hunt for crash bugs in a database server, black-box.

The paper's MySQL scenario (§7.1): point AFEX at a DBMS with a
2.18-million-point fault space and let it find injections that *crash*
the server.  This example uses the §7.4 redundancy feedback loop so the
search keeps moving to *new* crash sites instead of farming the first
one, then clusters the crashes by stack trace and emits one replay
script per distinct failure mode — ready to drop into a regression
suite (§6.3).

Run:  python examples/find_database_crashes.py
"""

from repro import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RedundancyFeedback,
    TargetRunner,
    standard_impact,
    target_by_name,
)


def main() -> None:
    target = target_by_name("minidb")
    space = FaultSpace.product(
        test=range(1, len(target.suite) + 1),
        function=target.libc_functions(),
        call=range(1, 101),
    )
    print(f"fault space: {space.size():,} points "
          f"({len(target.suite)} tests x 19 functions x 100 calls)")

    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(fitness_weight=RedundancyFeedback()),
        target=IterationBudget(4000),
        rng=11,
    )
    results = session.run()
    print(f"executed {len(results)} tests: "
          f"{results.failed_count()} failed, "
          f"{results.crash_count()} crashed, "
          f"{len(results.hangs())} hung")

    # Cluster the crashes by injection-point stack trace (§5).
    clusters = results.cluster(of=lambda t: t.crashed, max_distance=1)
    print(f"\n{results.crash_count()} crashes fall into "
          f"{clusters.cluster_count} redundancy clusters:")
    representatives = results.cluster_representatives(
        of=lambda t: t.crashed, max_distance=1
    )
    for rep in representatives:
        stack = " > ".join(rep.result.crash_stack or ())
        print(f"  * {rep.fault}")
        print(f"      crash: {rep.result.crash_message}")
        print(f"      stack: {stack}")

    # One auto-generated replay script per distinct failure mode.
    scripts = results.regression_suite("minidb", of=lambda t: t.crashed)
    print(f"\ngenerated {len(scripts)} replay scripts "
          f"(one per cluster), e.g.:\n")
    name, source = next(iter(scripts.items()))
    print(f"--- {name} " + "-" * 40)
    print("\n".join(source.splitlines()[:14]))
    print("...")


if __name__ == "__main__":
    main()
