"""Quickstart: explore a fault space with AFEX in ~30 lines.

Explores the simulated coreutils (ls/ln/mv) fault space — 29 tests x
19 libc functions x 3 call numbers = 1,653 faults — with the paper's
fitness-guided algorithm, then prints what was found and how it compares
to uninformed random sampling.

Run:  python examples/quickstart.py
"""

from repro import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    RandomSearch,
    TargetRunner,
    standard_impact,
    target_by_name,
)
from repro.util.tables import TextTable


def explore(strategy, seed=1, iterations=250):
    target = target_by_name("coreutils")
    space = FaultSpace.product(
        test=range(1, len(target.suite) + 1),
        function=target.libc_functions(),
        call=[0, 1, 2],  # 0 = no injection, 1/2 = fail the 1st/2nd call
    )
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),  # coverage + failures + hangs + crashes
        strategy=strategy,
        target=IterationBudget(iterations),
        rng=seed,
    )
    return session.run()


def main() -> None:
    guided = explore(FitnessGuidedSearch())
    random_baseline = explore(RandomSearch())

    table = TextTable(["metric", "fitness-guided", "random"],
                      title="250 fault injections into ls/ln/mv")
    for key in ("tests", "failed", "crashes", "covered_blocks"):
        table.add_row([
            key, guided.summary()[key], random_baseline.summary()[key],
        ])
    print(table.render())

    print("\nTop 5 highest-impact faults (guided search):")
    for executed in guided.top(5):
        print(f"  impact={executed.impact:5.1f}  {executed.fault}")
        print(f"      -> {executed.result.summary()}")


if __name__ == "__main__":
    main()
