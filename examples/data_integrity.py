"""Testing durability contracts with fault-injection-oriented assertions.

The paper predicts (§7) that test suites will grow assertions like
"under no circumstances should a file transfer be only partially
completed when the system stops."  This example shows that workflow on
DocStore's snapshot-durability contract — "once snapshot() acknowledged
success, that data survives anything" — and lets the explorer count
violations for the pre-production v0.8 versus the hardened v2.0.

It also demonstrates a *real discovery* this machinery made in this
repository: mv -b's backup decision is a check-then-act window — a
failed stat skips the backup and the rename silently clobbers the
destination.

Run:  python examples/data_integrity.py
"""

from repro import (
    CompositeImpact,
    ExplorationSession,
    FailedTestImpact,
    FaultSpace,
    FitnessGuidedSearch,
    InvariantImpact,
    IterationBudget,
    TargetRunner,
    target_by_name,
)
from repro.util.tables import TextTable


def hunt_violations(target, space, iterations, seed):
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        # Ordinary failures give the search a gradient toward fragile
        # regions; an invariant violation dominates everything else.
        metric=CompositeImpact([InvariantImpact(30.0), FailedTestImpact(1.0)]),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(iterations),
        rng=seed,
    )
    results = session.run()
    return results, [t for t in results if t.result.violated]


def main() -> None:
    # -- DocStore: snapshot durability across maturities --------------------
    table = TextTable(
        ["version", "tests run", "durability violations"],
        title="DocStore snapshot-durability contract under exploration",
    )
    for version in ("0.8", "2.0"):
        target = target_by_name(f"docstore-{version}")
        space = FaultSpace.product(
            test=range(36, 51),  # the persist group
            function=["open", "write", "close", "rename", "fsync"],
            call=range(1, 8),
        )
        results, violations = hunt_violations(target, space, 200, seed=1)
        table.add_row([f"v{version}", len(results), len(violations)])
        if violations:
            sample = violations[0]
            print(f"v{version} data-loss example: {sample.fault}")
            print(f"  -> {sample.result.invariant_violations[0]}\n")
    print(table.render())

    # -- the discovered mv -b check-then-act window --------------------------
    coreutils = target_by_name("coreutils")
    space = FaultSpace.product(
        test=range(21, 30),
        function=coreutils.libc_functions(),
        call=[0, 1, 2],
    )
    found = []
    for seed in (1, 2, 3, 4):
        _, violations = hunt_violations(coreutils, space, 250, seed)
        found += violations
        if found:
            break
    print("\nmv no-data-loss contract:")
    if found:
        hit = found[0]
        print(f"  VIOLATION found: {hit.fault}")
        print(f"  -> {hit.result.invariant_violations[0]}")
        print("  (mv -b checks the destination with stat before backing it "
              "up; a\n   failed stat skips the backup and the rename "
              "silently destroys the\n   destination — mv prints nothing "
              "and returns success)")
    else:
        print("  no violation found in this run (it lives at a single "
              "point: test 27, stat, call 2)")


if __name__ == "__main__":
    main()
