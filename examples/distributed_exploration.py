"""Cluster-parallel exploration (§6, Fig. 2 architecture).

An explorer coordinates node managers, each owning a copy of the system
under test, a fault-injector plugin, and a sensor set.  This example
runs a real thread-pool cluster over MiniHttpd, then models the same
exploration on virtual 1/4/14-node clusters to show the §7.7 linear
scaling.

Run:  python examples/distributed_exploration.py
"""

from repro.cluster import (
    ClusterExplorer,
    LocalCluster,
    NodeManager,
    VirtualCluster,
)
from repro.core import (
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    standard_impact,
)
from repro.sim.targets.httpd import HTTPD_FUNCTIONS
from repro import target_by_name
from repro.util.tables import TextTable


def httpd_space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
    )


def main() -> None:
    # -- a real (thread-pool) 4-node cluster -------------------------------
    managers = [
        NodeManager(f"node{i}", target_by_name("httpd")) for i in range(4)
    ]
    explorer = ClusterExplorer(
        LocalCluster(managers),
        httpd_space(),
        standard_impact(),
        FitnessGuidedSearch(),
        IterationBudget(400),
        rng=5,
    )
    results = explorer.run()
    print(f"4-node cluster executed {len(results)} tests: "
          f"{results.failed_count()} failed, {results.crash_count()} crashed")
    for manager in managers:
        print(f"  {manager.describe()}")

    # -- virtual-time scaling, 1 vs 4 vs 14 nodes ---------------------------
    table = TextTable(["nodes", "virtual makespan (ms)", "speedup"],
                      title="\nmodelled cluster scaling (§7.7)")
    for nodes in (1, 4, 14):
        cluster = VirtualCluster([
            NodeManager(f"v{i}", target_by_name("httpd"))
            for i in range(nodes)
        ])
        ClusterExplorer(
            cluster, httpd_space(), standard_impact(),
            FitnessGuidedSearch(), IterationBudget(280), rng=5,
            batch_size=28,
        ).run()
        table.add_row([
            nodes,
            f"{cluster.makespan * 1000:.1f}",
            f"{cluster.speedup_over_serial():.2f}x",
        ])
    print(table.render())


if __name__ == "__main__":
    main()
