"""Cluster-parallel exploration (§6, Fig. 2 architecture).

An explorer coordinates node managers, each owning a copy of the system
under test, a fault-injector plugin, and a sensor set.  This example
runs a real thread-pool cluster over MiniHttpd — hardened by the
fault-tolerance layer and checkpointed so a killed run can resume —
then models the same exploration on virtual 1/4/14-node clusters to
show the §7.7 linear scaling.

Run:  python examples/distributed_exploration.py

Crash-resume drill (what the CI chaos-smoke job does)::

    # run and die after 150 tests, leaving a checkpoint behind
    python examples/distributed_exploration.py \
        --checkpoint /tmp/ck.json --checkpoint-every 40 --die-after 150
    # resume: continues where the checkpoint left off, and the final
    # "history digest" line matches an uninterrupted run's exactly
    python examples/distributed_exploration.py \
        --checkpoint /tmp/ck.json --resume /tmp/ck.json
"""

import argparse
import os

from repro.cluster import (
    ClusterExplorer,
    FaultTolerantFabric,
    LocalCluster,
    NodeManager,
    RetryPolicy,
    VirtualCluster,
)
from repro.core import (
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    standard_impact,
)
from repro.core.checkpoint import history_digest, load_checkpoint
from repro.sim.targets.httpd import HTTPD_FUNCTIONS
from repro import target_by_name
from repro.util.tables import TextTable


def httpd_space() -> FaultSpace:
    return FaultSpace.product(
        test=range(1, 59), function=HTTPD_FUNCTIONS, call=range(1, 11)
    )


def main(argv: list[str] | None = None) -> None:
    # argv=None means "no flags" (the test harness imports and calls
    # main() directly); the script entry point passes sys.argv[1:].
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=400)
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="write resume snapshots to PATH")
    parser.add_argument("--checkpoint-every", type=int, default=40,
                        help="snapshot interval in executed tests")
    parser.add_argument("--resume", default=None, metavar="PATH",
                        help="resume from a checkpoint written earlier")
    parser.add_argument("--die-after", type=int, default=None, metavar="N",
                        help="simulate a crash: hard-exit (code 137) after "
                        "N executed tests")
    parser.add_argument("--profile", action="store_true",
                        help="collect metrics and write BENCH_obs.json")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write Prometheus exposition text to PATH")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="record span events as JSON lines to PATH")
    args = parser.parse_args([] if argv is None else argv)

    metrics = tracer = None
    if args.profile or args.metrics_out or args.trace_out:
        from repro.obs import JsonLinesSink, MetricsRegistry, RingBufferSink, Tracer

        metrics = MetricsRegistry()
        sinks: list = [RingBufferSink()]
        if args.trace_out:
            sinks.append(JsonLinesSink(args.trace_out))
        tracer = Tracer(sinks=sinks)

    # -- a real (thread-pool) 4-node cluster, hardened ---------------------
    managers = [
        NodeManager(f"node{i}", target_by_name("httpd"), metrics=metrics)
        for i in range(4)
    ]
    fabric = FaultTolerantFabric(LocalCluster(managers), policy=RetryPolicy())

    die_after = args.die_after

    def maybe_die(executed) -> None:
        # A deterministic stand-in for `kill -9`: the checkpoint on disk
        # is all the next run gets.
        if die_after is not None and executed.index + 1 >= die_after:
            print(f"simulated crash after {executed.index + 1} tests "
                  f"(checkpoint: {args.checkpoint})", flush=True)
            os._exit(137)

    explorer = ClusterExplorer(
        fabric,
        httpd_space(),
        standard_impact(),
        FitnessGuidedSearch(),
        IterationBudget(args.iterations),
        rng=5,
        on_test=maybe_die if die_after is not None else None,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume_from=load_checkpoint(args.resume) if args.resume else None,
        metrics=metrics,
        tracer=tracer,
    )
    results = explorer.run()
    print(f"4-node cluster executed {len(results)} tests: "
          f"{results.failed_count()} failed, {results.crash_count()} crashed")
    for manager in managers:
        print(f"  {manager.describe()}")
    print(f"fabric health: {fabric.health.describe()}")
    print(f"history digest: {history_digest(list(results))}")

    if tracer is not None:
        tracer.close()
        if args.trace_out:
            print(f"trace: {args.trace_out}")
    if metrics is not None:
        from repro.obs import profile_payload, render_table, to_prometheus

        if args.metrics_out:
            from pathlib import Path

            Path(args.metrics_out).write_text(to_prometheus(metrics))
            print(f"metrics: {args.metrics_out}")
        if args.profile:
            from repro.core.cache import write_json_atomically

            print()
            print(render_table(metrics, title="metrics: distributed example"))
            write_json_atomically("BENCH_obs.json", profile_payload(
                metrics,
                meta={"example": "distributed_exploration",
                      "iterations": args.iterations, "tests": len(results)},
            ))
            print("profile: BENCH_obs.json")

    # -- virtual-time scaling, 1 vs 4 vs 14 nodes ---------------------------
    table = TextTable(["nodes", "virtual makespan (ms)", "speedup"],
                      title="\nmodelled cluster scaling (§7.7)")
    for nodes in (1, 4, 14):
        cluster = VirtualCluster([
            NodeManager(f"v{i}", target_by_name("httpd"))
            for i in range(nodes)
        ])
        ClusterExplorer(
            cluster, httpd_space(), standard_impact(),
            FitnessGuidedSearch(), IterationBudget(280), rng=5,
            batch_size=28,
        ).run()
        table.add_row([
            nodes,
            f"{cluster.makespan * 1000:.1f}",
            f"{cluster.speedup_over_serial():.2f}x",
        ])
    print(table.render())


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
