"""Using domain knowledge to speed up fault exploration (§7.5).

Reproduces the Table 6 workflow interactively: the goal is to find every
out-of-memory scenario that makes ``ln`` or ``mv`` fail (there are
exactly 28).  Three knowledge levels are compared:

1. black-box: the full 1,653-point space, no hints;
2. trimmed: the function axis reduced to the 9 libc functions ln/mv
   actually call (knowledge from tracing, or from reading the man page);
3. trimmed + environment model: a statistical model of the deployment
   environment (malloc failures are 40% of real-world faults, file I/O
   50%, directory ops 10%) reweights measured impact so the search
   prioritizes faults that actually happen in production.

Run:  python examples/domain_knowledge.py
"""

from repro import (
    CollectMatching,
    EnvironmentModel,
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    TargetRunner,
    standard_impact,
    target_by_name,
)
from repro.core.targets import AnyOf
from repro.util.tables import TextTable

TOTAL = 28  # failing OOM scenarios over ln+mv, known from exhaustive search

LN_MV_FUNCTIONS = (
    "malloc", "fopen", "fclose", "fputs", "fflush", "stat", "rename",
    "link", "setlocale",
)

ENV_MODEL = EnvironmentModel.from_groups([
    (["malloc"], 0.40),
    (["fopen", "read", "write", "open", "close"], 0.50),
    (["opendir", "chdir"], 0.10),
])


def is_goal(executed) -> bool:
    return (
        executed.failed
        and executed.fault.value("function") == "malloc"
        and 12 <= int(executed.fault.value("test")) <= 29  # the ln/mv tests
    )


def samples_until_all_found(space, environment=None, seed=3) -> int:
    target = target_by_name("coreutils")
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=standard_impact(),
        strategy=FitnessGuidedSearch(),
        target=AnyOf(CollectMatching(is_goal, TOTAL),
                     IterationBudget(space.size())),
        rng=seed,
        environment=environment,
    )
    return len(session.run())


def main() -> None:
    target = target_by_name("coreutils")
    full_space = FaultSpace.product(
        test=range(1, 30), function=target.libc_functions(), call=[0, 1, 2]
    )
    trimmed_space = full_space.restrict_axis("function", LN_MV_FUNCTIONS)

    table = TextTable(
        ["knowledge level", "space size", "samples to find all 28"],
        title="the Table 6 experiment (lower is better)",
    )
    black_box = samples_until_all_found(full_space)
    table.add_row(["black-box", full_space.size(), black_box])
    trimmed = samples_until_all_found(trimmed_space)
    table.add_row(["trimmed function axis", trimmed_space.size(), trimmed])
    informed = samples_until_all_found(trimmed_space, ENV_MODEL)
    table.add_row(["trimmed + environment model", trimmed_space.size(),
                   informed])
    print(table.render())
    print(f"\nspeedup from knowledge: {black_box / informed:.1f}x "
          f"(paper: ~4x)")


if __name__ == "__main__":
    main()
