"""Hunting performance-degrading faults (§6's "top-50 worst
faults performance-wise" scenario).

Not every harmful fault crashes the target: some are silently *slow* —
they trigger retries, fallbacks, and recomputation that multiply the
work per request.  This example measures each coreutils test's
fault-free cost (in simulated libc calls), then explores with an impact
metric that scores *relative slowdown*, surfacing the faults that make
the tools burn the most extra work while still "succeeding".

Run:  python examples/performance_faults.py
"""

from repro import (
    ExplorationSession,
    FaultSpace,
    FitnessGuidedSearch,
    IterationBudget,
    SlowdownImpact,
    TargetRunner,
    measure_step_baseline,
    target_by_name,
)
from repro.util.tables import TextTable


def main() -> None:
    target = target_by_name("coreutils")
    print("measuring fault-free baselines for all 29 tests...")
    baseline = measure_step_baseline(target)

    space = FaultSpace.product(
        test=range(1, 30),
        function=target.libc_functions(),
        call=[0, 1, 2],
    )
    session = ExplorationSession(
        runner=TargetRunner(target),
        space=space,
        metric=SlowdownImpact(baseline, scale=100.0),
        strategy=FitnessGuidedSearch(),
        target=IterationBudget(300),
        rng=9,
    )
    results = session.run()

    slow = [t for t in results.top(8) if t.impact > 0]
    table = TextTable(
        ["slowdown", "fault", "passed?", "steps vs baseline"],
        title="top performance-degrading faults (search guided by slowdown)",
    )
    for executed in slow:
        test_id = int(executed.fault.value("test"))
        table.add_row([
            f"+{executed.impact:.0f}%",
            str(executed.fault),
            "yes" if not executed.failed else "no",
            f"{executed.result.steps} vs {baseline[test_id]}",
        ])
    print(table.render())

    survivors = [t for t in slow if not t.failed]
    if survivors:
        print("\nnote: the faults marked 'yes' degrade performance while "
              "every test still PASSES —\nexactly the class of silent "
              "production problems crash-focused metrics never surface.")


if __name__ == "__main__":
    main()
