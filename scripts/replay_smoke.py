"""CI smoke for one-command crash replay with call-level provenance.

Exercises the full crash-id pipeline the way a developer chasing a bug
report would:

1. ``afex run`` on the replkv target under the composed ``errno+disk``
   model, writing a checkpoint and a ``--report-json`` document; a
   failing top entry's crash id is the bug report.
2. ``afex replay <id>`` against the checkpoint must reproduce the
   recorded payload with zero divergence (exit 0) and print a
   call-level provenance explanation; the report document must resolve
   the same id too.
3. The same campaign is served through ``afex serve`` into a SQLite
   store; ``afex replay <id> --store`` and the service's
   ``POST /v1/results/<id>/replay`` route must both reproduce the
   stored result, and every path must agree on the replayed result
   digest.
4. A provenance-overhead spot check: the capture must stay within the
   acceptance budget of the provenance-off baseline.

Exit code 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.server import ServiceClient  # noqa: E402

LISTENING = re.compile(r"campaign service listening on ([\d.]+:\d+)")

TARGET = "replkv"
FAULT_MODEL = "errno+disk"


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def run_cli(args: list[str], timeout: float,
            expect: int = 0) -> subprocess.CompletedProcess:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout, env=cli_env(),
        cwd=REPO,
    )
    if proc.returncode != expect:
        raise SystemExit(
            f"afex {' '.join(args)} exited {proc.returncode}, wanted "
            f"{expect}:\n{proc.stdout}\n{proc.stderr}"
        )
    return proc


def replay_json(args: list[str], timeout: float) -> dict:
    proc = run_cli(["replay", *args, "--json"], timeout=timeout)
    outcome = json.loads(proc.stdout)
    if outcome["matches"] is not True:
        raise SystemExit(
            f"afex replay {' '.join(args)} diverged:\n{proc.stdout}"
        )
    return outcome


def measure_overhead(iterations: int) -> float:
    """Median per-run overhead of provenance capture vs. baseline."""
    import statistics

    from repro.sim.process import run_test
    from repro.sim.targets import target_by_name

    target = target_by_name(TARGET)
    test = target.suite[1]

    def clock(provenance: bool) -> float:
        samples = []
        for _ in range(7):
            started = time.perf_counter()
            for _ in range(iterations):
                run_test(target, test, provenance=provenance)
            samples.append(time.perf_counter() - started)
        return statistics.median(samples)

    clock(False)  # warm caches/imports outside the measurement
    baseline = clock(False)
    captured = clock(True)
    return (captured - baseline) / baseline


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--iterations", type=int, default=250,
                        help="campaign iteration budget")
    parser.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="provenance-on overhead budget as a fraction (default "
        "0.05, the acceptance gate)",
    )
    parser.add_argument("--workdir", default=None)
    args = parser.parse_args()

    workdir = Path(args.workdir or REPO / "replay-smoke")
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "afex-service.db"
    if store.exists():
        store.unlink()
    checkpoint = workdir / "campaign.ckpt"
    report_path = workdir / "report.json"

    # -- 1: campaign with checkpoint + report --------------------------------
    print("[1/4] campaign: replkv under errno+disk, checkpoint + report")
    campaign_flags = [
        "--target", TARGET, "--fault-model", FAULT_MODEL,
        "--strategy", "fitness", "--iterations", str(args.iterations),
        "--seed", "1",
    ]
    run_cli(
        ["run", *campaign_flags,
         "--checkpoint", str(checkpoint), "--checkpoint-every", "50",
         "--report-json", str(report_path)],
        timeout=args.timeout,
    )
    report = json.loads(report_path.read_text())
    failing = [
        entry for entry in report["top"]
        if entry.get("failed") and entry.get("crash_id")
    ]
    if not failing:
        raise SystemExit(
            "campaign produced no failing top entry with a crash id; "
            "raise --iterations"
        )
    crash_id = failing[0]["crash_id"]
    print(f"      crash id {crash_id}")

    # -- 2: replay from the checkpoint and the report ------------------------
    print("[2/4] replay from the checkpoint and the report document")
    from_ckpt = replay_json(
        [crash_id, "--checkpoint", str(checkpoint)], timeout=args.timeout
    )
    if "fault at " not in from_ckpt["explanation"]:
        raise SystemExit(
            "replay explanation names no provenance call: "
            f"{from_ckpt['explanation']!r}"
        )
    print(f"      checkpoint: zero divergence; {from_ckpt['explanation']}")
    short_id = crash_id[:12]
    from_report = replay_json(
        [short_id, "--report-json", str(report_path)], timeout=args.timeout
    )
    if from_report["result_digest"] != from_ckpt["result_digest"]:
        raise SystemExit(
            "replayed result digests differ between checkpoint and "
            f"report sources: {from_ckpt['result_digest']} vs "
            f"{from_report['result_digest']}"
        )
    print(f"      report (short id {short_id}): digests agree")

    # -- 3: replay from the service store, CLI and HTTP ----------------------
    print("[3/4] serve the same campaign; replay by id from the store")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--store", str(store),
         "--data-dir", str(workdir), "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=cli_env(), cwd=REPO,
    )
    try:
        assert server.stdout is not None
        deadline = time.monotonic() + args.timeout
        endpoint = None
        captured = []
        while time.monotonic() < deadline:
            line = server.stdout.readline()
            if not line:
                break
            captured.append(line)
            match = LISTENING.search(line)
            if match:
                endpoint = match.group(1)
                break
        if endpoint is None:
            raise SystemExit(
                "server never printed its endpoint:\n" + "".join(captured)
            )
        client = ServiceClient(endpoint)
        run_cli(
            ["submit", "--endpoint", endpoint, "--tenant", "smoke",
             "--wait", "--timeout", str(args.timeout), *campaign_flags],
            timeout=args.timeout,
        )
        from_store = replay_json(
            [crash_id, "--store", str(store)], timeout=args.timeout
        )
        if from_store["result_digest"] != from_ckpt["result_digest"]:
            raise SystemExit(
                "store replay digest diverged from checkpoint replay: "
                f"{from_store['result_digest']} vs "
                f"{from_ckpt['result_digest']}"
            )
        served = client.replay(crash_id)
        if served["matches"] is not True:
            raise SystemExit(
                f"service-side replay diverged: {json.dumps(served)[:2000]}"
            )
        if served["result_digest"] != from_ckpt["result_digest"]:
            raise SystemExit(
                "service replay digest diverged: "
                f"{served['result_digest']} vs {from_ckpt['result_digest']}"
            )
        client.shutdown()
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
    print("      store + HTTP replay: zero divergence, digests agree")

    # -- 4: provenance overhead ----------------------------------------------
    print("[4/4] provenance capture overhead")
    overhead = measure_overhead(iterations=60)
    print(f"      median overhead {overhead * 100:+.1f}% "
          f"(budget {args.max_overhead * 100:.0f}%)")
    if overhead > args.max_overhead:
        raise SystemExit(
            f"provenance capture overhead {overhead * 100:.1f}% exceeds "
            f"the {args.max_overhead * 100:.0f}% budget"
        )

    print("OK: crash ids replay identically from checkpoint, report, "
          "store, and the service API, with call-level provenance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
