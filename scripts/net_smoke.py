"""CI smoke for the socket fabric: real processes, real TCP, one digest.

Runs the same exploration twice through the ``afex`` CLI:

1. an in-process reference (``--fabric threads``), and
2. a socket-fabric campaign — a manager process plus N ``afex node``
   subprocesses on localhost —

and requires their ``history digest:`` lines to be byte-identical: the
network moves placement, never outcomes.  With ``--kill-one``, one node
process is SIGKILLed mid-campaign; the digest must *still* match,
proving the requeue path loses and duplicates nothing.

Elastic-fleet churn (protocol v3): ``--join-one`` starts one node
short and lets the straggler join mid-campaign (the manager runs with
``--min-nodes``); ``--drain-one`` gives one node a ``--drain-after``
budget so it leaves gracefully mid-campaign.  Either way the digest
must still match — membership churn moves placement, never outcomes.

Exit code 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENDPOINT = re.compile(r"socket fabric listening on ([\d.]+:\d+)")
REGISTERED = re.compile(r"node\(s\) registered; exploring")
DIGEST = re.compile(r"^history digest: ([0-9a-f]{64})$", re.MULTILINE)


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def run_cli(args: list[str], timeout: float) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout, env=cli_env(),
        cwd=REPO,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"afex {' '.join(args)} failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def digest_of(output: str, label: str) -> str:
    match = DIGEST.search(output)
    if not match:
        raise SystemExit(f"no history digest in {label} output:\n{output}")
    return match.group(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", default="minidb")
    parser.add_argument(
        "--fault-model", default="errno", metavar="SPEC",
        help="fault-model spec for both the manager and the node "
             "processes (e.g. 'errno+disk'); composed world models must "
             "digest identically across fabrics just like plain errno",
    )
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument(
        "--kill-one", action="store_true",
        help="SIGKILL one node mid-campaign; the digest must still match",
    )
    parser.add_argument(
        "--join-one", action="store_true",
        help="start one node short and let the straggler join "
             "mid-campaign (the manager runs with --min-nodes); the "
             "digest must still match",
    )
    parser.add_argument(
        "--drain-one", action="store_true",
        help="give one node a --drain-after budget so it leaves "
             "gracefully mid-campaign; the digest must still match",
    )
    parser.add_argument(
        "--drain-after", type=int, default=10, metavar="N",
        help="the drained node's test budget under --drain-one",
    )
    parser.add_argument(
        "--wire-version", type=int, choices=(1, 2, 3), default=None,
        help="pin the node processes' wire protocol (1 = legacy JSON "
             "data plane); the digest must match either way",
    )
    args = parser.parse_args()

    initial_nodes = args.nodes - 1 if args.join_one else args.nodes
    if initial_nodes < 1:
        raise SystemExit("--join-one needs --nodes >= 2")
    if args.kill_one and args.drain_one and initial_nodes < 2:
        raise SystemExit(
            "--kill-one with --drain-one needs two distinct victims"
        )

    common = [
        "run", "--target", args.target, "--strategy", "fitness",
        "--fault-model", args.fault_model,
        "--iterations", str(args.iterations), "--seed", str(args.seed),
        "--batch-size", str(args.batch_size), "--top", "0",
    ]

    print(f"[1/2] in-process reference ({args.nodes} thread workers)")
    reference = run_cli(
        common + ["--fabric", "threads", "--workers", str(args.nodes)],
        timeout=args.timeout,
    )
    want = digest_of(reference, "reference")
    print(f"      digest {want}")

    churn = [
        note for note, wanted in (
            ("killing one mid-run", args.kill_one),
            ("one joins mid-run", args.join_one),
            ("one drains mid-run", args.drain_one),
        ) if wanted
    ]
    print(f"[2/2] socket fabric: manager + {initial_nodes} node processes"
          + (f" ({', '.join(churn)})" if churn else ""))
    manager_args = [
        "--fabric", "socket", "--listen", "127.0.0.1:0",
        "--nodes", str(args.nodes), "--node-wait", "60",
    ]
    if args.join_one:
        # Start exploring as soon as the initial fleet is up; the
        # straggler is a mid-campaign join (--min-nodes implies
        # --allow-join).
        manager_args += ["--min-nodes", str(initial_nodes)]
    manager = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *common, *manager_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=cli_env(), cwd=REPO,
    )
    nodes: list[subprocess.Popen] = []
    try:
        captured: list[str] = []
        assert manager.stdout is not None

        def wait_for_line(pattern: re.Pattern, what: str,
                          timeout: float = 90.0) -> str:
            deadline = time.monotonic() + timeout
            while True:
                if time.monotonic() > deadline:
                    raise SystemExit(
                        f"manager never printed {what}:\n"
                        + "".join(captured)
                    )
                line = manager.stdout.readline()
                if not line:
                    raise SystemExit(
                        f"manager exited before printing {what}:\n"
                        + "".join(captured)
                    )
                captured.append(line)
                match = pattern.search(line)
                if match:
                    return match.group(1) if match.groups() else line

        endpoint = wait_for_line(ENDPOINT, "its endpoint", timeout=30.0)
        print(f"      manager at {endpoint}")

        node_args = []
        if args.wire_version is not None:
            node_args += ["--wire-version", str(args.wire_version)]

        def start_node(i: int, extra: list[str]) -> None:
            nodes.append(subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "node",
                 "--connect", endpoint, "--target", args.target,
                 "--fault-model", args.fault_model,
                 "--name", f"smoke{i}", "--capacity", "4",
                 *node_args, *extra],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                env=cli_env(), cwd=REPO,
            ))

        # The drain victim is the *last* initial node so it never
        # collides with the kill victim (node 0).
        drain_index = initial_nodes - 1 if args.drain_one else None
        for i in range(initial_nodes):
            start_node(i, ["--drain-after", str(args.drain_after)]
                       if i == drain_index else [])

        if args.kill_one or args.join_one:
            # Wait for the initial fleet to register and the campaign
            # to start dispatching, so churn lands mid-round.
            wait_for_line(REGISTERED, "the fleet registration")
            time.sleep(0.2)
        if args.join_one:
            start_node(args.nodes - 1, [])
            print(f"      joined node pid {nodes[-1].pid} mid-campaign")
        if args.kill_one:
            victim = nodes[0]
            victim.send_signal(signal.SIGKILL)
            print(f"      killed node pid {victim.pid}")

        remaining_output, _ = manager.communicate(timeout=args.timeout)
        captured.append(remaining_output)
        output = "".join(captured)
        if manager.returncode != 0:
            raise SystemExit(
                f"manager exited {manager.returncode}:\n{output}"
            )
        got = digest_of(output, "socket campaign")
        print(f"      digest {got}")
        if got != want:
            raise SystemExit(
                f"DIGEST MISMATCH\n  reference: {want}\n  socket:    {got}"
            )
        print("OK: socket-fabric history is byte-identical to in-process")
        return 0
    finally:
        if manager.poll() is None:
            manager.kill()
        for node in nodes:
            if node.poll() is None:
                node.terminate()
        for node in nodes:
            try:
                node.wait(timeout=10)
            except subprocess.TimeoutExpired:
                node.kill()


if __name__ == "__main__":
    sys.exit(main())
