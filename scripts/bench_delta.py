"""Benchmark delta: freshly measured BENCH_*.json vs the committed baseline.

CI runs the benchmarks (which rewrite ``BENCH_parallel.json`` and
``BENCH_net.json`` in the workspace), then calls this script.  It reads
the *committed* copies via ``git show <ref>:<path>`` and prints a
GitHub-flavoured markdown before/after table suitable for appending to
``$GITHUB_STEP_SUMMARY``.

It also re-asserts the hot-path acceptance gates on the fresh numbers —
wire cost under 200 bytes and 0.5 frames per test, and, when the runner
has the cores to make the comparison meaningful, process pool at or
above serial — so a regression fails the job even if someone edits the
gates out of the benchmarks themselves.

Exit code 0 when the gates hold, 1 otherwise.  Missing baselines (first
commit of a file) degrade to "n/a" rather than failing.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FILES = ("BENCH_parallel.json", "BENCH_net.json")

MAX_BYTES_PER_TEST = 200.0
MAX_FRAMES_PER_TEST = 0.5
MIN_POOL_SPEEDUP = 1.0


def committed(ref: str, path: str) -> dict | None:
    proc = subprocess.run(
        ["git", "show", f"{ref}:{path}"],
        capture_output=True, text=True, cwd=REPO,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def workspace(path: str) -> dict | None:
    target = REPO / path
    if not target.is_file():
        return None
    return json.loads(target.read_text())


def dig(payload: dict | None, *keys: str) -> object | None:
    node: object | None = payload
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def fmt(value: object | None, pattern: str = "{:.2f}") -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, float)):
        return pattern.format(value)
    return str(value)


def delta(before: object | None, after: object | None) -> str:
    if not isinstance(before, (int, float)) or isinstance(before, bool):
        return ""
    if not isinstance(after, (int, float)) or isinstance(after, bool):
        return ""
    if before == 0:
        return ""
    change = (after - before) / before * 100.0
    return f"{change:+.1f}%"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-ref", default="HEAD",
        help="git ref holding the committed BENCH files (default: HEAD)",
    )
    args = parser.parse_args()

    before = {name: committed(args.baseline_ref, name) for name in FILES}
    after = {name: workspace(name) for name in FILES}

    rows: list[tuple[str, object | None, object | None, str]] = []

    def row(label: str, *keys: str, source: str, pattern: str = "{:.2f}"
            ) -> None:
        b, a = dig(before[source], *keys), dig(after[source], *keys)
        rows.append((label, fmt(b, pattern), fmt(a, pattern), delta(b, a)))

    row("serial tests/s", "serial", "tests_per_second",
        source="BENCH_parallel.json", pattern="{:.0f}")
    row("pool speedup vs serial", "process_pool", "speedup_vs_serial",
        source="BENCH_parallel.json")
    row("auto-batch speedup vs serial", "process_pool_auto",
        "speedup_vs_serial", source="BENCH_parallel.json")
    row("modelled 4-node speedup", "virtual_cluster", "modelled_speedup",
        source="BENCH_parallel.json")
    row("wire bytes/test", "wire", "bytes_per_test",
        source="BENCH_net.json", pattern="{:.1f}")
    row("wire frames/test", "wire", "frames_per_test",
        source="BENCH_net.json")
    row("wire encode seconds", "wire", "encode_seconds",
        source="BENCH_net.json", pattern="{:.4f}")
    row("socket digest == local", "socket", "digest_matches_local",
        source="BENCH_net.json")

    print(f"### Benchmark delta vs `{args.baseline_ref}`\n")
    print("| metric | before | after | change |")
    print("| --- | ---: | ---: | ---: |")
    for label, b, a, change in rows:
        print(f"| {label} | {b} | {a} | {change} |")
    print()

    failures: list[str] = []
    net = after["BENCH_net.json"]
    if net is None:
        failures.append("BENCH_net.json was not produced by the benchmarks")
    else:
        bytes_per_test = dig(net, "wire", "bytes_per_test")
        frames_per_test = dig(net, "wire", "frames_per_test")
        matches = dig(net, "socket", "digest_matches_local")
        if not isinstance(bytes_per_test, (int, float)) \
                or bytes_per_test >= MAX_BYTES_PER_TEST:
            failures.append(
                f"wire bytes/test {fmt(bytes_per_test, '{:.1f}')} is not "
                f"under {MAX_BYTES_PER_TEST:.0f}"
            )
        if not isinstance(frames_per_test, (int, float)) \
                or frames_per_test >= MAX_FRAMES_PER_TEST:
            failures.append(
                f"wire frames/test {fmt(frames_per_test)} is not under "
                f"{MAX_FRAMES_PER_TEST}"
            )
        if matches is not True:
            failures.append("socket history digest diverged from in-process")

    par = after["BENCH_parallel.json"]
    if par is None:
        failures.append(
            "BENCH_parallel.json was not produced by the benchmarks"
        )
    else:
        gate = dig(par, "speedup_gate") or {}
        if isinstance(gate, dict) and gate.get("skipped"):
            print(f"Pool >= serial gate skipped: {gate.get('reason')}\n")
        else:
            for arm in ("process_pool", "process_pool_auto"):
                speedup = dig(par, arm, "speedup_vs_serial")
                if not isinstance(speedup, (int, float)) \
                        or speedup < MIN_POOL_SPEEDUP:
                    failures.append(
                        f"{arm} speedup {fmt(speedup)} fell below "
                        f"{MIN_POOL_SPEEDUP}x serial"
                    )

    if failures:
        print("**Gate failures:**\n")
        for failure in failures:
            print(f"- {failure}")
        for failure in failures:
            print(f"bench_delta: FAIL: {failure}", file=sys.stderr)
        return 1
    print("All throughput gates hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
