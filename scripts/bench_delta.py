"""Benchmark delta: freshly measured BENCH_*.json vs the committed baseline.

CI runs the benchmarks (which rewrite ``BENCH_parallel.json``,
``BENCH_net.json`` and ``BENCH_fleet.json`` in the workspace), then
calls this script.  It reads the *committed* copies via ``git show
<ref>:<path>`` and prints a GitHub-flavoured markdown before/after
table suitable for appending to ``$GITHUB_STEP_SUMMARY``.

It also re-asserts the hot-path acceptance gates on the fresh numbers —
wire cost under 200 bytes and 0.5 frames per test; process pool at or
above serial whenever the runner has >= 2 usable cores (a skipped gate
on multi-core hardware is itself a failure: the benchmark must not
silently duck the comparison it exists to make); and the elastic-fleet
bars (8-node throughput >= 3x single-node, history digests identical to
the in-process reference at every node count) — so a regression fails
the job even if someone edits the gates out of the benchmarks
themselves.

Exit code 0 when the gates hold, 1 otherwise.  Missing baselines (first
commit of a file) degrade to "n/a" rather than failing.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FILES = ("BENCH_parallel.json", "BENCH_net.json", "BENCH_fleet.json",
         "BENCH_service.json")

MAX_BYTES_PER_TEST = 200.0
MAX_FRAMES_PER_TEST = 0.5
MIN_POOL_SPEEDUP = 1.0
MIN_FLEET_SPEEDUP = 3.0
FLEET_GATED_NODES = 8
MIN_SERVICE_RELATIVE = 0.9
MAX_SERVICE_FIRST_RESULT_S = 5.0


def committed(ref: str, path: str) -> dict | None:
    proc = subprocess.run(
        ["git", "show", f"{ref}:{path}"],
        capture_output=True, text=True, cwd=REPO,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def workspace(path: str) -> dict | None:
    target = REPO / path
    if not target.is_file():
        return None
    return json.loads(target.read_text())


def dig(payload: dict | None, *keys: str) -> object | None:
    node: object | None = payload
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def fleet_arm(payload: dict | None, nodes: int) -> dict | None:
    arms = dig(payload, "arms")
    if not isinstance(arms, list):
        return None
    for arm in arms:
        if isinstance(arm, dict) and arm.get("nodes") == nodes:
            return arm
    return None


def fmt(value: object | None, pattern: str = "{:.2f}") -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, float)):
        return pattern.format(value)
    return str(value)


def delta(before: object | None, after: object | None) -> str:
    if not isinstance(before, (int, float)) or isinstance(before, bool):
        return ""
    if not isinstance(after, (int, float)) or isinstance(after, bool):
        return ""
    if before == 0:
        return ""
    change = (after - before) / before * 100.0
    return f"{change:+.1f}%"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-ref", default="HEAD",
        help="git ref holding the committed BENCH files (default: HEAD)",
    )
    parser.add_argument(
        "--require-cores", type=int, default=None, metavar="N",
        help="fail unless the fresh BENCH_parallel.json was measured on "
        "a runner with at least N usable cores; catches CI quietly "
        "scheduling the bench job onto a single-core box, where the "
        "pool >= serial gate degrades to a permanent loud-skip",
    )
    args = parser.parse_args()

    before = {name: committed(args.baseline_ref, name) for name in FILES}
    after = {name: workspace(name) for name in FILES}

    # A committed BENCH_parallel.json whose pool >= serial gate was
    # skipped (single-core runner at commit time) is not a baseline at
    # all: its pool numbers measured contention, not parallelism, and
    # comparing fresh multi-core numbers against them reads as a bogus
    # "improvement".  Refuse it — degrade the before column to n/a,
    # loudly — rather than print a flattering delta.
    committed_gate = dig(
        before["BENCH_parallel.json"], "speedup_gate"
    )
    if isinstance(committed_gate, dict) and committed_gate.get("skipped"):
        print(
            "> **Warning:** the committed `BENCH_parallel.json` at "
            f"`{args.baseline_ref}` was measured with its pool >= serial "
            "gate skipped "
            f"(reason recorded: {committed_gate.get('reason')!r}); its "
            "numbers are not a usable baseline and are shown as n/a. "
            "Re-commit a baseline measured on a multi-core runner.\n"
        )
        print(
            "bench_delta: committed BENCH_parallel.json baseline had a "
            "skipped speedup gate; ignoring it",
            file=sys.stderr,
        )
        before["BENCH_parallel.json"] = None

    rows: list[tuple[str, object | None, object | None, str]] = []

    def row(label: str, *keys: str, source: str, pattern: str = "{:.2f}"
            ) -> None:
        b, a = dig(before[source], *keys), dig(after[source], *keys)
        rows.append((label, fmt(b, pattern), fmt(a, pattern), delta(b, a)))

    row("serial tests/s", "serial", "tests_per_second",
        source="BENCH_parallel.json", pattern="{:.0f}")
    row("pool speedup vs serial", "process_pool", "speedup_vs_serial",
        source="BENCH_parallel.json")
    row("auto-batch speedup vs serial", "process_pool_auto",
        "speedup_vs_serial", source="BENCH_parallel.json")
    row("modelled 4-node speedup", "virtual_cluster", "modelled_speedup",
        source="BENCH_parallel.json")
    row("wire bytes/test", "wire", "bytes_per_test",
        source="BENCH_net.json", pattern="{:.1f}")
    row("wire frames/test", "wire", "frames_per_test",
        source="BENCH_net.json")
    row("wire encode seconds", "wire", "encode_seconds",
        source="BENCH_net.json", pattern="{:.4f}")
    row("socket digest == local", "socket", "digest_matches_local",
        source="BENCH_net.json")
    for nodes in (FLEET_GATED_NODES, 16):
        b_arm = fleet_arm(before["BENCH_fleet.json"], nodes)
        a_arm = fleet_arm(after["BENCH_fleet.json"], nodes)
        b = dig(b_arm, "speedup_vs_single")
        a = dig(a_arm, "speedup_vs_single")
        rows.append((f"fleet {nodes}-node speedup", fmt(b), fmt(a),
                     delta(b, a)))
    b_arm = fleet_arm(before["BENCH_fleet.json"], FLEET_GATED_NODES)
    a_arm = fleet_arm(after["BENCH_fleet.json"], FLEET_GATED_NODES)
    b = dig(b_arm, "stolen")
    a = dig(a_arm, "stolen")
    rows.append((f"fleet stolen ({FLEET_GATED_NODES} nodes)",
                 fmt(b, "{:.0f}"), fmt(a, "{:.0f}"), delta(b, a)))
    b = dig(b_arm, "dedup_rerun", "hit_rate")
    a = dig(a_arm, "dedup_rerun", "hit_rate")
    rows.append((f"fleet dedup rerun hit-rate ({FLEET_GATED_NODES} nodes)",
                 fmt(b), fmt(a), delta(b, a)))
    row("service concurrent/sequential", "relative_throughput",
        source="BENCH_service.json")
    row("service concurrent tests/s", "concurrent", "tests_per_second",
        source="BENCH_service.json", pattern="{:.0f}")
    row("service worst first-result (s)", "gates",
        "worst_first_result_s", source="BENCH_service.json",
        pattern="{:.3f}")

    print(f"### Benchmark delta vs `{args.baseline_ref}`\n")
    print("| metric | before | after | change |")
    print("| --- | ---: | ---: | ---: |")
    for label, b, a, change in rows:
        print(f"| {label} | {b} | {a} | {change} |")
    print()

    failures: list[str] = []
    net = after["BENCH_net.json"]
    if net is None:
        failures.append("BENCH_net.json was not produced by the benchmarks")
    else:
        bytes_per_test = dig(net, "wire", "bytes_per_test")
        frames_per_test = dig(net, "wire", "frames_per_test")
        matches = dig(net, "socket", "digest_matches_local")
        if not isinstance(bytes_per_test, (int, float)) \
                or bytes_per_test >= MAX_BYTES_PER_TEST:
            failures.append(
                f"wire bytes/test {fmt(bytes_per_test, '{:.1f}')} is not "
                f"under {MAX_BYTES_PER_TEST:.0f}"
            )
        if not isinstance(frames_per_test, (int, float)) \
                or frames_per_test >= MAX_FRAMES_PER_TEST:
            failures.append(
                f"wire frames/test {fmt(frames_per_test)} is not under "
                f"{MAX_FRAMES_PER_TEST}"
            )
        if matches is not True:
            failures.append("socket history digest diverged from in-process")

    par = after["BENCH_parallel.json"]
    if par is None:
        failures.append(
            "BENCH_parallel.json was not produced by the benchmarks"
        )
    else:
        gate = dig(par, "speedup_gate") or {}
        usable = dig(par, "cores", "usable")
        if args.require_cores is not None and (
            not isinstance(usable, int) or usable < args.require_cores
        ):
            failures.append(
                f"runner had {fmt(usable, '{:.0f}')} usable core(s) but "
                f"--require-cores {args.require_cores} was requested; "
                "the pool >= serial gate never actually ran — fix the CI "
                "runner class instead of shipping a skipped gate"
            )
        if isinstance(gate, dict) and gate.get("skipped"):
            # A skip is only legitimate on a single-core runner.  With
            # real parallel hardware underneath, "skipped" means the
            # pool lost to serial and the benchmark ducked saying so —
            # fail loudly instead.
            if isinstance(usable, int) and usable >= 2:
                failures.append(
                    f"pool >= serial gate was skipped although the "
                    f"runner had {usable} usable cores "
                    f"(reason recorded: {gate.get('reason')!r})"
                )
            else:
                print(f"Pool >= serial gate skipped: {gate.get('reason')}"
                      "\n")
        else:
            for arm in ("process_pool", "process_pool_auto"):
                speedup = dig(par, arm, "speedup_vs_serial")
                if not isinstance(speedup, (int, float)) \
                        or speedup < MIN_POOL_SPEEDUP:
                    failures.append(
                        f"{arm} speedup {fmt(speedup)} fell below "
                        f"{MIN_POOL_SPEEDUP}x serial"
                    )

    fleet = after["BENCH_fleet.json"]
    if fleet is None:
        failures.append(
            "BENCH_fleet.json was not produced by the benchmarks"
        )
    else:
        gated = fleet_arm(fleet, FLEET_GATED_NODES)
        speedup = dig(gated, "speedup_vs_single")
        if not isinstance(speedup, (int, float)) \
                or speedup < MIN_FLEET_SPEEDUP:
            failures.append(
                f"{FLEET_GATED_NODES}-node fleet speedup {fmt(speedup)} "
                f"fell below {MIN_FLEET_SPEEDUP}x single-node"
            )
        arms = dig(fleet, "arms")
        for arm in arms if isinstance(arms, list) else []:
            if dig(arm, "digest_matches_reference") is not True:
                failures.append(
                    f"fleet history digest diverged from the in-process "
                    f"reference at {dig(arm, 'nodes')} node(s)"
                )
        if dig(fleet, "churn", "matches_reference") is not True:
            failures.append(
                "fleet churn run (join + drain) diverged from the "
                "in-process reference"
            )

    service = after["BENCH_service.json"]
    if service is None:
        failures.append(
            "BENCH_service.json was not produced by the benchmarks"
        )
    else:
        relative = dig(service, "relative_throughput")
        if not isinstance(relative, (int, float)) \
                or relative < MIN_SERVICE_RELATIVE:
            failures.append(
                f"service concurrent throughput {fmt(relative)} fell "
                f"below {MIN_SERVICE_RELATIVE}x sequential"
            )
        worst = dig(service, "gates", "worst_first_result_s")
        if not isinstance(worst, (int, float)) \
                or worst > MAX_SERVICE_FIRST_RESULT_S:
            failures.append(
                f"service submit->first-result latency "
                f"{fmt(worst, '{:.3f}')}s exceeded "
                f"{MAX_SERVICE_FIRST_RESULT_S}s"
            )
        if dig(service, "digests_match") is not True:
            failures.append(
                "service campaigns diverged between the sequential and "
                "concurrent arms"
            )

    if failures:
        print("**Gate failures:**\n")
        for failure in failures:
            print(f"- {failure}")
        for failure in failures:
            print(f"bench_delta: FAIL: {failure}", file=sys.stderr)
        return 1
    print("All throughput gates hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
