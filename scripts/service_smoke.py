"""CI smoke for the campaign service: real server, real tenants, one store.

Exercises the full ``afex serve`` stack the way an operator would:

1. Direct ``afex run`` references establish the expected history
   digests (one serial campaign, one batched parallel campaign).
2. An ``afex serve`` process takes two concurrent submissions from two
   tenants — one of them on the socket fabric with service-spawned
   ``afex node`` workers — and both campaigns must reproduce the direct
   digests byte for byte: serving a campaign is the same campaign.
3. The server is SIGKILLed mid-campaign, restarted on the same store,
   and must requeue the orphaned job, resume it from its server-side
   checkpoint, and still land on the uninterrupted digest.

Exit code 0 on success; non-zero with a diagnostic otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.server import ServiceClient  # noqa: E402

LISTENING = re.compile(r"campaign service listening on ([\d.]+:\d+)")
RESUMING = re.compile(r"resuming (\d+) incomplete job\(s\)")
DIGEST = re.compile(r"^history digest: ([0-9a-f]{64})$", re.MULTILINE)


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def run_cli(args: list[str], timeout: float) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, timeout=timeout, env=cli_env(),
        cwd=REPO,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"afex {' '.join(args)} failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def digest_of(output: str, label: str) -> str:
    match = DIGEST.search(output)
    if not match:
        raise SystemExit(f"no history digest in {label} output:\n{output}")
    return match.group(1)


class Server:
    """One ``afex serve`` process and the lines it has printed."""

    def __init__(self, args: list[str]) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=cli_env(), cwd=REPO,
        )
        self.captured: list[str] = []

    def wait_for(self, pattern: re.Pattern, what: str,
                 timeout: float = 60.0) -> re.Match:
        assert self.proc.stdout is not None
        deadline = time.monotonic() + timeout
        while True:
            if time.monotonic() > deadline:
                raise SystemExit(
                    f"server never printed {what}:\n"
                    + "".join(self.captured)
                )
            line = self.proc.stdout.readline()
            if not line:
                raise SystemExit(
                    f"server exited before printing {what}:\n"
                    + "".join(self.captured)
                )
            self.captured.append(line)
            match = pattern.search(line)
            if match:
                return match

    def kill(self, sig: int = signal.SIGKILL) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(sig)
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def submit_cli(endpoint: str, tenant: str, spec_flags: list[str],
               timeout: float) -> str:
    """Submit through the real CLI and return the job id."""
    out = run_cli(
        ["submit", "--endpoint", endpoint, "--tenant", tenant,
         "--json", *spec_flags],
        timeout=timeout,
    )
    return json.loads(out)["id"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument(
        "--iterations", type=int, default=40,
        help="iteration budget for the two concurrent campaigns",
    )
    parser.add_argument(
        "--resume-iterations", type=int, default=3000,
        help="iteration budget for the kill/resume campaign: several "
        "seconds of work, so the SIGKILL lands mid-flight even on a "
        "warm engine (the simulator serves >1k tests/s)",
    )
    parser.add_argument("--workdir", default=None,
                        help="where the store and checkpoints live "
                        "(default: a fresh ./service-smoke dir)")
    args = parser.parse_args()

    workdir = Path(args.workdir or REPO / "service-smoke")
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "afex-service.db"
    if store.exists():
        store.unlink()

    # -- 1: direct references ------------------------------------------------
    print("[1/3] direct `afex run` references")
    serial_flags = ["--target", "coreutils", "--strategy", "fitness",
                    "--iterations", str(args.iterations), "--seed", "1"]
    socket_flags = ["--target", "minidb", "--strategy", "fitness",
                    "--iterations", "60", "--seed", "1",
                    "--batch-size", "8"]
    # The resume campaign needs a big space (minidb's 2.18M points)
    # so its budget buys a multi-second window for the kill to land.
    resume_flags = ["--target", "minidb", "--strategy", "fitness",
                    "--iterations", str(args.resume_iterations),
                    "--seed", "7"]
    report_path = workdir / "run-report.json"
    out = run_cli(
        ["run", *serial_flags, "--top", "0",
         "--report-json", str(report_path)],
        timeout=args.timeout,
    )
    want_serial = digest_of(out, "serial reference")
    report = json.loads(report_path.read_text())
    if report["digest"] != want_serial:
        raise SystemExit(
            f"--report-json digest {report['digest']} does not match "
            f"stdout digest {want_serial}"
        )
    # The socket reference runs on threads: same batch size, same
    # trajectory — fabrics move placement, never outcomes.
    want_socket = digest_of(
        run_cli(["run", *socket_flags, "--top", "0", "--fabric",
                 "threads", "--workers", "2"], timeout=args.timeout),
        "threads reference",
    )
    want_resume = digest_of(
        run_cli(["run", *resume_flags, "--top", "0"],
                timeout=args.timeout),
        "resume reference",
    )
    print(f"      serial {want_serial}")
    print(f"      batched {want_socket}")
    print(f"      resume {want_resume}")

    # -- 2: two tenants, two concurrent campaigns ----------------------------
    print("[2/3] serve: two tenants, one campaign on the socket fabric")
    serve_args = [
        "--listen", "127.0.0.1:0", "--store", str(store),
        "--data-dir", str(workdir), "--workers", "2",
        "--tenant", "alice:10:2", "--tenant", "bob:1:1",
        # Frequent enough that the kill always lands after a snapshot,
        # cheap enough that rewriting the (growing) checkpoint does not
        # dominate the campaign.
        "--checkpoint-every", "100",
    ]
    server = Server(serve_args)
    try:
        endpoint = server.wait_for(LISTENING, "its endpoint").group(1)
        print(f"      service at {endpoint}")
        client = ServiceClient(endpoint)
        job_a = submit_cli(endpoint, "alice", serial_flags,
                           timeout=args.timeout)
        job_b = submit_cli(
            endpoint, "bob",
            socket_flags + ["--fabric", "socket", "--nodes", "2"],
            timeout=args.timeout,
        )
        done_a = client.wait(job_a, timeout=args.timeout)
        done_b = client.wait(job_b, timeout=args.timeout)
        for label, done, want in (
            ("alice/serial", done_a, want_serial),
            ("bob/socket", done_b, want_socket),
        ):
            if done["state"] != "done":
                raise SystemExit(
                    f"{label} job {done['id']} ended {done['state']}: "
                    f"{done.get('error')}"
                )
            if done["digest"] != want:
                raise SystemExit(
                    f"DIGEST MISMATCH ({label})\n  direct: {want}\n"
                    f"  served: {done['digest']}"
                )
            print(f"      {label} digest {done['digest']} (matches)")

        # -- 3: kill the server mid-campaign ---------------------------------
        print("[3/3] SIGKILL mid-campaign, restart, resume from the store")
        job_c = submit_cli(endpoint, "alice", resume_flags,
                           timeout=args.timeout)
        checkpoint = workdir / f"{job_c}.ckpt"
        deadline = time.monotonic() + args.timeout
        while not checkpoint.exists():
            if time.monotonic() > deadline:
                raise SystemExit(
                    f"job {job_c} never wrote a checkpoint; state: "
                    f"{client.job(job_c)}"
                )
            if client.job(job_c)["state"] in ("done", "failed"):
                raise SystemExit(
                    f"job {job_c} finished before the kill could land; "
                    "raise --resume-iterations"
                )
            time.sleep(0.05)
    finally:
        server.kill()
    print(f"      killed the server pid {server.proc.pid} mid-campaign")

    restarted = Server(serve_args)
    try:
        resumed = int(
            restarted.wait_for(RESUMING, "the resume banner").group(1)
        )
        if resumed < 1:
            raise SystemExit(f"restart requeued {resumed} jobs, wanted >= 1")
        endpoint = restarted.wait_for(LISTENING, "its endpoint").group(1)
        client = ServiceClient(endpoint)
        done_c = client.wait(job_c, timeout=args.timeout)
        if done_c["state"] != "done":
            raise SystemExit(
                f"resumed job ended {done_c['state']}: {done_c.get('error')}"
            )
        if done_c["digest"] != want_resume:
            raise SystemExit(
                f"DIGEST MISMATCH (resumed)\n  direct:  {want_resume}\n"
                f"  resumed: {done_c['digest']}"
            )
        print(f"      resumed digest {done_c['digest']} (matches)")
        stats = client.stats()
        if stats["store"]["done"] != 3:
            raise SystemExit(
                f"store shows {stats['store']['done']} done jobs, wanted 3"
            )
        client.shutdown()
        restarted.proc.wait(timeout=30)
    finally:
        restarted.kill(signal.SIGTERM)
    print("OK: served campaigns are byte-identical to direct runs and "
          "survive a server kill")
    return 0


if __name__ == "__main__":
    sys.exit(main())
