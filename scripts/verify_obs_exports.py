#!/usr/bin/env python3
"""Verify a profiled run's observability exports (CI ``metrics-smoke``).

A run with ``--profile --metrics-out --trace-out`` must leave behind:

* a Prometheus exposition file that *parses* and contains the core
  series — tests, rounds, fitness, execution latency — with a nonzero
  dispatch-latency histogram;
* a ``BENCH_obs.json`` profile summary of the same registry;
* a JSON-lines trace whose events all carry the current schema version
  and assemble into round-rooted trees.

Exits nonzero with a message on the first violation, so the CI step
fails loudly. Also runnable locally after any profiled run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    assemble,
    parse_prometheus,
    read_jsonl,
)

#: every profiled exploration must export these families.
CORE_SERIES = (
    "afex_session_tests_total",
    "afex_session_rounds_total",
    "afex_session_fitness",
    "afex_runner_execute_seconds",
    "afex_fabric_dispatch_seconds",
)


def fail(message: str) -> None:
    sys.exit(f"verify_obs_exports: {message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", default="metrics.prom",
                        help="Prometheus exposition file to check")
    parser.add_argument("--trace", default="trace.jsonl",
                        help="JSON-lines trace file to check")
    parser.add_argument("--profile-json", default="BENCH_obs.json",
                        help="profile summary file to check")
    parser.add_argument("--require-cache", action="store_true",
                        help="also require the cache.* series (the run "
                             "was given a result cache)")
    args = parser.parse_args(argv)

    parsed = parse_prometheus(Path(args.metrics).read_text())
    missing = [series for series in CORE_SERIES if series not in parsed]
    if missing:
        fail(f"{args.metrics} is missing core series: {missing}")
    tests = parsed["afex_session_tests_total"]["samples"][
        "afex_session_tests_total"]
    if not tests > 0:
        fail(f"afex_session_tests_total is {tests}, expected > 0")
    dispatch_count = parsed["afex_fabric_dispatch_seconds"]["samples"].get(
        "afex_fabric_dispatch_seconds_count", 0.0)
    if not dispatch_count > 0:
        fail("the dispatch-latency histogram is empty")
    if args.require_cache and "afex_cache_hit_ratio" not in parsed:
        fail(f"{args.metrics} has no afex_cache_hit_ratio series")

    payload = json.loads(Path(args.profile_json).read_text())
    if payload.get("benchmark") != "observability":
        fail(f"{args.profile_json} is not an observability profile")
    profiled_dispatch = payload["histograms"]["fabric.dispatch_seconds"]
    if not profiled_dispatch["count"] > 0:
        fail(f"{args.profile_json} records no dispatches")

    events = read_jsonl(args.trace)
    if not events:
        fail(f"{args.trace} is empty")
    versions = {event.get("v") for event in events}
    if versions != {TRACE_SCHEMA_VERSION}:
        fail(f"trace schema versions {versions}, "
             f"expected {{{TRACE_SCHEMA_VERSION}}}")
    trees = assemble(events)
    roots = [node for trace in trees.values() for node in trace["roots"]]
    if not roots or any(n["event"]["name"] != "round" for n in roots):
        fail("trace does not assemble into round-rooted trees")

    print(f"verify_obs_exports: OK — {int(tests)} tests, "
          f"{int(dispatch_count)} dispatches, {len(events)} span events, "
          f"{len(roots)} rounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
